//! Nodes (simulated hosts/processes) and the context they act through.

use core::fmt;
use std::any::Any;

use aqua_core::aqua;
use aqua_core::time::{Duration, Instant};
use rand::rngs::SmallRng;

use crate::event::{Event, Scheduled, TimerToken};
use crate::network::NetworkModel;
use crate::trace::{TraceEvent, Tracer};
use crate::Payload;

/// Identifier of a node within one simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Creates a node id from a raw index.
    ///
    /// Normally ids come from [`crate::Simulation::add_node`]; this
    /// constructor exists for tests and table-driven wiring.
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// The raw index.
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Behaviour of a simulated host/process.
///
/// Implementations receive [`Event`]s one at a time and react through the
/// [`Context`]: sending messages (which traverse the simulated network) and
/// setting timers. All state lives inside the node; the simulator guarantees
/// events are delivered in deterministic timestamp order.
///
/// The same `Node` implementation runs unchanged on the sequential
/// [`crate::Simulation`] and on the sharded parallel
/// [`crate::ShardedSimulation`] — the [`Context`] hides which engine is
/// dispatching.
pub trait Node<M: Payload> {
    /// Handles one event. `ctx` carries the current virtual time, the
    /// node's own id, the RNG, and the scheduling operations.
    fn on_event(&mut self, event: Event<M>, ctx: &mut Context<'_, M>);
}

/// Object-safe companion of [`Node`] that supports downcasting, so tests
/// and harnesses can inspect node state after a run.
pub trait AnyNode<M: Payload>: Node<M> + Any {
    /// Upcast to [`Any`] for downcasting.
    fn as_any(&self) -> &dyn Any;
    /// Upcast to mutable [`Any`] for downcasting.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<M: Payload, T: Node<M> + Any> AnyNode<M> for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Engine-side operations a [`Context`] forwards to.
///
/// Two implementations exist: the sequential [`SimCore`] (one queue, one
/// RNG, global `(timestamp, seq)` order) and the sharded engine's per-shard
/// core (per-shard queues, per-node RNG streams, `(timestamp, origin, seq)`
/// order). Nodes never see the difference.
pub(crate) trait ContextCore<M> {
    /// Current virtual time.
    fn now(&self) -> Instant;
    /// The RNG stream a node draws from (engine-global or node-local).
    fn rng_for(&mut self, node: NodeId) -> &mut SmallRng;
    /// Sends `payload` over the simulated network as part of a `fanout`-way
    /// multicast.
    fn transmit(&mut self, from: NodeId, to: NodeId, payload: M, fanout: usize);
    /// Self-delivery after `after`, bypassing the network.
    fn send_self(&mut self, from: NodeId, after: Duration, payload: M);
    /// Arms a timer on `node`.
    fn set_timer(&mut self, node: NodeId, after: Duration) -> TimerToken;
    /// Cancels a pending timer on `node`.
    fn cancel_timer(&mut self, node: NodeId, token: TimerToken);
    /// Detaches `node` (simulated crash).
    fn detach(&mut self, node: NodeId);
}

/// Grow-on-demand bit set over `u64` indices.
///
/// Timer tokens are allocated sequentially, so cancellation state is a
/// dense bit per token instead of a `HashSet` probe on the event dispatch
/// hot path: `take` is one shift/mask, and the common case (nothing ever
/// cancelled) never allocates.
#[derive(Debug, Default)]
pub(crate) struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// Sets bit `idx`.
    pub fn set(&mut self, idx: u64) {
        let word = (idx / 64) as usize;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        self.words[word] |= 1 << (idx % 64);
    }

    /// Clears and returns bit `idx`.
    #[aqua::hot_path]
    pub fn take(&mut self, idx: u64) -> bool {
        let word = (idx / 64) as usize;
        let Some(w) = self.words.get_mut(word) else {
            return false;
        };
        let mask = 1u64 << (idx % 64);
        let was = *w & mask != 0;
        *w &= !mask;
        was
    }
}

/// Internal scheduling state shared between the simulation driver and the
/// contexts it hands to nodes.
pub(crate) struct SimCore<M> {
    pub now: Instant,
    pub queue: std::collections::BinaryHeap<core::cmp::Reverse<Scheduled<M>>>,
    pub seq: u64,
    pub next_timer: u64,
    /// Cancelled-timer flags, indexed by token value.
    pub cancelled: BitSet,
    pub network: Box<dyn NetworkModel>,
    pub rng: SmallRng,
    /// Detached (crashed at the simulator level) flags, indexed by node;
    /// deliveries to them are silently dropped at pop time.
    pub detached: Vec<bool>,
    /// Trace ring + per-node counters.
    pub tracer: Tracer,
}

impl<M> SimCore<M> {
    #[aqua::hot_path]
    pub(crate) fn push(&mut self, at: Instant, target: NodeId, event: Event<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(core::cmp::Reverse(Scheduled {
            at,
            seq,
            target,
            event,
        }));
    }

    /// Marks a node detached.
    pub(crate) fn mark_detached(&mut self, node: NodeId) {
        let idx = node.0 as usize;
        if idx >= self.detached.len() {
            self.detached.resize(idx + 1, false);
        }
        self.detached[idx] = true;
    }

    /// Whether a node is detached (hot-path probe: one bounds check).
    #[aqua::hot_path]
    pub(crate) fn is_detached(&self, node: NodeId) -> bool {
        self.detached.get(node.0 as usize).copied().unwrap_or(false)
    }
}

impl<M: Payload> ContextCore<M> for SimCore<M> {
    fn now(&self) -> Instant {
        self.now
    }

    fn rng_for(&mut self, _node: NodeId) -> &mut SmallRng {
        &mut self.rng
    }

    fn transmit(&mut self, from: NodeId, to: NodeId, payload: M, fanout: usize) {
        let size = payload.wire_size();
        let delay = self
            .network
            .delay(from, to, size, fanout, self.now, &mut self.rng);
        let at = self.now.saturating_add(delay);
        self.tracer.record(
            self.now,
            TraceEvent::MessageSent {
                from,
                to,
                size,
                deliver_at: at,
            },
        );
        self.push(at, to, Event::Message { from, payload });
    }

    fn send_self(&mut self, from: NodeId, after: Duration, payload: M) {
        let at = self.now.saturating_add(after);
        self.push(at, from, Event::Message { from, payload });
    }

    fn set_timer(&mut self, node: NodeId, after: Duration) -> TimerToken {
        let token = TimerToken(self.next_timer);
        self.next_timer += 1;
        let at = self.now.saturating_add(after);
        self.push(at, node, Event::Timer { token });
        token
    }

    fn cancel_timer(&mut self, _node: NodeId, token: TimerToken) {
        self.cancelled.set(token.0);
    }

    fn detach(&mut self, node: NodeId) {
        self.mark_detached(node);
        self.tracer
            .record(self.now, TraceEvent::NodeDetached { node });
    }
}

/// The interface a node uses to act on the simulated world.
pub struct Context<'a, M: Payload> {
    pub(crate) ops: &'a mut dyn ContextCore<M>,
    pub(crate) self_id: NodeId,
}

impl<M: Payload> Context<'_, M> {
    /// The current virtual time.
    pub fn now(&self) -> Instant {
        self.ops.now()
    }

    /// This node's id.
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    /// The deterministic random number generator this node draws from.
    ///
    /// Under the sequential engine this is the one simulation-global
    /// stream; under the sharded engine every node owns a SplitMix64-
    /// derived stream of its own, which is what keeps histories identical
    /// across worker counts.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.ops.rng_for(self.self_id)
    }

    /// Sends `payload` to `to` over the simulated network; the network
    /// model decides the delivery latency.
    pub fn send(&mut self, to: NodeId, payload: M) {
        self.ops.transmit(self.self_id, to, payload, 1);
    }

    /// Sends `payload` to every node in `to` (list-addressed multicast).
    ///
    /// The network model sees the full fan-out, matching the paper's
    /// observation that the gateway-to-gateway delay "varies … with the
    /// number of group members involved in the communication".
    pub fn multicast(&mut self, to: &[NodeId], payload: M) {
        for dest in to {
            self.ops
                .transmit(self.self_id, *dest, payload.clone(), to.len());
        }
    }

    /// Delivers `payload` to this node itself after `after`, bypassing the
    /// network (used to model local asynchronous processing).
    pub fn send_self(&mut self, after: Duration, payload: M) {
        self.ops.send_self(self.self_id, after, payload);
    }

    /// Sets a timer that fires on this node after `after`.
    pub fn set_timer(&mut self, after: Duration) -> TimerToken {
        self.ops.set_timer(self.self_id, after)
    }

    /// Cancels a pending timer; firing events for it are dropped.
    pub fn cancel_timer(&mut self, token: TimerToken) {
        self.ops.cancel_timer(self.self_id, token);
    }

    /// Detaches this node from the simulation: all subsequent deliveries to
    /// it (messages and timers) are dropped. Models a host crash.
    pub fn detach_self(&mut self) {
        self.ops.detach(self.self_id);
    }
}

impl<M: Payload> fmt::Debug for Context<'_, M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Context")
            .field("self_id", &self.self_id)
            .field("now", &self.ops.now())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitset_set_take_roundtrip() {
        let mut bits = BitSet::default();
        assert!(!bits.take(5), "unset bit");
        bits.set(5);
        bits.set(64);
        bits.set(1000);
        assert!(bits.take(5));
        assert!(!bits.take(5), "take clears");
        assert!(bits.take(64));
        assert!(bits.take(1000));
        assert!(!bits.take(2000), "beyond allocated words");
    }
}
