//! Execution tracing and per-node counters.
//!
//! Debugging a distributed algorithm means asking "who sent what, when?".
//! The simulator can record a bounded ring of typed [`TraceRecord`]s and
//! always keeps cheap per-node counters (messages sent/delivered, timers
//! fired), which tests use to assert communication patterns — e.g. that a
//! warm timing fault handler multicasts to exactly 2 replicas.

use std::collections::VecDeque;

use aqua_core::aqua;
use aqua_core::time::Instant;

use crate::node::NodeId;

/// One traced occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A node received its start event.
    NodeStarted {
        /// The node.
        node: NodeId,
    },
    /// A message was handed to the network.
    MessageSent {
        /// Sender.
        from: NodeId,
        /// Destination.
        to: NodeId,
        /// Payload size in bytes.
        size: usize,
        /// When the network will deliver it.
        deliver_at: Instant,
    },
    /// A message reached its destination node.
    MessageDelivered {
        /// Sender.
        from: NodeId,
        /// Destination.
        to: NodeId,
    },
    /// A timer fired on a node.
    TimerFired {
        /// The node.
        node: NodeId,
    },
    /// A node was detached (crashed at the simulator level).
    NodeDetached {
        /// The node.
        node: NodeId,
    },
}

/// A timestamped trace entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Virtual time of the occurrence.
    pub at: Instant,
    /// What happened.
    pub event: TraceEvent,
}

/// Per-node communication counters (always collected; O(1) per event).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeCounters {
    /// Messages this node sent.
    pub sent: u64,
    /// Messages delivered to this node.
    pub delivered: u64,
    /// Timers that fired on this node.
    pub timers_fired: u64,
}

/// Bounded trace ring + counters, owned by the simulation core.
///
/// Counters are a dense vector indexed by node — node ids are small
/// sequential integers, so the per-event update is one bounds check and an
/// increment instead of a hash probe (and, on first touch, a `HashMap`
/// entry allocation) on the dispatch hot path.
#[derive(Debug, Default)]
pub(crate) struct Tracer {
    ring: Option<Ring>,
    counters: Vec<NodeCounters>,
}

#[derive(Debug)]
struct Ring {
    records: VecDeque<TraceRecord>,
    capacity: usize,
    dropped: u64,
}

impl Tracer {
    pub fn enable(&mut self, capacity: usize) {
        self.ring = Some(Ring {
            records: VecDeque::with_capacity(capacity.min(4096)),
            capacity: capacity.max(1),
            dropped: 0,
        });
    }

    /// Dense counter slot for `node`, growing the vector on first touch of
    /// a new high-water node index (amortized; steady state is index-only).
    fn slot(&mut self, node: NodeId) -> &mut NodeCounters {
        let idx = node.index() as usize;
        if idx >= self.counters.len() {
            self.counters.resize(idx + 1, NodeCounters::default());
        }
        &mut self.counters[idx]
    }

    #[aqua::hot_path]
    pub fn record(&mut self, at: Instant, event: TraceEvent) {
        match &event {
            TraceEvent::MessageSent { from, .. } => self.slot(*from).sent += 1,
            TraceEvent::MessageDelivered { to, .. } => self.slot(*to).delivered += 1,
            TraceEvent::TimerFired { node } => self.slot(*node).timers_fired += 1,
            TraceEvent::NodeStarted { .. } | TraceEvent::NodeDetached { .. } => {}
        }
        if let Some(ring) = &mut self.ring {
            if ring.records.len() == ring.capacity {
                ring.records.pop_front();
                ring.dropped += 1;
            }
            ring.records.push_back(TraceRecord { at, event });
        }
    }

    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.ring.iter().flat_map(|r| r.records.iter())
    }

    pub fn dropped(&self) -> u64 {
        self.ring.as_ref().map_or(0, |r| r.dropped)
    }

    pub fn counters(&self, node: NodeId) -> NodeCounters {
        self.counters
            .get(node.index() as usize)
            .copied()
            .unwrap_or_default()
    }

    /// Counters of every node that has communicated, in node order.
    pub fn all_counters(&self) -> Vec<(NodeId, NodeCounters)> {
        self.counters
            .iter()
            .enumerate()
            .filter(|(_, c)| **c != NodeCounters::default())
            .map(|(i, c)| (NodeId::new(i as u32), *c))
            .collect()
    }

    /// Total messages pushed through the network, summed over all nodes.
    /// This is the single source of truth — the core keeps no separate
    /// message counter.
    pub fn total_sent(&self) -> u64 {
        self.counters.iter().map(|c| c.sent).sum()
    }

    /// Folds another tracer's per-node counters into this one (used when
    /// merging shard-local tracers on export).
    pub fn absorb_counters(&mut self, other: &Tracer) {
        for (i, c) in other.counters.iter().enumerate() {
            let slot = self.slot(NodeId::new(i as u32));
            slot.sent += c.sent;
            slot.delivered += c.delivered;
            slot.timers_fired += c.timers_fired;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_without_a_ring() {
        let mut tracer = Tracer::default();
        let a = NodeId::new(0);
        let b = NodeId::new(1);
        tracer.record(
            Instant::EPOCH,
            TraceEvent::MessageSent {
                from: a,
                to: b,
                size: 10,
                deliver_at: Instant::from_millis(1),
            },
        );
        tracer.record(
            Instant::from_millis(1),
            TraceEvent::MessageDelivered { from: a, to: b },
        );
        tracer.record(Instant::from_millis(2), TraceEvent::TimerFired { node: b });
        assert_eq!(tracer.counters(a).sent, 1);
        assert_eq!(tracer.counters(b).delivered, 1);
        assert_eq!(tracer.counters(b).timers_fired, 1);
        assert_eq!(tracer.records().count(), 0, "ring disabled by default");
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let mut tracer = Tracer::default();
        tracer.enable(3);
        for i in 0..5 {
            tracer.record(
                Instant::from_millis(i),
                TraceEvent::NodeStarted {
                    node: NodeId::new(0),
                },
            );
        }
        assert_eq!(tracer.records().count(), 3);
        assert_eq!(tracer.dropped(), 2);
        let first = tracer.records().next().unwrap();
        assert_eq!(first.at, Instant::from_millis(2), "oldest two evicted");
    }
}
