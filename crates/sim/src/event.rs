//! Events and their deterministic ordering.

use core::cmp::Ordering;
use core::fmt;

use aqua_core::time::Instant;

use crate::node::NodeId;

/// Handle for a pending timer, usable to cancel it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerToken(pub(crate) u64);

impl TimerToken {
    /// The raw token value (unique within one simulation).
    pub fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TimerToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "timer#{}", self.0)
    }
}

/// An event delivered to a [`crate::node::Node`].
#[derive(Debug, Clone)]
pub enum Event<M> {
    /// Delivered once to every node when the simulation starts (and to
    /// nodes added later, at their insertion time).
    Started,
    /// A message arriving over the simulated network.
    Message {
        /// The sending node.
        from: NodeId,
        /// The payload.
        payload: M,
    },
    /// A timer set by this node has fired.
    Timer {
        /// The token returned when the timer was set.
        token: TimerToken,
    },
}

/// Internal: what sits in the event queue.
#[derive(Debug)]
pub(crate) struct Scheduled<M> {
    pub at: Instant,
    /// Global sequence number: ties at equal timestamps are delivered in
    /// scheduling order, making runs fully deterministic.
    pub seq: u64,
    pub target: NodeId,
    pub event: Event<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<M> Eq for Scheduled<M> {}

impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduled_orders_by_time_then_seq() {
        let mk = |at_ms: u64, seq: u64| Scheduled::<()> {
            at: Instant::from_millis(at_ms),
            seq,
            target: NodeId::new(0),
            event: Event::Started,
        };
        assert!(mk(1, 5) < mk(2, 0));
        assert!(mk(1, 0) < mk(1, 1));
        assert_eq!(mk(3, 7), mk(3, 7));
    }
}
