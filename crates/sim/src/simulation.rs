//! The simulation driver: event loop, node registry, determinism.

use core::cmp::Reverse;
use core::fmt;
use std::collections::BinaryHeap;

use aqua_core::aqua;
use aqua_core::time::{Duration, Instant};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::event::{Event, Scheduled};
use crate::network::{InstantNetwork, NetworkModel};
use crate::node::{AnyNode, BitSet, Context, NodeId, SimCore};
use crate::trace::{NodeCounters, TraceEvent, TraceRecord};
use crate::Payload;

/// A deterministic discrete-event simulation over a set of [`crate::node::Node`]s
/// connected by a [`NetworkModel`].
///
/// Determinism: events are totally ordered by `(timestamp, scheduling
/// sequence)`, and all randomness flows through one seeded [`SmallRng`], so
/// two runs with the same seed and the same wiring produce identical
/// histories.
///
/// # Examples
///
/// ```
/// use lan_sim::{Event, Context, Node, NodeId, Payload, Simulation};
/// use aqua_core::time::{Duration, Instant};
///
/// #[derive(Clone, Debug)]
/// struct Ping;
/// impl Payload for Ping {}
///
/// /// Sends one ping to a peer on start; counts pings received.
/// struct Peer { other: Option<NodeId>, received: u32 }
///
/// impl Node<Ping> for Peer {
///     fn on_event(&mut self, event: Event<Ping>, ctx: &mut Context<'_, Ping>) {
///         match event {
///             Event::Started => {
///                 if let Some(other) = self.other {
///                     ctx.send(other, Ping);
///                 }
///             }
///             Event::Message { .. } => self.received += 1,
///             Event::Timer { .. } => {}
///         }
///     }
/// }
///
/// let mut sim = Simulation::new(7);
/// let a = sim.add_node(Peer { other: None, received: 0 });
/// let b = sim.add_node(Peer { other: Some(a), received: 0 });
/// # let _ = b;
/// sim.run_until_idle();
/// assert_eq!(sim.node::<Peer>(a).unwrap().received, 1);
/// ```
pub struct Simulation<M: Payload> {
    core: SimCore<M>,
    nodes: Vec<Option<Box<dyn AnyNode<M>>>>,
    started: bool,
    events_processed: u64,
}

impl<M: Payload> Simulation<M> {
    /// Creates a simulation with a zero-latency network and the given RNG
    /// seed.
    pub fn new(seed: u64) -> Self {
        Simulation::with_network(seed, InstantNetwork)
    }

    /// Creates a simulation over a specific network model.
    pub fn with_network<N: NetworkModel + 'static>(seed: u64, network: N) -> Self {
        Simulation {
            core: SimCore {
                now: Instant::EPOCH,
                queue: BinaryHeap::new(),
                seq: 0,
                next_timer: 0,
                cancelled: BitSet::default(),
                network: Box::new(network),
                rng: SmallRng::seed_from_u64(seed),
                detached: Vec::new(),
                tracer: Default::default(),
            },
            nodes: Vec::new(),
            started: false,
            events_processed: 0,
        }
    }

    /// Registers a node and returns its id. Nodes added after the
    /// simulation has started receive their [`Event::Started`] at the
    /// current virtual time.
    pub fn add_node<N: AnyNode<M>>(&mut self, node: N) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("node count fits in u32"));
        self.nodes.push(Some(Box::new(node)));
        if self.started {
            self.core.push(self.core.now, id, Event::Started);
        }
        id
    }

    /// The current virtual time.
    pub fn now(&self) -> Instant {
        self.core.now
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of messages sent over the simulated network so far (derived
    /// from the per-node trace counters — there is no separate tally).
    pub fn messages_sent(&self) -> u64 {
        self.core.tracer.total_sent()
    }

    /// Number of registered nodes (including detached ones).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Detaches a node: every future delivery to it is dropped. Models a
    /// crash injected by the harness rather than by the node itself.
    pub fn detach_node(&mut self, id: NodeId) {
        self.core.mark_detached(id);
        self.core
            .tracer
            .record(self.core.now, TraceEvent::NodeDetached { node: id });
    }

    /// Starts recording a bounded ring of [`TraceRecord`]s (per-node
    /// counters are always collected, ring or not).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.core.tracer.enable(capacity);
    }

    /// The recorded trace, oldest first (empty unless
    /// [`Simulation::enable_trace`] was called).
    pub fn trace(&self) -> impl Iterator<Item = &TraceRecord> {
        self.core.tracer.records()
    }

    /// How many trace records were evicted from the ring.
    pub fn trace_dropped(&self) -> u64 {
        self.core.tracer.dropped()
    }

    /// Communication counters for one node.
    pub fn node_counters(&self, id: NodeId) -> NodeCounters {
        self.core.tracer.counters(id)
    }

    /// Whether a node is detached (crashed).
    pub fn is_detached(&self, id: NodeId) -> bool {
        self.core.is_detached(id)
    }

    /// Bridges the simulator's observability into `obs`: per-node
    /// communication counters become `sim_*` registry metrics and any
    /// recorded trace ring is replayed into the journal as `sim_event`
    /// lines. Call once at the end of a run.
    pub fn export_obs(&self, obs: &aqua_obs::Obs) {
        use aqua_obs::json::JsonValue;

        let registry = obs.registry();
        for (node, counters) in self.core.tracer.all_counters() {
            let node = node.index().to_string();
            let labels = [("node", node.as_str())];
            registry
                .counter("sim_messages_sent_total", &labels)
                .add(counters.sent);
            registry
                .counter("sim_messages_delivered_total", &labels)
                .add(counters.delivered);
            registry
                .counter("sim_timers_fired_total", &labels)
                .add(counters.timers_fired);
        }
        registry
            .counter("sim_trace_dropped_total", &[])
            .add(self.core.tracer.dropped());

        let journal = obs.journal();
        for record in self.core.tracer.records() {
            let fields = JsonValue::object().field("at_nanos", record.at.as_nanos());
            let fields = match &record.event {
                TraceEvent::NodeStarted { node } => fields
                    .field("event", "node_started")
                    .field("node", u64::from(node.index())),
                TraceEvent::MessageSent {
                    from,
                    to,
                    size,
                    deliver_at,
                } => fields
                    .field("event", "message_sent")
                    .field("from", u64::from(from.index()))
                    .field("to", u64::from(to.index()))
                    .field("size", *size)
                    .field("deliver_at_nanos", deliver_at.as_nanos()),
                TraceEvent::MessageDelivered { from, to } => fields
                    .field("event", "message_delivered")
                    .field("from", u64::from(from.index()))
                    .field("to", u64::from(to.index())),
                TraceEvent::TimerFired { node } => fields
                    .field("event", "timer_fired")
                    .field("node", u64::from(node.index())),
                TraceEvent::NodeDetached { node } => fields
                    .field("event", "node_detached")
                    .field("node", u64::from(node.index())),
            };
            journal.emit_event("sim_event", fields);
        }
        journal.flush();
    }

    /// Injects a message from `from` to `to` at absolute time `at`,
    /// bypassing the network model. Intended for tests and harnesses.
    pub fn schedule_message(&mut self, at: Instant, from: NodeId, to: NodeId, payload: M) {
        self.core.push(at, to, Event::Message { from, payload });
    }

    /// Immutable, downcast access to a node's state.
    ///
    /// Returns `None` if the id is unknown or the concrete type does not
    /// match. Detached (crashed) nodes remain inspectable.
    pub fn node<T: 'static>(&self, id: NodeId) -> Option<&T> {
        self.nodes
            .get(id.0 as usize)?
            .as_deref()?
            .as_any()
            .downcast_ref::<T>()
    }

    /// Mutable, downcast access to a node's state.
    pub fn node_mut<T: 'static>(&mut self, id: NodeId) -> Option<&mut T> {
        self.nodes
            .get_mut(id.0 as usize)?
            .as_deref_mut()?
            .as_any_mut()
            .downcast_mut::<T>()
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for index in 0..self.nodes.len() {
            self.core
                .push(self.core.now, NodeId(index as u32), Event::Started);
        }
    }

    /// Processes the single next event. Returns `false` when the queue is
    /// empty.
    pub fn step(&mut self) -> bool {
        self.ensure_started();
        self.step_bounded(None)
    }

    /// Pops and dispatches the next event, honoring an optional inclusive
    /// deadline with a single heap peek (no pop-and-reinsert, no second
    /// comparison pass in the caller).
    ///
    /// This is the hottest remaining loop of the workspace when the
    /// simulator drives fleet-scale scenarios, so the dispatch path is kept
    /// allocation-free: cancelled timers are one bit probe, detached nodes
    /// one bounds-checked flag load, and the per-node trace counters are a
    /// dense vector rather than a hash map.
    #[aqua::hot_path]
    fn step_bounded(&mut self, deadline: Option<Instant>) -> bool {
        loop {
            match self.core.queue.peek() {
                None => return false,
                Some(Reverse(next)) => {
                    if let Some(deadline) = deadline {
                        if next.at > deadline {
                            return false;
                        }
                    }
                }
            }
            let Some(Reverse(scheduled)) = self.core.queue.pop() else {
                return false;
            };
            debug_assert!(
                scheduled.at >= self.core.now,
                "time must not move backwards"
            );
            self.core.now = scheduled.at;

            // Drop cancelled timers and deliveries to detached nodes.
            if let Event::Timer { token } = &scheduled.event {
                if self.core.cancelled.take(token.value()) {
                    continue;
                }
            }
            if self.core.is_detached(scheduled.target) {
                continue;
            }

            let Scheduled { target, event, .. } = scheduled;
            match &event {
                Event::Started => self
                    .core
                    .tracer
                    .record(self.core.now, TraceEvent::NodeStarted { node: target }),
                Event::Message { from, .. } => self.core.tracer.record(
                    self.core.now,
                    TraceEvent::MessageDelivered {
                        from: *from,
                        to: target,
                    },
                ),
                Event::Timer { .. } => self
                    .core
                    .tracer
                    .record(self.core.now, TraceEvent::TimerFired { node: target }),
            }
            let mut node = match self.nodes.get_mut(target.0 as usize) {
                Some(slot) => slot.take().expect("node not re-entrantly dispatched"),
                None => continue,
            };
            {
                let mut ctx = Context {
                    ops: &mut self.core,
                    self_id: target,
                };
                node.on_event(event, &mut ctx);
            }
            self.nodes[target.0 as usize] = Some(node);
            self.events_processed += 1;
            return true;
        }
    }

    /// Runs until the event queue is exhausted.
    pub fn run_until_idle(&mut self) {
        while self.step() {}
    }

    /// Runs until virtual time reaches `deadline` or the queue empties.
    ///
    /// Boundary contract (pinned by `run_until_boundary_*` tests and
    /// mirrored exactly by [`crate::ShardedSimulation::run_until`]): events
    /// scheduled at *exactly* `deadline` are processed, including zero-delay
    /// cascades they spawn at that same instant; events later than
    /// `deadline` stay queued; afterwards `now()` equals `deadline` even if
    /// the queue emptied earlier.
    pub fn run_until(&mut self, deadline: Instant) {
        self.ensure_started();
        while self.step_bounded(Some(deadline)) {}
        self.core.now = self.core.now.max(deadline);
    }

    /// Runs for `span` of virtual time from the current instant.
    pub fn run_for(&mut self, span: Duration) {
        let deadline = self.core.now.saturating_add(span);
        self.run_until(deadline);
    }
}

impl<M: Payload> fmt::Debug for Simulation<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.core.now)
            .field("nodes", &self.nodes.len())
            .field("pending_events", &self.core.queue.len())
            .field("events_processed", &self.events_processed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TimerToken;
    use crate::node::Node;

    #[derive(Clone, Debug)]
    enum Msg {
        Ping,
        Pong,
    }
    impl Payload for Msg {}

    /// Replies Pong to every Ping; log of (time_ms, kind) for assertions.
    #[derive(Default)]
    struct Echo {
        log: Vec<(u64, &'static str)>,
    }

    impl Node<Msg> for Echo {
        fn on_event(&mut self, event: Event<Msg>, ctx: &mut Context<'_, Msg>) {
            match event {
                Event::Started => self.log.push((ctx.now().as_nanos(), "start")),
                Event::Message { from, payload } => match payload {
                    Msg::Ping => {
                        self.log.push((ctx.now().as_nanos(), "ping"));
                        ctx.send(from, Msg::Pong);
                    }
                    Msg::Pong => self.log.push((ctx.now().as_nanos(), "pong")),
                },
                Event::Timer { .. } => self.log.push((ctx.now().as_nanos(), "timer")),
            }
        }
    }

    #[test]
    fn started_delivered_to_all_nodes() {
        let mut sim = Simulation::<Msg>::new(1);
        let a = sim.add_node(Echo::default());
        let b = sim.add_node(Echo::default());
        sim.run_until_idle();
        assert_eq!(sim.node::<Echo>(a).unwrap().log, vec![(0, "start")]);
        assert_eq!(sim.node::<Echo>(b).unwrap().log, vec![(0, "start")]);
    }

    #[test]
    fn message_roundtrip() {
        let mut sim = Simulation::<Msg>::new(1);
        let a = sim.add_node(Echo::default());
        let b = sim.add_node(Echo::default());
        sim.schedule_message(Instant::from_millis(1), a, b, Msg::Ping);
        sim.run_until_idle();
        let b_log = &sim.node::<Echo>(b).unwrap().log;
        assert!(b_log.contains(&(1_000_000, "ping")));
        let a_log = &sim.node::<Echo>(a).unwrap().log;
        assert!(a_log.iter().any(|(_, k)| *k == "pong"));
        assert_eq!(sim.messages_sent(), 1, "only the Pong used the network");
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut sim = Simulation::<Msg>::new(1);
        let a = sim.add_node(Echo::default());
        let b = sim.add_node(Echo::default());
        sim.schedule_message(Instant::from_millis(10), a, b, Msg::Ping);
        sim.run_until(Instant::from_millis(5));
        assert_eq!(sim.now(), Instant::from_millis(5));
        assert!(sim.node::<Echo>(b).unwrap().log.len() == 1, "only start");
        sim.run_until(Instant::from_millis(10));
        assert!(sim
            .node::<Echo>(b)
            .unwrap()
            .log
            .contains(&(10_000_000, "ping")));
    }

    #[test]
    fn detached_nodes_receive_nothing() {
        let mut sim = Simulation::<Msg>::new(1);
        let a = sim.add_node(Echo::default());
        let b = sim.add_node(Echo::default());
        sim.run_until(Instant::from_millis(1));
        sim.detach_node(b);
        sim.schedule_message(Instant::from_millis(2), a, b, Msg::Ping);
        sim.run_until_idle();
        assert!(sim.is_detached(b));
        let log = &sim.node::<Echo>(b).unwrap().log;
        assert_eq!(log.len(), 1, "only the start event: {log:?}");
    }

    /// A node that sets a timer on start and records whether it fired.
    struct TimerNode {
        cancel: bool,
        token: Option<TimerToken>,
        fired: bool,
    }

    impl Node<Msg> for TimerNode {
        fn on_event(&mut self, event: Event<Msg>, ctx: &mut Context<'_, Msg>) {
            match event {
                Event::Started => {
                    let token = ctx.set_timer(Duration::from_millis(5));
                    if self.cancel {
                        ctx.cancel_timer(token);
                    }
                    self.token = Some(token);
                }
                Event::Timer { token } => {
                    assert_eq!(Some(token), self.token);
                    self.fired = true;
                }
                Event::Message { .. } => {}
            }
        }
    }

    #[test]
    fn timers_fire_unless_cancelled() {
        let mut sim = Simulation::<Msg>::new(1);
        let keep = sim.add_node(TimerNode {
            cancel: false,
            token: None,
            fired: false,
        });
        let cancel = sim.add_node(TimerNode {
            cancel: true,
            token: None,
            fired: false,
        });
        sim.run_until_idle();
        assert!(sim.node::<TimerNode>(keep).unwrap().fired);
        assert!(!sim.node::<TimerNode>(cancel).unwrap().fired);
        assert_eq!(sim.now(), Instant::from_millis(5));
    }

    #[test]
    fn late_added_nodes_get_started() {
        let mut sim = Simulation::<Msg>::new(1);
        let _a = sim.add_node(Echo::default());
        sim.run_until(Instant::from_millis(3));
        let b = sim.add_node(Echo::default());
        sim.run_until_idle();
        assert_eq!(sim.node::<Echo>(b).unwrap().log, vec![(3_000_000, "start")]);
    }

    /// On each Ping received, immediately re-sends itself a Ping at the
    /// same instant, up to `cascade` times — a zero-delay cascade used to
    /// pin the deadline-boundary contract.
    struct Cascader {
        cascade: u32,
        handled: Vec<u64>,
    }

    impl Node<Msg> for Cascader {
        fn on_event(&mut self, event: Event<Msg>, ctx: &mut Context<'_, Msg>) {
            if let Event::Message { .. } = event {
                self.handled.push(ctx.now().as_nanos());
                if (self.handled.len() as u32) < self.cascade {
                    ctx.send_self(Duration::ZERO, Msg::Ping);
                }
            }
        }
    }

    /// Pins the `run_until` boundary contract the sharded engine must
    /// reproduce: events at exactly the deadline run, zero-delay cascades
    /// they spawn at that instant run too, later events do not, and `now()`
    /// lands exactly on the deadline.
    #[test]
    fn run_until_boundary_processes_deadline_events_and_cascades() {
        let mut sim = Simulation::<Msg>::new(1);
        let a = sim.add_node(Echo::default());
        let c = sim.add_node(Cascader {
            cascade: 3,
            handled: Vec::new(),
        });
        let deadline = Instant::from_millis(10);
        sim.schedule_message(deadline, a, c, Msg::Ping);
        sim.schedule_message(
            Instant::from_nanos(deadline.as_nanos() + 1),
            a,
            c,
            Msg::Ping,
        );
        sim.run_until(deadline);
        let handled = &sim.node::<Cascader>(c).unwrap().handled;
        assert_eq!(
            handled,
            &vec![deadline.as_nanos(); 3],
            "the deadline event and its same-instant cascade all run"
        );
        assert_eq!(sim.now(), deadline, "time lands exactly on the deadline");
        sim.run_until_idle();
        assert_eq!(
            sim.node::<Cascader>(c).unwrap().handled.len(),
            4,
            "the deadline+1ns event was deferred, not dropped"
        );
    }

    /// `run_until` past an empty queue still advances the clock to the
    /// deadline (and never beyond it when events stop earlier).
    #[test]
    fn run_until_boundary_advances_clock_on_idle_queue() {
        let mut sim = Simulation::<Msg>::new(1);
        let a = sim.add_node(Echo::default());
        let b = sim.add_node(Echo::default());
        sim.schedule_message(Instant::from_millis(2), a, b, Msg::Ping);
        sim.run_until(Instant::from_millis(50));
        assert_eq!(sim.now(), Instant::from_millis(50));
    }

    #[test]
    fn deterministic_under_same_seed() {
        fn run(seed: u64) -> Vec<(u64, &'static str)> {
            let mut sim =
                Simulation::with_network(seed, crate::network::UniformLan::aqua_testbed());
            let a = sim.add_node(Echo::default());
            let b = sim.add_node(Echo::default());
            for i in 0..20 {
                sim.schedule_message(Instant::from_millis(i), a, b, Msg::Ping);
            }
            sim.run_until_idle();
            sim.node::<Echo>(a).unwrap().log.clone()
        }
        assert_eq!(run(99), run(99));
        assert_ne!(
            run(99),
            run(100),
            "different seeds jitter delays differently"
        );
    }

    #[test]
    fn downcast_to_wrong_type_is_none() {
        let mut sim = Simulation::<Msg>::new(1);
        let a = sim.add_node(Echo::default());
        assert!(sim.node::<TimerNode>(a).is_none());
        assert!(sim.node::<Echo>(NodeId::new(42)).is_none());
    }

    #[test]
    fn trace_records_sends_deliveries_and_timers() {
        let mut sim = Simulation::<Msg>::new(1);
        sim.enable_trace(64);
        let a = sim.add_node(Echo::default());
        let b = sim.add_node(Echo::default());
        sim.schedule_message(Instant::from_millis(1), a, b, Msg::Ping);
        sim.run_until_idle();
        // b got the ping and replied: a sent nothing itself? No — the Pong
        // came from b; a only received. Counters reflect that.
        assert_eq!(sim.node_counters(b).sent, 1, "the Pong");
        assert_eq!(sim.node_counters(b).delivered, 1, "the Ping");
        assert_eq!(sim.node_counters(a).delivered, 1, "the Pong");
        let kinds: Vec<&'static str> = sim
            .trace()
            .map(|r| match r.event {
                TraceEvent::NodeStarted { .. } => "start",
                TraceEvent::MessageSent { .. } => "sent",
                TraceEvent::MessageDelivered { .. } => "delivered",
                TraceEvent::TimerFired { .. } => "timer",
                TraceEvent::NodeDetached { .. } => "detached",
            })
            .collect();
        assert_eq!(
            kinds,
            vec!["start", "start", "delivered", "sent", "delivered"]
        );
    }

    #[test]
    fn export_obs_bridges_counters_and_trace() {
        let (obs, reader) = aqua_obs::Obs::in_memory();
        let mut sim = Simulation::<Msg>::new(1);
        sim.enable_trace(64);
        let a = sim.add_node(Echo::default());
        let b = sim.add_node(Echo::default());
        sim.schedule_message(Instant::from_millis(1), a, b, Msg::Ping);
        sim.run_until_idle();
        sim.export_obs(&obs);

        let prom = obs.prometheus();
        assert!(
            prom.contains("sim_messages_sent_total{node=\"1\"} 1"),
            "{prom}"
        );
        assert!(prom.contains("sim_messages_delivered_total{node=\"0\"} 1"));
        assert!(
            prom.contains("sim_timers_fired_total") || !prom.contains("timer"),
            "no timers ran"
        );
        let events = reader.lines_containing(r#""type":"sim_event""#);
        assert!(
            events
                .iter()
                .any(|l| l.contains(r#""event":"message_sent""#)),
            "{events:?}"
        );
        assert!(events
            .iter()
            .any(|l| l.contains(r#""event":"node_started""#)));
    }

    #[test]
    fn send_self_bypasses_network() {
        struct SelfSender {
            got: bool,
        }
        impl Node<Msg> for SelfSender {
            fn on_event(&mut self, event: Event<Msg>, ctx: &mut Context<'_, Msg>) {
                match event {
                    Event::Started => ctx.send_self(Duration::from_millis(2), Msg::Ping),
                    Event::Message { from, .. } => {
                        assert_eq!(from, ctx.self_id());
                        self.got = true;
                    }
                    _ => {}
                }
            }
        }
        let mut sim = Simulation::<Msg>::new(1);
        let a = sim.add_node(SelfSender { got: false });
        sim.run_until_idle();
        assert!(sim.node::<SelfSender>(a).unwrap().got);
        assert_eq!(sim.messages_sent(), 0);
    }
}
