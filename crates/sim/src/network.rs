//! Network latency models for the simulated LAN.
//!
//! The paper's system model (§3): LAN links "do not experience frequent
//! fluctuations in traffic, \[but\] they may experience occasional periods of
//! high traffic, which may result in large delays in the message delivery
//! time". The models here cover the spectrum from an idealized constant-
//! latency switch to a congested LAN with delay spikes.

use aqua_core::time::{Duration, Instant};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::node::NodeId;

/// Decides the one-way delivery latency of each message.
///
/// Implementations may be stateful (e.g. congestion epochs) and may use the
/// deterministic simulation RNG.
pub trait NetworkModel {
    /// Latency for a message of `size` bytes from `from` to `to`, sent as
    /// part of a multicast to `fanout` destinations at time `now`.
    fn delay(
        &mut self,
        from: NodeId,
        to: NodeId,
        size: usize,
        fanout: usize,
        now: Instant,
        rng: &mut SmallRng,
    ) -> Duration;
}

/// Zero-latency network; useful for unit tests that want pure causality.
#[derive(Debug, Clone, Copy, Default)]
pub struct InstantNetwork;

impl NetworkModel for InstantNetwork {
    fn delay(
        &mut self,
        _from: NodeId,
        _to: NodeId,
        _size: usize,
        _fanout: usize,
        _now: Instant,
        _rng: &mut SmallRng,
    ) -> Duration {
        Duration::ZERO
    }
}

/// A well-behaved switched LAN: base latency, a per-byte term, a small
/// per-destination multicast cost, and uniform jitter.
#[derive(Debug, Clone)]
pub struct UniformLan {
    /// Fixed one-way latency (propagation + protocol stack).
    pub base: Duration,
    /// Additional latency per payload byte (inverse bandwidth).
    pub per_byte: Duration,
    /// Additional latency per extra multicast destination.
    pub per_fanout: Duration,
    /// Jitter: the delay is multiplied by `1 + U(0, jitter)`.
    pub jitter: f64,
}

impl UniformLan {
    /// A LAN calibrated so a minimal request/response pair costs about the
    /// paper's observed 3.5 ms floor (§6): ~1.5 ms one-way through the
    /// gateway + Ensemble stack, small jitter.
    pub fn aqua_testbed() -> Self {
        UniformLan {
            base: Duration::from_micros(1_500),
            per_byte: Duration::from_nanos(80), // ~100 Mb/s effective
            per_fanout: Duration::from_micros(40),
            jitter: 0.10,
        }
    }
}

impl Default for UniformLan {
    fn default() -> Self {
        UniformLan::aqua_testbed()
    }
}

impl NetworkModel for UniformLan {
    fn delay(
        &mut self,
        _from: NodeId,
        _to: NodeId,
        size: usize,
        fanout: usize,
        _now: Instant,
        rng: &mut SmallRng,
    ) -> Duration {
        let raw = self.base
            + self.per_byte.saturating_mul(size as u64)
            + self
                .per_fanout
                .saturating_mul(fanout.saturating_sub(1) as u64);
        let factor = 1.0 + rng.gen_range(0.0..=self.jitter.max(0.0));
        raw.mul_f64(factor)
    }
}

/// A LAN with occasional congestion epochs that multiply delays, matching
/// the "occasional periods of high traffic" of §3.
///
/// Congestion is modeled as a two-state process: at each message, if the
/// network is calm it becomes congested with probability `spike_prob`; a
/// congestion epoch lasts `spike_duration` and scales delays by
/// `spike_scale`.
#[derive(Debug, Clone)]
pub struct CongestedLan {
    /// The underlying calm-network behaviour.
    pub lan: UniformLan,
    /// Probability per message of entering a congestion epoch.
    pub spike_prob: f64,
    /// Multiplier applied to delays during congestion.
    pub spike_scale: f64,
    /// Length of one congestion epoch.
    pub spike_duration: Duration,
    congested_until: Option<Instant>,
}

impl CongestedLan {
    /// Creates a congested LAN over the given calm behaviour.
    pub fn new(
        lan: UniformLan,
        spike_prob: f64,
        spike_scale: f64,
        spike_duration: Duration,
    ) -> Self {
        CongestedLan {
            lan,
            spike_prob,
            spike_scale,
            spike_duration,
            congested_until: None,
        }
    }

    /// Whether the network is congested at `now`.
    pub fn is_congested(&self, now: Instant) -> bool {
        self.congested_until.is_some_and(|until| now < until)
    }
}

impl NetworkModel for CongestedLan {
    fn delay(
        &mut self,
        from: NodeId,
        to: NodeId,
        size: usize,
        fanout: usize,
        now: Instant,
        rng: &mut SmallRng,
    ) -> Duration {
        if !self.is_congested(now) && rng.gen_bool(self.spike_prob.clamp(0.0, 1.0)) {
            self.congested_until = Some(now.saturating_add(self.spike_duration));
        }
        let base = self.lan.delay(from, to, size, fanout, now, rng);
        if self.is_congested(now) {
            base.mul_f64(self.spike_scale.max(1.0))
        } else {
            base
        }
    }
}

/// Per-destination-pair latency matrix over a [`UniformLan`]: adds a fixed
/// extra term per (from, to) pair. Used to model replicas at different
/// "distances" (e.g. the static-distance baseline of \[9\]).
#[derive(Debug, Clone)]
pub struct PerLinkLan {
    /// The shared base behaviour.
    pub lan: UniformLan,
    extra: std::collections::HashMap<(NodeId, NodeId), Duration>,
}

impl PerLinkLan {
    /// Creates a per-link LAN with no extra latencies.
    pub fn new(lan: UniformLan) -> Self {
        PerLinkLan {
            lan,
            extra: std::collections::HashMap::new(),
        }
    }

    /// Sets the extra one-way latency between a pair of nodes (applied in
    /// both directions).
    pub fn set_extra(&mut self, a: NodeId, b: NodeId, extra: Duration) -> &mut Self {
        self.extra.insert((a, b), extra);
        self.extra.insert((b, a), extra);
        self
    }

    /// The extra latency configured between two nodes.
    pub fn extra(&self, from: NodeId, to: NodeId) -> Duration {
        self.extra
            .get(&(from, to))
            .copied()
            .unwrap_or(Duration::ZERO)
    }
}

impl NetworkModel for PerLinkLan {
    fn delay(
        &mut self,
        from: NodeId,
        to: NodeId,
        size: usize,
        fanout: usize,
        now: Instant,
        rng: &mut SmallRng,
    ) -> Duration {
        self.lan
            .delay(from, to, size, fanout, now, rng)
            .saturating_add(self.extra(from, to))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn instant_network_is_zero() {
        let mut net = InstantNetwork;
        assert_eq!(
            net.delay(n(0), n(1), 1000, 5, Instant::EPOCH, &mut rng()),
            Duration::ZERO
        );
    }

    #[test]
    fn uniform_lan_scales_with_size_and_fanout() {
        let mut net = UniformLan {
            base: Duration::from_micros(100),
            per_byte: Duration::from_nanos(100),
            per_fanout: Duration::from_micros(10),
            jitter: 0.0,
        };
        let mut r = rng();
        let small = net.delay(n(0), n(1), 0, 1, Instant::EPOCH, &mut r);
        let big = net.delay(n(0), n(1), 10_000, 1, Instant::EPOCH, &mut r);
        let multi = net.delay(n(0), n(1), 0, 5, Instant::EPOCH, &mut r);
        assert_eq!(small, Duration::from_micros(100));
        assert_eq!(big, Duration::from_micros(100 + 1_000));
        assert_eq!(multi, Duration::from_micros(100 + 40));
    }

    #[test]
    fn uniform_lan_jitter_bounded() {
        let mut net = UniformLan {
            base: Duration::from_micros(100),
            per_byte: Duration::ZERO,
            per_fanout: Duration::ZERO,
            jitter: 0.5,
        };
        let mut r = rng();
        for _ in 0..200 {
            let d = net.delay(n(0), n(1), 0, 1, Instant::EPOCH, &mut r);
            assert!(d >= Duration::from_micros(100));
            assert!(d <= Duration::from_micros(150));
        }
    }

    #[test]
    fn congestion_epochs_scale_delays() {
        let lan = UniformLan {
            base: Duration::from_micros(100),
            per_byte: Duration::ZERO,
            per_fanout: Duration::ZERO,
            jitter: 0.0,
        };
        // Always spike, 10× scale, 1 ms epochs.
        let mut net = CongestedLan::new(lan, 1.0, 10.0, Duration::from_millis(1));
        let mut r = rng();
        let d = net.delay(n(0), n(1), 0, 1, Instant::EPOCH, &mut r);
        assert_eq!(d, Duration::from_millis(1));
        assert!(net.is_congested(Instant::EPOCH));
        assert!(!net.is_congested(Instant::from_millis(2)));
        // After the epoch (and with spike_prob left at 1.0 it re-enters).
        let d2 = net.delay(n(0), n(1), 0, 1, Instant::from_millis(2), &mut r);
        assert_eq!(d2, Duration::from_millis(1));
    }

    #[test]
    fn congestion_never_triggers_with_zero_probability() {
        let lan = UniformLan {
            base: Duration::from_micros(100),
            per_byte: Duration::ZERO,
            per_fanout: Duration::ZERO,
            jitter: 0.0,
        };
        let mut net = CongestedLan::new(lan, 0.0, 10.0, Duration::from_millis(1));
        let mut r = rng();
        for i in 0..100 {
            let d = net.delay(n(0), n(1), 0, 1, Instant::from_millis(i), &mut r);
            assert_eq!(d, Duration::from_micros(100));
        }
    }

    #[test]
    fn per_link_extra_is_symmetric() {
        let lan = UniformLan {
            base: Duration::from_micros(100),
            per_byte: Duration::ZERO,
            per_fanout: Duration::ZERO,
            jitter: 0.0,
        };
        let mut net = PerLinkLan::new(lan);
        net.set_extra(n(0), n(1), Duration::from_millis(5));
        let mut r = rng();
        assert_eq!(
            net.delay(n(0), n(1), 0, 1, Instant::EPOCH, &mut r),
            Duration::from_micros(5_100)
        );
        assert_eq!(
            net.delay(n(1), n(0), 0, 1, Instant::EPOCH, &mut r),
            Duration::from_micros(5_100)
        );
        assert_eq!(
            net.delay(n(0), n(2), 0, 1, Instant::EPOCH, &mut r),
            Duration::from_micros(100)
        );
    }
}
