//! WAN/geo topology layer: region graphs with per-pair latency matrices.
//!
//! The LAN models in [`crate::network`] treat every pair of nodes as
//! equidistant (modulo per-link tweaks). Geo-scale experiments need the
//! opposite: latency is dominated by *which regions* the endpoints sit in,
//! per the geo-SMR deployment-ranking literature where inter-region RTT
//! matrices drive replica placement. [`GeoTopology`] makes the region graph
//! a first-class, data-driven input: a list of named regions plus a full
//! round-trip-time matrix, with per-byte/per-fanout terms, bounded
//! multiplicative jitter, probabilistic loss, and [`LinkFaultHook`]s that
//! compose with `crates/faults` schedules.
//!
//! The topology also anchors the sharded engine's conservative
//! synchronization: [`GeoTopology::min_inter_region_delay`] is the smallest
//! one-way latency any cross-region message can experience, which is
//! exactly the lookahead a CMB-style time-window barrier needs. Everything
//! that perturbs a delay (jitter, loss, hooks) is constrained to only
//! *increase* it, so the lookahead derived from the raw matrix stays a
//! valid lower bound.

use aqua_core::time::{Duration, Instant};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::network::NetworkModel;
use crate::node::NodeId;

/// Delay assigned to a "lost" message: one virtual day, far beyond any
/// experiment horizon, so the event simply never fires within the run.
/// Matches the drop sentinel used by the workload harness's fault wrapper.
pub const DROP_DELAY: Duration = Duration::from_secs(86_400);

/// What a [`LinkFaultHook`] decided to do with a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkOutcome {
    /// Deliver with the given (possibly increased) one-way delay.
    Deliver(Duration),
    /// Drop the message (modelled as [`DROP_DELAY`]).
    Drop,
}

/// A per-link fault injector composing with the topology.
///
/// Hooks see the region pair, the virtual send time, and the delay the
/// topology computed, and may delay the message further or drop it.
///
/// # Contract
///
/// * A returned `Deliver(d)` must satisfy `d >= delay` — hooks may only
///   *increase* latency. The sharded engine's lookahead is derived from the
///   raw matrix; a hook that shortened a delay below the minimum
///   inter-region latency would break conservative synchronization.
/// * Hooks must be pure functions of their arguments (no interior
///   randomness or wall-clock reads), so replays and different worker
///   counts see identical histories.
pub trait LinkFaultHook: Send + Sync {
    /// Decides the fate of one message on the `from_region → to_region`
    /// link sent at `now` with topology-computed one-way `delay`.
    fn apply(
        &self,
        from_region: usize,
        to_region: usize,
        now: Instant,
        delay: Duration,
    ) -> LinkOutcome;
}

/// A named region with an intra-region (LAN-ish) one-way base latency.
#[derive(Debug, Clone)]
pub struct RegionSpec {
    /// Human-readable region name (e.g. `"virginia"`).
    pub name: String,
    /// One-way latency between two nodes inside this region.
    pub local_delay: Duration,
}

impl RegionSpec {
    /// A region with the default 150 µs intra-region one-way latency
    /// (same-datacenter switched network).
    pub fn named(name: &str) -> Self {
        RegionSpec {
            name: name.to_string(),
            local_delay: Duration::from_micros(150),
        }
    }
}

/// A WAN topology: regions plus a full inter-region RTT matrix.
///
/// One-way latency between distinct regions is `rtt / 2`; within a region
/// it is the region's `local_delay`. On top of the base latency the
/// topology adds a per-byte bandwidth term and a per-extra-destination
/// fan-out term, multiplies by `1 + U(0, jitter)`, and drops messages with
/// probability `loss` (delivering them at [`DROP_DELAY`] instead).
#[derive(Debug, Clone)]
pub struct GeoTopology {
    regions: Vec<RegionSpec>,
    /// Full one-way matrix in nanoseconds, row-major; `one_way[i][j]`.
    one_way: Vec<Vec<Duration>>,
    /// Additional latency per payload byte.
    pub per_byte: Duration,
    /// Additional latency per extra multicast destination.
    pub per_fanout: Duration,
    /// Multiplicative jitter: delay is scaled by `1 + U(0, jitter)`.
    pub jitter: f64,
    /// Per-message loss probability in `[0, 1]`.
    pub loss: f64,
}

impl GeoTopology {
    /// Builds a topology from region specs and a symmetric RTT matrix in
    /// milliseconds (`rtt_ms[i][j]` = round trip between regions `i` and
    /// `j`; the diagonal is ignored).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square with one row per region — a
    /// malformed scenario is a configuration error, not a runtime
    /// condition.
    pub fn from_rtt_ms(regions: Vec<RegionSpec>, rtt_ms: &[Vec<f64>]) -> Self {
        assert_eq!(
            rtt_ms.len(),
            regions.len(),
            "RTT matrix must have one row per region"
        );
        let one_way = rtt_ms
            .iter()
            .enumerate()
            .map(|(i, row)| {
                assert_eq!(
                    row.len(),
                    regions.len(),
                    "RTT matrix row {i} must have one entry per region"
                );
                row.iter()
                    .enumerate()
                    .map(|(j, rtt)| {
                        if i == j {
                            regions[i].local_delay
                        } else {
                            Duration::from_nanos((rtt.max(0.0) * 500_000.0) as u64)
                        }
                    })
                    .collect()
            })
            .collect();
        GeoTopology {
            regions,
            one_way,
            per_byte: Duration::from_nanos(80),
            per_fanout: Duration::from_micros(40),
            jitter: 0.10,
            loss: 0.0,
        }
    }

    /// The built-in five-region AWS dataset from the geo-SMR
    /// deployment-ranking evaluation: Virginia, California, Ireland,
    /// Tokyo, São Paulo, with measured inter-region RTTs (ms).
    pub fn aws_5region() -> Self {
        let regions = ["virginia", "california", "ireland", "tokyo", "saopaulo"]
            .iter()
            .map(|n| RegionSpec::named(n))
            .collect();
        #[rustfmt::skip]
        let rtt: Vec<Vec<f64>> = vec![
            //           V      C      I      T      S
            vec![   0.0,  62.0,  80.0, 162.0, 120.0], // virginia
            vec![  62.0,   0.0, 138.0, 108.0, 180.0], // california
            vec![  80.0, 138.0,   0.0, 222.0, 184.0], // ireland
            vec![ 162.0, 108.0, 222.0,   0.0, 270.0], // tokyo
            vec![ 120.0, 180.0, 184.0, 270.0,   0.0], // saopaulo
        ];
        GeoTopology::from_rtt_ms(regions, &rtt)
    }

    /// A ten-region AWS-style dataset extending [`GeoTopology::aws_5region`]
    /// with Oregon, Frankfurt, Singapore, Sydney, and Mumbai.
    pub fn aws_10region() -> Self {
        let regions = [
            "virginia",
            "california",
            "ireland",
            "tokyo",
            "saopaulo",
            "oregon",
            "frankfurt",
            "singapore",
            "sydney",
            "mumbai",
        ]
        .iter()
        .map(|n| RegionSpec::named(n))
        .collect();
        #[rustfmt::skip]
        let rtt: Vec<Vec<f64>> = vec![
            //           V      C      I      T      S      O      F     Sg     Sy      M
            vec![   0.0,  62.0,  80.0, 162.0, 120.0,  72.0,  90.0, 230.0, 200.0, 190.0], // virginia
            vec![  62.0,   0.0, 138.0, 108.0, 180.0,  22.0, 148.0, 176.0, 150.0, 230.0], // california
            vec![  80.0, 138.0,   0.0, 222.0, 184.0, 130.0,  26.0, 180.0, 280.0, 122.0], // ireland
            vec![ 162.0, 108.0, 222.0,   0.0, 270.0, 100.0, 230.0,  70.0, 110.0, 130.0], // tokyo
            vec![ 120.0, 180.0, 184.0, 270.0,   0.0, 180.0, 200.0, 330.0, 310.0, 300.0], // saopaulo
            vec![  72.0,  22.0, 130.0, 100.0, 180.0,   0.0, 140.0, 166.0, 140.0, 220.0], // oregon
            vec![  90.0, 148.0,  26.0, 230.0, 200.0, 140.0,   0.0, 160.0, 290.0, 110.0], // frankfurt
            vec![ 230.0, 176.0, 180.0,  70.0, 330.0, 166.0, 160.0,   0.0,  92.0,  60.0], // singapore
            vec![ 200.0, 150.0, 280.0, 110.0, 310.0, 140.0, 290.0,  92.0,   0.0, 150.0], // sydney
            vec![ 190.0, 230.0, 122.0, 130.0, 300.0, 220.0, 110.0,  60.0, 150.0,   0.0], // mumbai
        ];
        GeoTopology::from_rtt_ms(regions, &rtt)
    }

    /// Resolves a built-in dataset by name (`"aws_5region"` /
    /// `"aws_10region"`), used by the scenario loader.
    pub fn dataset(name: &str) -> Option<Self> {
        match name {
            "aws_5region" => Some(GeoTopology::aws_5region()),
            "aws_10region" => Some(GeoTopology::aws_10region()),
            _ => None,
        }
    }

    /// Number of regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Region specs, in index order.
    pub fn regions(&self) -> &[RegionSpec] {
        &self.regions
    }

    /// Index of the region named `name`.
    pub fn region_index(&self, name: &str) -> Option<usize> {
        self.regions.iter().position(|r| r.name == name)
    }

    /// Base one-way latency between two regions (intra-region `local_delay`
    /// on the diagonal).
    pub fn one_way(&self, from: usize, to: usize) -> Duration {
        self.one_way[from][to]
    }

    /// The minimum base one-way latency between any two *distinct* regions
    /// — the conservative lookahead for cross-shard synchronization when
    /// shards partition regions. `None` for single-region topologies.
    ///
    /// Safe as lookahead because every term stacked on top of the base
    /// (per-byte, per-fanout, `1 + U(0, jitter)` with `jitter >= 0`, loss
    /// as [`DROP_DELAY`], and [`LinkFaultHook`]s per their contract) only
    /// increases the delay.
    pub fn min_inter_region_delay(&self) -> Option<Duration> {
        let n = self.regions.len();
        let mut min = None;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    let d = self.one_way[i][j];
                    min = Some(min.map_or(d, |m: Duration| m.min(d)));
                }
            }
        }
        min
    }

    /// Computes one message's delay on the `from → to` region link,
    /// applying bandwidth/fan-out terms, jitter, loss, and hooks, drawing
    /// randomness from `rng` (the *sender's* stream under the sharded
    /// engine, so the result is independent of how nodes are partitioned).
    // Flat argument list on purpose: this is the per-message hot path and
    // every caller already has the scalars in hand.
    #[allow(clippy::too_many_arguments)]
    pub fn link_delay(
        &self,
        from: usize,
        to: usize,
        size: usize,
        fanout: usize,
        now: Instant,
        hooks: &[Box<dyn LinkFaultHook>],
        rng: &mut SmallRng,
    ) -> Duration {
        let raw = self
            .one_way(from, to)
            .saturating_add(self.per_byte.saturating_mul(size as u64))
            .saturating_add(
                self.per_fanout
                    .saturating_mul(fanout.saturating_sub(1) as u64),
            );
        let jittered = if self.jitter > 0.0 {
            raw.mul_f64(1.0 + rng.gen_range(0.0..=self.jitter))
        } else {
            raw
        };
        let mut delay = if self.loss > 0.0 && rng.gen_bool(self.loss.clamp(0.0, 1.0)) {
            DROP_DELAY
        } else {
            jittered
        };
        for hook in hooks {
            match hook.apply(from, to, now, delay) {
                LinkOutcome::Deliver(d) => delay = d.max(delay),
                LinkOutcome::Drop => delay = DROP_DELAY,
            }
        }
        delay
    }
}

/// Adapter running a [`GeoTopology`] as a sequential [`NetworkModel`]: a
/// node-to-region assignment plus the topology and its fault hooks. The
/// sharded engine consumes the topology directly; this adapter lets the
/// classic [`crate::Simulation`] run the same scenarios.
pub struct GeoNetwork {
    topology: GeoTopology,
    region_of: Vec<u32>,
    round_robin: bool,
    hooks: Vec<Box<dyn LinkFaultHook>>,
}

impl GeoNetwork {
    /// Wraps a topology with an initially empty node-to-region map
    /// (unassigned nodes land in region 0).
    pub fn new(topology: GeoTopology) -> Self {
        GeoNetwork {
            topology,
            region_of: Vec::new(),
            round_robin: false,
            hooks: Vec::new(),
        }
    }

    /// Wraps a topology with a round-robin default: a node with no
    /// explicit assignment lives in region `node_index mod regions`. Used
    /// by harnesses that spread an existing fleet across regions without
    /// per-node wiring.
    pub fn round_robin(topology: GeoTopology) -> Self {
        GeoNetwork {
            topology,
            region_of: Vec::new(),
            round_robin: true,
            hooks: Vec::new(),
        }
    }

    /// Assigns `node` to `region` (index into the topology's region list).
    pub fn assign(&mut self, node: NodeId, region: usize) -> &mut Self {
        assert!(
            region < self.topology.region_count(),
            "region index out of range"
        );
        let idx = node.index() as usize;
        if idx >= self.region_of.len() {
            self.region_of.resize(idx + 1, 0);
        }
        self.region_of[idx] = region as u32;
        self
    }

    /// Adds a link-fault hook (applied in insertion order).
    pub fn add_hook(&mut self, hook: Box<dyn LinkFaultHook>) -> &mut Self {
        self.hooks.push(hook);
        self
    }

    /// The region a node was assigned to (round-robin or region 0 if
    /// never assigned, per the constructor used).
    pub fn region_of(&self, node: NodeId) -> usize {
        match self.region_of.get(node.index() as usize) {
            Some(r) => *r as usize,
            None if self.round_robin => node.index() as usize % self.topology.region_count(),
            None => 0,
        }
    }

    /// The wrapped topology.
    pub fn topology(&self) -> &GeoTopology {
        &self.topology
    }
}

impl NetworkModel for GeoNetwork {
    fn delay(
        &mut self,
        from: NodeId,
        to: NodeId,
        size: usize,
        fanout: usize,
        now: Instant,
        rng: &mut SmallRng,
    ) -> Duration {
        let fr = self.region_of(from);
        let tr = self.region_of(to);
        self.topology
            .link_delay(fr, tr, size, fanout, now, &self.hooks, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn one_way_is_half_rtt() {
        let topo = GeoTopology::aws_5region();
        let v = topo.region_index("virginia").unwrap();
        let i = topo.region_index("ireland").unwrap();
        assert_eq!(topo.one_way(v, i), Duration::from_millis(40));
        assert_eq!(topo.one_way(i, v), Duration::from_millis(40));
        assert_eq!(topo.one_way(v, v), Duration::from_micros(150));
    }

    #[test]
    fn min_inter_region_delay_is_smallest_off_diagonal() {
        let topo = GeoTopology::aws_5region();
        // Smallest RTT is Virginia–California at 62 ms → 31 ms one-way.
        assert_eq!(
            topo.min_inter_region_delay(),
            Some(Duration::from_millis(31))
        );
        let ten = GeoTopology::aws_10region();
        // California–Oregon at 22 ms → 11 ms one-way.
        assert_eq!(
            ten.min_inter_region_delay(),
            Some(Duration::from_millis(11))
        );
        let single = GeoTopology::from_rtt_ms(vec![RegionSpec::named("only")], &[vec![0.0]]);
        assert_eq!(single.min_inter_region_delay(), None);
    }

    #[test]
    fn link_delay_never_below_base_and_respects_loss() {
        let mut topo = GeoTopology::aws_5region();
        topo.jitter = 0.25;
        topo.loss = 0.0;
        let base = topo.one_way(0, 1);
        let mut r = rng();
        for _ in 0..100 {
            let d = topo.link_delay(0, 1, 0, 1, Instant::EPOCH, &[], &mut r);
            assert!(d >= base, "jitter only increases delay");
            assert!(d <= base.mul_f64(1.25));
        }
        topo.loss = 1.0;
        let d = topo.link_delay(0, 1, 0, 1, Instant::EPOCH, &[], &mut r);
        assert_eq!(d, DROP_DELAY, "certain loss maps to the drop sentinel");
    }

    struct SlowLink;
    impl LinkFaultHook for SlowLink {
        fn apply(&self, from: usize, to: usize, _now: Instant, delay: Duration) -> LinkOutcome {
            if from == 0 && to == 1 {
                LinkOutcome::Deliver(delay.saturating_add(Duration::from_millis(500)))
            } else {
                LinkOutcome::Deliver(delay)
            }
        }
    }

    #[test]
    fn hooks_compose_and_only_increase() {
        let mut topo = GeoTopology::aws_5region();
        topo.jitter = 0.0;
        let hooks: Vec<Box<dyn LinkFaultHook>> = vec![Box::new(SlowLink)];
        let mut r = rng();
        let slow = topo.link_delay(0, 1, 0, 1, Instant::EPOCH, &hooks, &mut r);
        assert_eq!(
            slow,
            topo.one_way(0, 1)
                .saturating_add(Duration::from_millis(500))
        );
        let untouched = topo.link_delay(1, 0, 0, 1, Instant::EPOCH, &hooks, &mut r);
        assert_eq!(untouched, topo.one_way(1, 0));
    }

    #[test]
    fn geo_network_maps_nodes_to_regions() {
        let mut net = GeoNetwork::new(GeoTopology::aws_5region());
        net.assign(NodeId::new(0), 0).assign(NodeId::new(1), 2);
        let mut topo_only = net.topology().clone();
        topo_only.jitter = 0.0;
        let expected = topo_only.one_way(0, 2);
        let mut zeroed = GeoNetwork::new(topo_only);
        zeroed.assign(NodeId::new(0), 0).assign(NodeId::new(1), 2);
        let mut r = rng();
        let d = zeroed.delay(NodeId::new(0), NodeId::new(1), 0, 1, Instant::EPOCH, &mut r);
        assert_eq!(d, expected);
    }

    #[test]
    fn datasets_resolve_by_name() {
        assert_eq!(
            GeoTopology::dataset("aws_5region").map(|t| t.region_count()),
            Some(5)
        );
        assert_eq!(
            GeoTopology::dataset("aws_10region").map(|t| t.region_count()),
            Some(10)
        );
        assert!(GeoTopology::dataset("nope").is_none());
    }
}
