//! # lan-sim — a deterministic discrete-event LAN simulator
//!
//! The testbed substrate for the AQuA timing-fault reproduction: simulated
//! hosts ([`Node`]s) exchange messages over a pluggable [`NetworkModel`]
//! under a deterministic event loop ([`Simulation`]).
//!
//! Design goals:
//!
//! * **Determinism** — one seeded RNG, total event order by
//!   `(timestamp, sequence)`; identical seeds replay identical histories,
//!   which the experiment harness relies on.
//! * **Actor-style nodes** — all state is node-local; interaction happens
//!   only through messages and timers, mirroring how the real AQuA
//!   gateways interact across a LAN.
//! * **Virtual time** — [`aqua_core::time::Instant`] advances only when
//!   events fire, so a 100-second experiment runs in milliseconds.
//!
//! See the [`Simulation`] docs for a runnable example.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
pub mod network;
mod node;
mod sharded;
mod simulation;
pub mod topology;
mod trace;

pub use event::{Event, TimerToken};
pub use network::{CongestedLan, InstantNetwork, NetworkModel, PerLinkLan, UniformLan};
pub use node::{AnyNode, Context, Node, NodeId};
pub use sharded::ShardedSimulation;
pub use simulation::Simulation;
pub use topology::{GeoNetwork, GeoTopology, LinkFaultHook, LinkOutcome, RegionSpec};
pub use trace::{NodeCounters, TraceEvent, TraceRecord};

/// A message payload that can traverse the simulated network.
///
/// `wire_size` feeds the network model's bandwidth term; the default (64
/// bytes) approximates a small control message.
pub trait Payload: Clone + std::fmt::Debug + 'static {
    /// Approximate serialized size in bytes.
    fn wire_size(&self) -> usize {
        64
    }
}
