//! Sharded, conservatively-synchronized parallel DES engine.
//!
//! [`ShardedSimulation`] partitions nodes across `W` worker shards, each
//! with its own event queue, and synchronizes shards with a CMB-style
//! time-window barrier: every round the workers agree on the globally
//! earliest pending event time `T` and then each processes its local
//! events inside the inclusive window `[T, T + L − 1]`, where the
//! lookahead `L` is the minimum one-way latency of any inter-region link
//! ([`GeoTopology::min_inter_region_delay`]). A message sent from inside
//! the window at time `t ≥ T` arrives at `t + delay ≥ T + L`, i.e.
//! strictly *after* every window of the current round — so shards never
//! need to peek at each other mid-window and no rollbacks are required.
//! (Using `T + L` as the window end is the classic off-by-one: an arrival
//! at exactly `T + L` could land in a window another shard has already
//! finished. The lint crate's shard-barrier interleaving model proves the
//! checker catches that variant.)
//!
//! # Determinism across worker counts
//!
//! The engine is deterministic not just run-to-run but across `W`: for a
//! fixed seed, `W = 1` and `W = 8` produce bit-identical merged histories.
//! Two choices make partition-independence hold:
//!
//! * **Per-node RNG streams.** Every node draws from its own
//!   [`SmallRng`] seeded by `splitmix64(seed, node_index)` — no shared
//!   stream whose interleaving could depend on the partition.
//! * **Per-origin event keys.** Every scheduled event carries
//!   `(timestamp, origin, origin_seq)` where `origin_seq` comes from the
//!   *sending* node's private counter. The total order by that key is a
//!   property of the workload, not of the shard layout, and each shard
//!   processes its queue in exactly that order.
//!
//! Since each node belongs to exactly one shard, a node's handler
//! sequence (events seen, RNG draws made, sends emitted) is identical for
//! every `W` — which is what the per-node digests and the merged-trace
//! proptests check.

use core::cmp::{Ordering, Reverse};
use core::fmt;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Barrier, Mutex};

use aqua_core::aqua;
use aqua_core::time::{Duration, Instant};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::event::{Event, TimerToken};
use crate::node::{AnyNode, BitSet, Context, ContextCore, NodeId};
use crate::topology::{GeoTopology, LinkFaultHook};
use crate::trace::{NodeCounters, TraceEvent, TraceRecord, Tracer};
use crate::Payload;

/// Horizon sentinel meaning "no work left / deadline passed: stop".
const STOP: u64 = u64::MAX;

/// SplitMix64 step, used to derive independent per-node RNG seeds from
/// the simulation seed. (Same generator the vendored `rand` uses to
/// expand seeds, applied here to decorrelate streams.)
fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a fold of one 64-bit word into a running digest.
fn fnv_fold(h: u64, word: u64) -> u64 {
    let mut h = h;
    for shift in [0u32, 8, 16, 24, 32, 40, 48, 56] {
        h = (h ^ ((word >> shift) & 0xFF)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

/// Partition-invariant identity of a scheduled event: which node created
/// it, and that node's private sequence number at creation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct EventKey {
    origin: NodeId,
    seq: u64,
}

/// What sits in a shard's queue, ordered by `(at, origin, origin_seq)` —
/// a total order independent of the shard layout.
#[derive(Debug)]
struct ShardScheduled<M> {
    at: Instant,
    key: EventKey,
    target: NodeId,
    event: Event<M>,
}

impl<M> PartialEq for ShardScheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.key == other.key
    }
}
impl<M> Eq for ShardScheduled<M> {}
impl<M> PartialOrd for ShardScheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for ShardScheduled<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.at.cmp(&other.at).then(self.key.cmp(&other.key))
    }
}

/// A trace record tagged with the key of the event whose handler emitted
/// it plus an intra-handler index, so shard-local streams merge into the
/// exact sequential order.
#[derive(Debug)]
struct TaggedRecord {
    cause_at: Instant,
    cause: EventKey,
    intra: u32,
    record: TraceRecord,
}

/// One node's shard-local state: behaviour, private RNG stream, private
/// event-sequence and timer counters, cancellation bits, and a running
/// FNV digest of its local history (the partition-invariant fingerprint
/// the determinism gates compare).
struct LocalNode<M> {
    node: Option<Box<dyn AnyNode<M> + Send>>,
    rng: SmallRng,
    next_seq: u64,
    next_timer: u32,
    cancelled: BitSet,
    detached: bool,
    digest: u64,
}

/// One worker shard: its event queue, the nodes it owns, counters, and
/// (when tracing) the tagged record log.
struct Shard<M> {
    queue: BinaryHeap<Reverse<ShardScheduled<M>>>,
    locals: Vec<LocalNode<M>>,
    tracer: Tracer,
    tagged: Vec<TaggedRecord>,
    tagged_dropped: u64,
    events_processed: u64,
    /// Virtual time of the last event this shard processed.
    now: Instant,
}

/// Read-only state shared by every worker during a run.
struct RunShared<'a> {
    topology: &'a GeoTopology,
    hooks: &'a [Box<dyn LinkFaultHook>],
    node_region: &'a [u32],
    node_shard: &'a [u32],
    node_local: &'a [u32],
    trace_on: bool,
    trace_cap: usize,
}

/// The engine-side [`ContextCore`] a shard hands to the node it is
/// dispatching: local sends go straight into the shard queue, cross-shard
/// sends into the per-destination outbox distributed at the barrier.
struct ShardCore<'a, 'b, M: Payload> {
    shard: &'a mut Shard<M>,
    shared: &'a RunShared<'b>,
    outbox: &'a mut [Vec<ShardScheduled<M>>],
    my_shard: u32,
    now: Instant,
    cause: EventKey,
    intra: u32,
}

impl<M: Payload> ShardCore<'_, '_, M> {
    fn local_mut(&mut self, node: NodeId) -> &mut LocalNode<M> {
        let li = self.shared.node_local[node.index() as usize] as usize;
        &mut self.shard.locals[li]
    }

    /// Records a trace event into the shard tracer (counters + tag log)
    /// attributed to the current cause.
    fn note(&mut self, record: TraceEvent) {
        self.shard.tracer.record(self.now, record.clone());
        if self.shared.trace_on {
            if self.shard.tagged.len() >= self.shared.trace_cap {
                self.shard.tagged_dropped += 1;
            } else {
                self.shard.tagged.push(TaggedRecord {
                    cause_at: self.now,
                    cause: self.cause,
                    intra: self.intra,
                    record: TraceRecord {
                        at: self.now,
                        event: record,
                    },
                });
            }
        }
        self.intra += 1;
    }

    /// Routes an event to its target's shard: local targets go straight
    /// into this shard's queue, remote ones into the outbox.
    #[aqua::hot_path]
    fn route(&mut self, item: ShardScheduled<M>) {
        let dest = self.shared.node_shard[item.target.index() as usize];
        if dest == self.my_shard {
            self.shard.queue.push(Reverse(item));
        } else {
            self.outbox[dest as usize].push(item);
        }
    }
}

impl<M: Payload> ContextCore<M> for ShardCore<'_, '_, M> {
    fn now(&self) -> Instant {
        self.now
    }

    fn rng_for(&mut self, node: NodeId) -> &mut SmallRng {
        &mut self.local_mut(node).rng
    }

    fn transmit(&mut self, from: NodeId, to: NodeId, payload: M, fanout: usize) {
        let size = payload.wire_size();
        let fr = self.shared.node_region[from.index() as usize] as usize;
        let tr = self.shared.node_region[to.index() as usize] as usize;
        let now = self.now;
        let topology = self.shared.topology;
        let hooks = self.shared.hooks;
        let local = self.local_mut(from);
        let delay = topology.link_delay(fr, tr, size, fanout, now, hooks, &mut local.rng);
        let at = now.saturating_add(delay);
        let seq = local.next_seq;
        local.next_seq += 1;
        local.digest = fnv_fold(local.digest, 0xA1);
        local.digest = fnv_fold(local.digest, u64::from(to.index()));
        local.digest = fnv_fold(local.digest, size as u64);
        local.digest = fnv_fold(local.digest, at.as_nanos());
        self.note(TraceEvent::MessageSent {
            from,
            to,
            size,
            deliver_at: at,
        });
        self.route(ShardScheduled {
            at,
            key: EventKey { origin: from, seq },
            target: to,
            event: Event::Message { from, payload },
        });
    }

    fn send_self(&mut self, from: NodeId, after: Duration, payload: M) {
        let at = self.now.saturating_add(after);
        let local = self.local_mut(from);
        let seq = local.next_seq;
        local.next_seq += 1;
        local.digest = fnv_fold(local.digest, 0xA2);
        local.digest = fnv_fold(local.digest, at.as_nanos());
        self.shard.queue.push(Reverse(ShardScheduled {
            at,
            key: EventKey { origin: from, seq },
            target: from,
            event: Event::Message { from, payload },
        }));
    }

    fn set_timer(&mut self, node: NodeId, after: Duration) -> TimerToken {
        let at = self.now.saturating_add(after);
        let local = self.local_mut(node);
        let token = TimerToken((u64::from(node.index()) << 32) | u64::from(local.next_timer));
        local.next_timer += 1;
        let seq = local.next_seq;
        local.next_seq += 1;
        local.digest = fnv_fold(local.digest, 0xA3);
        local.digest = fnv_fold(local.digest, at.as_nanos());
        self.shard.queue.push(Reverse(ShardScheduled {
            at,
            key: EventKey { origin: node, seq },
            target: node,
            event: Event::Timer { token },
        }));
        token
    }

    fn cancel_timer(&mut self, _node: NodeId, token: TimerToken) {
        // The owner is encoded in the token's high bits; timers are only
        // ever handed to the node that set them, so the owner is local.
        let owner = NodeId::new((token.value() >> 32) as u32);
        let slot = token.value() & 0xFFFF_FFFF;
        self.local_mut(owner).cancelled.set(slot);
    }

    fn detach(&mut self, node: NodeId) {
        let local = self.local_mut(node);
        local.detached = true;
        local.digest = fnv_fold(local.digest, 0xA4);
        self.note(TraceEvent::NodeDetached { node });
    }
}

/// Processes every event in `shard`'s queue with `at ≤ horizon`
/// (nanoseconds, inclusive), in `(at, origin, seq)` order, routing
/// cross-shard sends into `outbox`.
#[aqua::hot_path]
fn process_window<M: Payload>(
    shard: &mut Shard<M>,
    shared: &RunShared<'_>,
    my_shard: u32,
    horizon: u64,
    outbox: &mut [Vec<ShardScheduled<M>>],
) {
    loop {
        match shard.queue.peek() {
            Some(Reverse(next)) if next.at.as_nanos() <= horizon => {}
            _ => return,
        }
        let Some(Reverse(scheduled)) = shard.queue.pop() else {
            return;
        };
        shard.now = shard.now.max(scheduled.at);
        let target = scheduled.target;
        let li = shared.node_local[target.index() as usize] as usize;
        if let Event::Timer { token } = &scheduled.event {
            let slot = token.value() & 0xFFFF_FFFF;
            if shard.locals[li].cancelled.take(slot) {
                continue;
            }
        }
        if shard.locals[li].detached {
            continue;
        }

        let ShardScheduled { at, key, event, .. } = scheduled;
        {
            let local = &mut shard.locals[li];
            local.digest = fnv_fold(local.digest, at.as_nanos());
            local.digest = fnv_fold(local.digest, u64::from(key.origin.index()));
            local.digest = fnv_fold(local.digest, key.seq);
        }
        let mut node = shard.locals[li]
            .node
            .take()
            .expect("no re-entrant dispatch");
        {
            let mut core = ShardCore {
                shard: &mut *shard,
                shared,
                outbox,
                my_shard,
                now: at,
                cause: key,
                intra: 0,
            };
            match &event {
                Event::Started => {
                    let local = core.local_mut(target);
                    local.digest = fnv_fold(local.digest, 0xB1);
                    core.note(TraceEvent::NodeStarted { node: target });
                }
                Event::Message { from, .. } => {
                    let from = *from;
                    core.note(TraceEvent::MessageDelivered { from, to: target });
                }
                Event::Timer { token } => {
                    let token = token.value();
                    let local = core.local_mut(target);
                    local.digest = fnv_fold(local.digest, token);
                    core.note(TraceEvent::TimerFired { node: target });
                }
            }
            let mut ctx = Context {
                ops: &mut core,
                self_id: target,
            };
            node.on_event(event, &mut ctx);
        }
        shard.locals[li].node = Some(node);
        shard.events_processed += 1;
    }
}

/// A sharded, conservatively-synchronized parallel discrete-event
/// simulation over a [`GeoTopology`].
///
/// Same node programming model as [`crate::Simulation`] — the
/// [`Context`] hides the engine — but nodes are partitioned across up to
/// `workers` shards by region (`shard = region mod workers`), and shards
/// advance in lookahead-bounded time windows (see the module docs).
/// For the same seed and wiring, every worker count produces bit-identical
/// merged histories; `workers = 1` is the sequential baseline the speedup
/// grid in `sim_scale_bench` compares against.
pub struct ShardedSimulation<M: Payload + Send> {
    topology: GeoTopology,
    hooks: Vec<Box<dyn LinkFaultHook>>,
    workers: usize,
    effective: usize,
    lookahead: Duration,
    shards: Vec<Shard<M>>,
    node_region: Vec<u32>,
    node_shard: Vec<u32>,
    node_local: Vec<u32>,
    seed: u64,
    started: bool,
    now: Instant,
    rounds: u64,
    trace_on: bool,
    trace_cap: usize,
}

impl<M: Payload + Send> ShardedSimulation<M> {
    /// Creates a sharded simulation over `topology` with up to `workers`
    /// shards (clamped to the region count; forced to 1 when the topology
    /// has no inter-region link to derive a positive lookahead from).
    pub fn new(seed: u64, workers: usize, topology: GeoTopology) -> Self {
        let lookahead = topology.min_inter_region_delay();
        let effective = match lookahead {
            Some(l) if !l.is_zero() => workers.max(1).min(topology.region_count()),
            // Zero lookahead (or a single region) admits same-instant
            // cross-shard cascades, which would break conservative
            // windows — collapse to one shard.
            _ => 1,
        };
        let lookahead = if effective == 1 {
            Duration::MAX
        } else {
            lookahead.expect("effective > 1 implies an inter-region link")
        };
        ShardedSimulation {
            topology,
            hooks: Vec::new(),
            workers: workers.max(1),
            effective,
            lookahead,
            shards: (0..effective)
                .map(|_| Shard {
                    queue: BinaryHeap::new(),
                    locals: Vec::new(),
                    tracer: Tracer::default(),
                    tagged: Vec::new(),
                    tagged_dropped: 0,
                    events_processed: 0,
                    now: Instant::EPOCH,
                })
                .collect(),
            node_region: Vec::new(),
            node_shard: Vec::new(),
            node_local: Vec::new(),
            seed,
            started: false,
            now: Instant::EPOCH,
            rounds: 0,
            trace_on: false,
            trace_cap: 0,
        }
    }

    /// Adds a link-fault hook (applied to every message, in insertion
    /// order). Must be called before the first run.
    pub fn add_link_hook(&mut self, hook: Box<dyn LinkFaultHook>) {
        self.hooks.push(hook);
    }

    /// Registers a node in `region` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `region` is out of range for the topology.
    pub fn add_node_in_region<N: AnyNode<M> + Send>(&mut self, region: usize, node: N) -> NodeId {
        assert!(
            region < self.topology.region_count(),
            "region {region} out of range"
        );
        let id = NodeId::new(u32::try_from(self.node_region.len()).expect("node count fits u32"));
        let shard = (region % self.effective) as u32;
        self.node_region.push(region as u32);
        self.node_shard.push(shard);
        let locals = &mut self.shards[shard as usize].locals;
        self.node_local.push(locals.len() as u32);
        locals.push(LocalNode {
            node: Some(Box::new(node)),
            rng: SmallRng::seed_from_u64(splitmix64(self.seed ^ splitmix64(u64::from(id.index())))),
            next_seq: 0,
            next_timer: 0,
            cancelled: BitSet::default(),
            detached: false,
            digest: FNV_OFFSET,
        });
        if self.started {
            let at = self.now;
            self.push_from(id, at, id, Event::Started);
        }
        id
    }

    /// Registers a node in region 0.
    pub fn add_node<N: AnyNode<M> + Send>(&mut self, node: N) -> NodeId {
        self.add_node_in_region(0, node)
    }

    /// Allocates an event key from `origin`'s private counter and enqueues
    /// the event on `target`'s shard.
    fn push_from(&mut self, origin: NodeId, at: Instant, target: NodeId, event: Event<M>) {
        let oli = self.node_local[origin.index() as usize] as usize;
        let os = self.node_shard[origin.index() as usize] as usize;
        let seq = {
            let local = &mut self.shards[os].locals[oli];
            let seq = local.next_seq;
            local.next_seq += 1;
            seq
        };
        let ts = self.node_shard[target.index() as usize] as usize;
        self.shards[ts].queue.push(Reverse(ShardScheduled {
            at,
            key: EventKey { origin, seq },
            target,
            event,
        }));
    }

    /// Injects a message from `from` to `to` at absolute time `at`,
    /// bypassing the network model (tests and harnesses).
    pub fn schedule_message(&mut self, at: Instant, from: NodeId, to: NodeId, payload: M) {
        self.push_from(from, at, to, Event::Message { from, payload });
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        let at = self.now;
        for index in 0..self.node_region.len() {
            let id = NodeId::new(index as u32);
            self.push_from(id, at, id, Event::Started);
        }
    }

    /// The requested worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The number of shards actually running (≤ workers, ≥ 1).
    pub fn effective_workers(&self) -> usize {
        self.effective
    }

    /// The synchronization lookahead ([`Duration::MAX`] when running as a
    /// single shard).
    pub fn lookahead(&self) -> Duration {
        self.lookahead
    }

    /// Barrier rounds executed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// The current committed virtual time.
    pub fn now(&self) -> Instant {
        self.now
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.node_region.len()
    }

    /// Total events processed across all shards.
    pub fn events_processed(&self) -> u64 {
        self.shards.iter().map(|s| s.events_processed).sum()
    }

    /// Total messages sent over the simulated network.
    pub fn messages_sent(&self) -> u64 {
        self.shards.iter().map(|s| s.tracer.total_sent()).sum()
    }

    /// Starts recording tagged trace records, up to `capacity` per shard.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace_on = true;
        self.trace_cap = capacity.max(1);
    }

    /// Trace records dropped because a shard's log hit capacity.
    pub fn trace_dropped(&self) -> u64 {
        self.shards.iter().map(|s| s.tagged_dropped).sum()
    }

    /// The merged trace: shard-local streams sorted by
    /// `(cause time, cause origin, cause seq, intra-handler index)` — the
    /// exact order a single-shard run emits them in.
    pub fn merged_trace(&self) -> Vec<TraceRecord> {
        let mut tagged: Vec<&TaggedRecord> =
            self.shards.iter().flat_map(|s| s.tagged.iter()).collect();
        tagged.sort_by_key(|t| (t.cause_at, t.cause.origin, t.cause.seq, t.intra));
        tagged.iter().map(|t| t.record.clone()).collect()
    }

    /// A partition-invariant digest of the full history: per-node FNV
    /// digests (each a function only of that node's local event sequence)
    /// combined in node-id order. Bit-identical across worker counts for
    /// the same seed and wiring; O(nodes) memory, always on.
    pub fn trace_digest(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for index in 0..self.node_region.len() {
            let li = self.node_local[index] as usize;
            let sh = self.node_shard[index] as usize;
            h = fnv_fold(h, index as u64);
            h = fnv_fold(h, self.shards[sh].locals[li].digest);
        }
        h
    }

    /// Communication counters for one node.
    pub fn node_counters(&self, id: NodeId) -> NodeCounters {
        let sh = self.node_shard[id.index() as usize] as usize;
        self.shards[sh].tracer.counters(id)
    }

    /// Detaches a node: every future delivery to it is dropped.
    pub fn detach_node(&mut self, id: NodeId) {
        let sh = self.node_shard[id.index() as usize] as usize;
        let li = self.node_local[id.index() as usize] as usize;
        let now = self.now;
        let shard = &mut self.shards[sh];
        shard.locals[li].detached = true;
        shard.locals[li].digest = fnv_fold(shard.locals[li].digest, 0xA4);
        shard
            .tracer
            .record(now, TraceEvent::NodeDetached { node: id });
    }

    /// Whether a node is detached.
    pub fn is_detached(&self, id: NodeId) -> bool {
        let sh = self.node_shard[id.index() as usize] as usize;
        let li = self.node_local[id.index() as usize] as usize;
        self.shards[sh].locals[li].detached
    }

    /// Immutable, downcast access to a node's state.
    pub fn node<T: 'static>(&self, id: NodeId) -> Option<&T> {
        let sh = *self.node_shard.get(id.index() as usize)? as usize;
        let li = self.node_local[id.index() as usize] as usize;
        self.shards[sh].locals[li]
            .node
            .as_deref()?
            .as_any()
            .downcast_ref::<T>()
    }

    /// Mutable, downcast access to a node's state.
    pub fn node_mut<T: 'static>(&mut self, id: NodeId) -> Option<&mut T> {
        let sh = *self.node_shard.get(id.index() as usize)? as usize;
        let li = self.node_local[id.index() as usize] as usize;
        self.shards[sh].locals[li]
            .node
            .as_deref_mut()?
            .as_any_mut()
            .downcast_mut::<T>()
    }

    /// Runs until every queue is empty.
    pub fn run_until_idle(&mut self) {
        self.run_rounds(None);
    }

    /// Runs until virtual time reaches `deadline` or all queues empty.
    ///
    /// Boundary contract — identical to [`crate::Simulation::run_until`]:
    /// events at exactly `deadline` are processed (including same-instant
    /// cascades), later events stay queued, and `now()` lands on
    /// `deadline`. At shard barriers the window end is
    /// `min(T + L − 1, deadline)`, so the deadline is always the inclusive
    /// end of the final window.
    pub fn run_until(&mut self, deadline: Instant) {
        self.run_rounds(Some(deadline));
        self.now = self.now.max(deadline);
    }

    /// Runs for `span` of virtual time from the current instant.
    pub fn run_for(&mut self, span: Duration) {
        let deadline = self.now.saturating_add(span);
        self.run_until(deadline);
    }

    /// The barrier-synchronized round loop (threaded when more than one
    /// shard is active; inline otherwise).
    fn run_rounds(&mut self, deadline: Option<Instant>) {
        self.ensure_started();
        let n = self.effective;
        let deadline_n = deadline.map(Instant::as_nanos);
        let shared = RunShared {
            topology: &self.topology,
            hooks: &self.hooks,
            node_region: &self.node_region,
            node_shard: &self.node_shard,
            node_local: &self.node_local,
            trace_on: self.trace_on,
            trace_cap: self.trace_cap,
        };

        if n == 1 {
            let shard = &mut self.shards[0];
            let mut outbox: Vec<Vec<ShardScheduled<M>>> = vec![Vec::new()];
            while let Some(Reverse(e)) = shard.queue.peek() {
                let next = e.at.as_nanos();
                if deadline_n.is_some_and(|d| next > d) {
                    break;
                }
                // Infinite lookahead: one window drains everything due.
                let horizon = deadline_n.unwrap_or(u64::MAX - 1);
                process_window(shard, &shared, 0, horizon, &mut outbox);
                self.rounds += 1;
                debug_assert!(outbox[0].is_empty(), "single shard never routes out");
            }
            self.now = self.now.max(shard.now);
            return;
        }

        let lookahead_n = self.lookahead.as_nanos();
        let next_times: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let horizon = AtomicU64::new(0);
        let rounds = AtomicU64::new(0);
        let barrier = Barrier::new(n);
        let inboxes: Vec<Mutex<Vec<ShardScheduled<M>>>> =
            (0..n).map(|_| Mutex::new(Vec::new())).collect();

        std::thread::scope(|scope| {
            for (i, shard) in self.shards.iter_mut().enumerate() {
                let shared = &shared;
                let next_times = &next_times;
                let horizon = &horizon;
                let rounds = &rounds;
                let barrier = &barrier;
                let inboxes = &inboxes;
                scope.spawn(move || {
                    let mut outbox: Vec<Vec<ShardScheduled<M>>> =
                        (0..n).map(|_| Vec::new()).collect();
                    loop {
                        // 1. Publish my earliest pending event time.
                        let next = shard
                            .queue
                            .peek()
                            .map_or(u64::MAX, |Reverse(e)| e.at.as_nanos());
                        next_times[i].store(next, AtomicOrdering::Release);
                        let wait = barrier.wait();
                        // 2. Leader derives the round horizon
                        //    E = min(T + L − 1, deadline), or STOP.
                        if wait.is_leader() {
                            let t = next_times
                                .iter()
                                .map(|a| a.load(AtomicOrdering::Acquire))
                                .min()
                                .expect("at least one shard");
                            let h = if t == u64::MAX || deadline_n.is_some_and(|d| t > d) {
                                STOP
                            } else {
                                let end = t.saturating_add(lookahead_n).saturating_sub(1);
                                let end = deadline_n.map_or(end, |d| end.min(d));
                                end.min(STOP - 1)
                            };
                            horizon.store(h, AtomicOrdering::Release);
                            rounds.fetch_add(1, AtomicOrdering::AcqRel);
                        }
                        barrier.wait();
                        let h = horizon.load(AtomicOrdering::Acquire);
                        if h == STOP {
                            break;
                        }
                        // 3. Process my window; cross-shard sends land in
                        //    outboxes, then in destination inboxes.
                        process_window(shard, shared, i as u32, h, &mut outbox);
                        for (j, out) in outbox.iter_mut().enumerate() {
                            if !out.is_empty() {
                                inboxes[j].lock().expect("inbox poisoned").append(out);
                            }
                        }
                        // 4. All deliveries visible before anyone reads
                        //    next-round queue state.
                        barrier.wait();
                        let mut inbox = inboxes[i].lock().expect("inbox poisoned");
                        for item in inbox.drain(..) {
                            shard.queue.push(Reverse(item));
                        }
                    }
                });
            }
        });

        self.rounds += rounds.load(AtomicOrdering::Acquire);
        let max_now = self
            .shards
            .iter()
            .map(|s| s.now)
            .max()
            .unwrap_or(Instant::EPOCH);
        self.now = self.now.max(max_now);
    }

    /// Bridges the sharded engine's observability into `obs`: merged
    /// per-node communication counters (same `sim_*` metrics as the
    /// sequential engine) plus per-shard event totals, barrier rounds, and
    /// the lookahead.
    pub fn export_obs(&self, obs: &aqua_obs::Obs) {
        let registry = obs.registry();
        let mut merged = Tracer::default();
        for shard in &self.shards {
            merged.absorb_counters(&shard.tracer);
        }
        for (node, counters) in merged.all_counters() {
            let node = node.index().to_string();
            let labels = [("node", node.as_str())];
            registry
                .counter("sim_messages_sent_total", &labels)
                .add(counters.sent);
            registry
                .counter("sim_messages_delivered_total", &labels)
                .add(counters.delivered);
            registry
                .counter("sim_timers_fired_total", &labels)
                .add(counters.timers_fired);
        }
        for (i, shard) in self.shards.iter().enumerate() {
            let shard_label = i.to_string();
            let labels = [("shard", shard_label.as_str())];
            registry
                .counter("sim_shard_events_total", &labels)
                .add(shard.events_processed);
        }
        registry
            .counter("sim_shard_rounds_total", &[])
            .add(self.rounds);
        registry
            .gauge("sim_shard_workers", &[])
            .set(self.effective as i64);
        let lookahead_nanos = if self.lookahead == Duration::MAX {
            0
        } else {
            self.lookahead.as_nanos() as i64
        };
        registry
            .gauge("sim_lookahead_nanos", &[])
            .set(lookahead_nanos);
        obs.journal().flush();
    }
}

impl<M: Payload + Send> fmt::Debug for ShardedSimulation<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedSimulation")
            .field("now", &self.now)
            .field("nodes", &self.node_region.len())
            .field("workers", &self.effective)
            .field("lookahead", &self.lookahead)
            .field("rounds", &self.rounds)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::RegionSpec;

    #[derive(Clone, Debug)]
    enum Msg {
        Ping,
        Pong,
    }
    impl Payload for Msg {}

    /// Pings a peer on start; replies Pong to Pings; logs everything.
    struct Peer {
        peer: Option<NodeId>,
        log: Vec<(u64, u32, &'static str)>,
    }

    impl crate::node::Node<Msg> for Peer {
        fn on_event(&mut self, event: Event<Msg>, ctx: &mut Context<'_, Msg>) {
            let t = ctx.now().as_nanos();
            match event {
                Event::Started => {
                    self.log.push((t, u32::MAX, "start"));
                    if let Some(p) = self.peer {
                        ctx.send(p, Msg::Ping);
                    }
                }
                Event::Message { from, payload } => match payload {
                    Msg::Ping => {
                        self.log.push((t, from.index(), "ping"));
                        ctx.send(from, Msg::Pong);
                    }
                    Msg::Pong => self.log.push((t, from.index(), "pong")),
                },
                Event::Timer { .. } => self.log.push((t, u32::MAX, "timer")),
            }
        }
    }

    fn two_region_topology() -> GeoTopology {
        let mut t = GeoTopology::from_rtt_ms(
            vec![RegionSpec::named("east"), RegionSpec::named("west")],
            &[vec![0.0, 20.0], vec![20.0, 0.0]],
        );
        t.jitter = 0.0;
        t
    }

    #[test]
    fn single_region_collapses_to_one_shard() {
        let topo = GeoTopology::from_rtt_ms(vec![RegionSpec::named("only")], &[vec![0.0]]);
        let sim = ShardedSimulation::<Msg>::new(1, 8, topo);
        assert_eq!(sim.effective_workers(), 1);
        assert_eq!(sim.lookahead(), Duration::MAX);
    }

    #[test]
    fn cross_shard_roundtrip_completes() {
        let mut sim = ShardedSimulation::<Msg>::new(1, 2, two_region_topology());
        assert_eq!(sim.effective_workers(), 2);
        assert_eq!(sim.lookahead(), Duration::from_millis(10));
        let a = sim.add_node_in_region(
            0,
            Peer {
                peer: None,
                log: Vec::new(),
            },
        );
        let b = sim.add_node_in_region(
            1,
            Peer {
                peer: Some(a),
                log: Vec::new(),
            },
        );
        sim.run_until_idle();
        let a_log = &sim.node::<Peer>(a).unwrap().log;
        assert!(
            a_log
                .iter()
                .any(|(_, from, k)| *k == "ping" && *from == b.index()),
            "{a_log:?}"
        );
        let b_log = &sim.node::<Peer>(b).unwrap().log;
        assert!(b_log.iter().any(|(_, _, k)| *k == "pong"), "{b_log:?}");
        assert_eq!(sim.messages_sent(), 2);
        assert!(sim.rounds() >= 2, "cross-shard traffic forces ≥2 rounds");
    }

    #[test]
    fn digest_and_trace_identical_across_worker_counts() {
        fn run(workers: usize) -> (u64, Vec<TraceRecord>, u64) {
            let mut sim = ShardedSimulation::<Msg>::new(42, workers, {
                let mut t = GeoTopology::aws_5region();
                t.jitter = 0.2;
                t
            });
            sim.enable_trace(4096);
            let mut ids = Vec::new();
            for r in 0..5 {
                for _ in 0..3 {
                    let peer = ids.last().copied();
                    ids.push(sim.add_node_in_region(
                        r,
                        Peer {
                            peer,
                            log: Vec::new(),
                        },
                    ));
                }
            }
            sim.run_until(Instant::from_secs(2));
            (
                sim.trace_digest(),
                sim.merged_trace(),
                sim.events_processed(),
            )
        }
        let (d1, t1, e1) = run(1);
        for w in [2, 4, 8] {
            let (dw, tw, ew) = run(w);
            assert_eq!(d1, dw, "digest differs at W={w}");
            assert_eq!(e1, ew, "event count differs at W={w}");
            assert_eq!(t1, tw, "merged trace differs at W={w}");
        }
    }

    #[test]
    fn run_until_boundary_matches_sequential_contract() {
        let mut sim = ShardedSimulation::<Msg>::new(1, 2, two_region_topology());
        let a = sim.add_node_in_region(
            0,
            Peer {
                peer: None,
                log: Vec::new(),
            },
        );
        let b = sim.add_node_in_region(
            1,
            Peer {
                peer: None,
                log: Vec::new(),
            },
        );
        let deadline = Instant::from_millis(30);
        sim.schedule_message(deadline, a, b, Msg::Ping);
        sim.schedule_message(
            Instant::from_nanos(deadline.as_nanos() + 1),
            a,
            b,
            Msg::Ping,
        );
        sim.run_until(deadline);
        assert_eq!(sim.now(), deadline);
        let pings = sim
            .node::<Peer>(b)
            .unwrap()
            .log
            .iter()
            .filter(|(_, _, k)| *k == "ping")
            .count();
        assert_eq!(pings, 1, "the event at exactly the deadline ran");
        sim.run_until_idle();
        let pings = sim
            .node::<Peer>(b)
            .unwrap()
            .log
            .iter()
            .filter(|(_, _, k)| *k == "ping")
            .count();
        assert_eq!(pings, 2, "the deadline+1ns event was deferred, not dropped");
    }

    #[test]
    fn detached_nodes_receive_nothing_sharded() {
        let mut sim = ShardedSimulation::<Msg>::new(1, 2, two_region_topology());
        let a = sim.add_node_in_region(
            0,
            Peer {
                peer: None,
                log: Vec::new(),
            },
        );
        let b = sim.add_node_in_region(
            1,
            Peer {
                peer: None,
                log: Vec::new(),
            },
        );
        sim.run_until(Instant::from_millis(1));
        sim.detach_node(b);
        sim.schedule_message(Instant::from_millis(2), a, b, Msg::Ping);
        sim.run_until_idle();
        assert!(sim.is_detached(b));
        assert_eq!(sim.node::<Peer>(b).unwrap().log.len(), 1, "only start");
    }
}
