//! Property tests for the simulator: causality, determinism, and timer
//! semantics under randomized schedules.

use aqua_core::time::{Duration, Instant};
use lan_sim::{Context, Event, Node, NodeId, Payload, Simulation, UniformLan};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Tick(u32);
impl Payload for Tick {}

/// Records every delivery with its timestamp; optionally echoes.
#[derive(Default)]
struct Recorder {
    log: Vec<(u64, u32)>,
    echo_to: Option<NodeId>,
}

impl Node<Tick> for Recorder {
    fn on_event(&mut self, event: Event<Tick>, ctx: &mut Context<'_, Tick>) {
        if let Event::Message { payload, .. } = event {
            self.log.push((ctx.now().as_nanos(), payload.0));
            if let Some(to) = self.echo_to {
                ctx.send(to, Tick(payload.0 + 1_000));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn deliveries_are_time_ordered(
        sends in prop::collection::vec((0u64..5_000, 0u32..100), 1..60),
        seed in 0u64..1_000,
    ) {
        let mut sim = Simulation::with_network(seed, UniformLan::aqua_testbed());
        let src = sim.add_node(Recorder::default());
        let dst = sim.add_node(Recorder::default());
        for (at_ms, tag) in &sends {
            sim.schedule_message(Instant::from_millis(*at_ms), src, dst, Tick(*tag));
        }
        sim.run_until_idle();
        let log = &sim.node::<Recorder>(dst).unwrap().log;
        prop_assert_eq!(log.len(), sends.len());
        // Virtual time at delivery never decreases.
        for w in log.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time went backwards: {w:?}");
        }
        // Every injected tag arrived exactly once.
        let mut got: Vec<u32> = log.iter().map(|(_, t)| *t).collect();
        let mut want: Vec<u32> = sends.iter().map(|(_, t)| *t).collect();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn runs_are_deterministic_per_seed(
        sends in prop::collection::vec((0u64..2_000, 0u32..50), 1..40),
        seed in 0u64..1_000,
    ) {
        fn run(sends: &[(u64, u32)], seed: u64) -> Vec<(u64, u32)> {
            let mut sim = Simulation::with_network(seed, UniformLan::aqua_testbed());
            let src = sim.add_node(Recorder::default());
            let dst = sim.add_node(Recorder {
                echo_to: None,
                ..Default::default()
            });
            sim.node_mut::<Recorder>(src).unwrap().echo_to = Some(dst);
            for (at_ms, tag) in sends {
                sim.schedule_message(Instant::from_millis(*at_ms), dst, src, Tick(*tag));
            }
            sim.run_until_idle();
            sim.node::<Recorder>(dst).unwrap().log.clone()
        }
        prop_assert_eq!(run(&sends, seed), run(&sends, seed));
    }

    #[test]
    fn run_until_is_equivalent_to_run_until_idle(
        sends in prop::collection::vec((0u64..1_000, 0u32..50), 1..30),
        slice_ms in 1u64..200,
    ) {
        // Chopping the run into arbitrary slices must not change the
        // history.
        fn setup(sends: &[(u64, u32)]) -> (Simulation<Tick>, NodeId) {
            let mut sim = Simulation::with_network(7, UniformLan::aqua_testbed());
            let src = sim.add_node(Recorder::default());
            let dst = sim.add_node(Recorder::default());
            for (at_ms, tag) in sends {
                sim.schedule_message(Instant::from_millis(*at_ms), src, dst, Tick(*tag));
            }
            (sim, dst)
        }
        let (mut whole, dst_a) = setup(&sends);
        whole.run_until_idle();

        let (mut sliced, dst_b) = setup(&sends);
        let mut t = 0;
        while t < 3_000 {
            t += slice_ms;
            sliced.run_until(Instant::from_millis(t));
        }
        sliced.run_until_idle();

        prop_assert_eq!(
            &whole.node::<Recorder>(dst_a).unwrap().log,
            &sliced.node::<Recorder>(dst_b).unwrap().log
        );
    }
}

/// A node that sets `n` timers with random delays and records fire order.
struct TimerBox {
    delays: Vec<u64>,
    fired: Vec<u64>,
    set_at: std::collections::HashMap<lan_sim::TimerToken, u64>,
}

impl Node<Tick> for TimerBox {
    fn on_event(&mut self, event: Event<Tick>, ctx: &mut Context<'_, Tick>) {
        match event {
            Event::Started => {
                for d in self.delays.clone() {
                    let token = ctx.set_timer(Duration::from_millis(d));
                    self.set_at.insert(token, d);
                }
            }
            Event::Timer { token } => {
                self.fired.push(self.set_at[&token]);
            }
            Event::Message { .. } => {}
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn timers_fire_in_delay_order(delays in prop::collection::vec(0u64..10_000, 1..40)) {
        let mut sim = Simulation::<Tick>::new(3);
        let node = sim.add_node(TimerBox {
            delays: delays.clone(),
            fired: Vec::new(),
            set_at: std::collections::HashMap::new(),
        });
        sim.run_until_idle();
        let fired = &sim.node::<TimerBox>(node).unwrap().fired;
        prop_assert_eq!(fired.len(), delays.len());
        // Fire order is non-decreasing in delay; equal delays fire in
        // set order (stable by sequence number).
        for w in fired.windows(2) {
            prop_assert!(w[0] <= w[1], "timer order violated: {fired:?}");
        }
    }
}
