//! Worker-count-invariance tests for the sharded engine.
//!
//! The core claim (DESIGN.md §16): for a fixed seed and wiring, the merged
//! history of a [`ShardedSimulation`] is *bit-identical* for every worker
//! count — `W = 1` (the sequential baseline) and any parallel `W` produce
//! the same `TraceRecord` stream, the same per-node digests, and the same
//! final node states. The proptests drive random node graphs, workloads,
//! and seeds through W ∈ {1, 2, 4, 8}; the unit suite pins the tricky
//! cross-shard interleavings (message vs. timer ties at one instant,
//! cancellation across windows, zero-delay cascades at the deadline).

use aqua_core::time::{Duration, Instant};
use lan_sim::topology::RegionSpec;
use lan_sim::{
    Context, Event, GeoTopology, Node, NodeId, Payload, ShardedSimulation, TimerToken, TraceRecord,
};
use proptest::prelude::*;
use rand::Rng;

#[derive(Debug, Clone)]
struct Gossip {
    ttl: u32,
    tag: u32,
}
impl Payload for Gossip {}

/// Forwards each message to a randomly chosen neighbour (drawing from the
/// node's own RNG stream) while TTL remains, sometimes via a timer
/// indirection, and records everything it sees.
struct Gossiper {
    neighbours: Vec<NodeId>,
    log: Vec<(u64, u32, u32)>,
    pending: Vec<(TimerToken, Gossip)>,
}

impl Gossiper {
    fn new(neighbours: Vec<NodeId>) -> Self {
        Gossiper {
            neighbours,
            log: Vec::new(),
            pending: Vec::new(),
        }
    }

    fn forward(&mut self, g: Gossip, ctx: &mut Context<'_, Gossip>) {
        if g.ttl == 0 || self.neighbours.is_empty() {
            return;
        }
        let pick = ctx.rng().gen_range(0..self.neighbours.len());
        let to = self.neighbours[pick];
        let next = Gossip {
            ttl: g.ttl - 1,
            tag: g.tag,
        };
        // A third of forwards go through a timer indirection so timers and
        // messages interleave; one in six of those gets cancelled again.
        match ctx.rng().gen_range(0u32..6) {
            0 | 1 => {
                let delay = Duration::from_micros(ctx.rng().gen_range(0u64..40_000));
                let token = ctx.set_timer(delay);
                self.pending.push((token, next));
                if ctx.rng().gen_range(0u32..6) == 0 {
                    ctx.cancel_timer(token);
                }
            }
            _ => ctx.send(to, next),
        }
    }
}

impl Node<Gossip> for Gossiper {
    fn on_event(&mut self, event: Event<Gossip>, ctx: &mut Context<'_, Gossip>) {
        match event {
            Event::Started => {}
            Event::Message { from, payload } => {
                self.log
                    .push((ctx.now().as_nanos(), from.index(), payload.tag));
                self.forward(payload, ctx);
            }
            Event::Timer { token } => {
                self.log.push((ctx.now().as_nanos(), u32::MAX, 0));
                if let Some(pos) = self.pending.iter().position(|(t, _)| *t == token) {
                    let (_, g) = self.pending.remove(pos);
                    if !self.neighbours.is_empty() {
                        let pick = ctx.rng().gen_range(0..self.neighbours.len());
                        let to = self.neighbours[pick];
                        ctx.send(to, g);
                    }
                }
            }
        }
    }
}

/// Per-node receive logs: one `(at_ns, from, ttl)` list per node.
type NodeLogs = Vec<Vec<(u64, u32, u32)>>;

/// Builds a gossip fleet over `regions` regions with `per_region` nodes,
/// ring+cross neighbour wiring, injects `injections`, runs to `deadline`,
/// and returns (digest, merged trace, per-node logs).
fn run_fleet(
    workers: usize,
    seed: u64,
    regions: usize,
    per_region: usize,
    injections: &[(u64, u32, u32)],
    deadline_ms: u64,
) -> (u64, Vec<TraceRecord>, NodeLogs) {
    let mut topo = GeoTopology::aws_5region();
    topo.jitter = 0.15;
    let regions = regions.clamp(1, topo.region_count());
    // Shrink to the requested region count by reusing the first rows.
    let specs: Vec<RegionSpec> = topo.regions()[..regions].to_vec();
    let rtt: Vec<Vec<f64>> = (0..regions)
        .map(|i| {
            (0..regions)
                .map(|j| topo.one_way(i, j).as_nanos() as f64 * 2.0 / 1_000_000.0)
                .collect()
        })
        .collect();
    let mut topo = GeoTopology::from_rtt_ms(specs, &rtt);
    topo.jitter = 0.15;

    let mut sim = ShardedSimulation::<Gossip>::new(seed, workers, topo);
    sim.enable_trace(1 << 16);
    let total = regions * per_region;
    let ids: Vec<NodeId> = (0..total)
        .map(|i| sim.add_node_in_region(i % regions, Gossiper::new(Vec::new())))
        .collect();
    for (i, id) in ids.iter().enumerate() {
        let mut neighbours = vec![ids[(i + 1) % total], ids[(i + total / 2).max(1) % total]];
        neighbours.retain(|n| n != id);
        sim.node_mut::<Gossiper>(*id).unwrap().neighbours = neighbours;
    }
    for (at_ms, src, ttl) in injections {
        let from = ids[(*src as usize) % total];
        let to = ids[(*src as usize + 1) % total];
        sim.schedule_message(
            Instant::from_millis(*at_ms),
            from,
            to,
            Gossip {
                ttl: *ttl % 6,
                tag: *src,
            },
        );
    }
    sim.run_until(Instant::from_millis(deadline_ms));
    let logs = ids
        .iter()
        .map(|id| sim.node::<Gossiper>(*id).unwrap().log.clone())
        .collect();
    (sim.trace_digest(), sim.merged_trace(), logs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random graphs × random seeds × W ∈ {1, 2, 4, 8}: byte-identical
    /// merged `TraceRecord` streams, digests, and node logs.
    #[test]
    fn merged_histories_invariant_across_worker_counts(
        seed in 0u64..10_000,
        regions in 2usize..=5,
        per_region in 1usize..=4,
        injections in prop::collection::vec((0u64..500, 0u32..20, 0u32..8), 1..12),
    ) {
        let (d1, t1, l1) = run_fleet(1, seed, regions, per_region, &injections, 1_500);
        for w in [2usize, 4, 8] {
            let (dw, tw, lw) = run_fleet(w, seed, regions, per_region, &injections, 1_500);
            prop_assert_eq!(d1, dw, "digest differs at W={}", w);
            prop_assert_eq!(&t1, &tw, "merged trace differs at W={}", w);
            prop_assert_eq!(&l1, &lw, "node logs differ at W={}", w);
        }
    }

    /// Chopping a parallel run into arbitrary `run_until` slices must not
    /// change the history — barrier windows compose with any deadline.
    #[test]
    fn sliced_runs_match_whole_runs(
        seed in 0u64..1_000,
        slice_ms in 7u64..200,
        injections in prop::collection::vec((0u64..400, 0u32..10, 0u32..6), 1..8),
    ) {
        let (d_whole, t_whole, _) = run_fleet(4, seed, 3, 2, &injections, 1_200);
        // Re-run with the same wiring but slicing time.
        let mut topo = GeoTopology::aws_5region();
        topo.jitter = 0.15;
        let specs: Vec<RegionSpec> = topo.regions()[..3].to_vec();
        let rtt: Vec<Vec<f64>> = (0..3)
            .map(|i| (0..3)
                .map(|j| topo.one_way(i, j).as_nanos() as f64 * 2.0 / 1_000_000.0)
                .collect())
            .collect();
        let mut topo = GeoTopology::from_rtt_ms(specs, &rtt);
        topo.jitter = 0.15;
        let mut sim = ShardedSimulation::<Gossip>::new(seed, 4, topo);
        sim.enable_trace(1 << 16);
        let total = 6;
        let ids: Vec<NodeId> = (0..total)
            .map(|i| sim.add_node_in_region(i % 3, Gossiper::new(Vec::new())))
            .collect();
        for (i, id) in ids.iter().enumerate() {
            let mut neighbours = vec![ids[(i + 1) % total], ids[(i + total / 2).max(1) % total]];
            neighbours.retain(|n| n != id);
            sim.node_mut::<Gossiper>(*id).unwrap().neighbours = neighbours;
        }
        for (at_ms, src, ttl) in &injections {
            let from = ids[(*src as usize) % total];
            let to = ids[(*src as usize + 1) % total];
            sim.schedule_message(
                Instant::from_millis(*at_ms),
                from,
                to,
                Gossip { ttl: *ttl % 6, tag: *src },
            );
        }
        let mut t = 0;
        while t < 1_200 {
            t = (t + slice_ms).min(1_200);
            sim.run_until(Instant::from_millis(t));
        }
        prop_assert_eq!(d_whole, sim.trace_digest(), "sliced digest differs");
        prop_assert_eq!(&t_whole, &sim.merged_trace(), "sliced trace differs");
    }
}

// ---------------------------------------------------------------------------
// Cross-shard timer/message interleaving unit suite.
// ---------------------------------------------------------------------------

fn two_regions(rtt_ms: f64) -> GeoTopology {
    let mut t = GeoTopology::from_rtt_ms(
        vec![RegionSpec::named("east"), RegionSpec::named("west")],
        &[vec![0.0, rtt_ms], vec![rtt_ms, 0.0]],
    );
    t.jitter = 0.0;
    t
}

/// Sets a timer on start; when a message and its timer land at the same
/// instant, the `(at, origin, seq)` order decides — and must decide the
/// same way for every worker count.
struct TieBreaker {
    timer_delay: Duration,
    order: Vec<&'static str>,
}

impl Node<Gossip> for TieBreaker {
    fn on_event(&mut self, event: Event<Gossip>, ctx: &mut Context<'_, Gossip>) {
        match event {
            Event::Started => {
                if !self.timer_delay.is_zero() {
                    ctx.set_timer(self.timer_delay);
                }
            }
            Event::Message { .. } => self.order.push("message"),
            Event::Timer { .. } => self.order.push("timer"),
        }
    }
}

fn tie_order(workers: usize) -> (Vec<&'static str>, u64) {
    // 10 ms one-way link: the injected message from the east node arrives
    // at the west node at exactly t=10ms, the same instant its own timer
    // fires.
    let mut sim = ShardedSimulation::<Gossip>::new(9, workers, two_regions(20.0));
    let east = sim.add_node_in_region(
        0,
        TieBreaker {
            timer_delay: Duration::ZERO,
            order: Vec::new(),
        },
    );
    let west = sim.add_node_in_region(
        1,
        TieBreaker {
            timer_delay: Duration::from_millis(10),
            order: Vec::new(),
        },
    );
    sim.schedule_message(
        Instant::from_millis(10),
        east,
        west,
        Gossip { ttl: 0, tag: 0 },
    );
    sim.run_until_idle();
    (
        sim.node::<TieBreaker>(west).unwrap().order.clone(),
        sim.trace_digest(),
    )
}

#[test]
fn same_instant_cross_shard_message_vs_timer_ties_are_stable() {
    let (o1, d1) = tie_order(1);
    let (o2, d2) = tie_order(2);
    assert_eq!(o1.len(), 2, "both the message and the timer ran: {o1:?}");
    assert_eq!(o1, o2, "tie order depends on worker count");
    assert_eq!(d1, d2);
}

/// A timer armed in one window and cancelled in a later one (after a
/// cross-shard round boundary) must still be suppressed.
struct LateCancel {
    token: Option<TimerToken>,
    fired: bool,
}

impl Node<Gossip> for LateCancel {
    fn on_event(&mut self, event: Event<Gossip>, ctx: &mut Context<'_, Gossip>) {
        match event {
            Event::Started => {
                // Fires far in the future, well past several windows.
                self.token = Some(ctx.set_timer(Duration::from_millis(100)));
            }
            Event::Message { .. } => {
                // The cross-shard "cancel request" arrives ~10 ms in.
                if let Some(token) = self.token {
                    ctx.cancel_timer(token);
                }
            }
            Event::Timer { .. } => self.fired = true,
        }
    }
}

#[test]
fn cancellation_crosses_window_boundaries() {
    for workers in [1usize, 2] {
        let mut sim = ShardedSimulation::<Gossip>::new(5, workers, two_regions(20.0));
        let east = sim.add_node_in_region(
            0,
            TieBreaker {
                timer_delay: Duration::ZERO,
                order: Vec::new(),
            },
        );
        let west = sim.add_node_in_region(
            1,
            LateCancel {
                token: None,
                fired: false,
            },
        );
        sim.schedule_message(
            Instant::from_millis(5),
            east,
            west,
            Gossip { ttl: 0, tag: 0 },
        );
        sim.run_until_idle();
        assert!(
            !sim.node::<LateCancel>(west).unwrap().fired,
            "timer fired despite cancel (W={workers})"
        );
        assert!(sim.rounds() >= 2 || workers == 1);
    }
}

/// Lookahead must bound window size: with a 20 ms RTT (10 ms one-way
/// lookahead) and two shards, events 100 ms apart need multiple rounds,
/// and every cross-shard delivery lands in a strictly later round than
/// its send.
#[test]
fn rounds_scale_with_lookahead() {
    let mut sim = ShardedSimulation::<Gossip>::new(11, 2, two_regions(20.0));
    assert_eq!(sim.lookahead(), Duration::from_millis(10));
    let east = sim.add_node_in_region(
        0,
        TieBreaker {
            timer_delay: Duration::ZERO,
            order: Vec::new(),
        },
    );
    let west = sim.add_node_in_region(
        1,
        TieBreaker {
            timer_delay: Duration::ZERO,
            order: Vec::new(),
        },
    );
    for i in 0..10u64 {
        sim.schedule_message(
            Instant::from_millis(i * 100),
            east,
            west,
            Gossip {
                ttl: 0,
                tag: i as u32,
            },
        );
    }
    sim.run_until_idle();
    assert_eq!(sim.node::<TieBreaker>(west).unwrap().order.len(), 10);
    assert!(
        sim.rounds() >= 10,
        "10 deliveries 100 ms apart with 10 ms lookahead need ≥10 rounds, got {}",
        sim.rounds()
    );
}

/// Deadline exactly on a cross-shard arrival instant: the arrival runs,
/// its same-instant consequences run, nothing later does — identically
/// for sequential and parallel engines.
#[test]
fn deadline_at_cross_shard_arrival_is_inclusive() {
    for workers in [1usize, 2] {
        let mut sim = ShardedSimulation::<Gossip>::new(3, workers, two_regions(20.0));
        let east = sim.add_node_in_region(
            0,
            TieBreaker {
                timer_delay: Duration::ZERO,
                order: Vec::new(),
            },
        );
        let west = sim.add_node_in_region(
            1,
            TieBreaker {
                timer_delay: Duration::ZERO,
                order: Vec::new(),
            },
        );
        let deadline = Instant::from_millis(10);
        sim.schedule_message(deadline, east, west, Gossip { ttl: 0, tag: 1 });
        sim.schedule_message(
            Instant::from_nanos(deadline.as_nanos() + 1),
            east,
            west,
            Gossip { ttl: 0, tag: 2 },
        );
        sim.run_until(deadline);
        assert_eq!(
            sim.node::<TieBreaker>(west).unwrap().order.len(),
            1,
            "exactly the deadline event ran (W={workers})"
        );
        assert_eq!(sim.now(), deadline);
        sim.run_until_idle();
        assert_eq!(sim.node::<TieBreaker>(west).unwrap().order.len(), 2);
    }
}
