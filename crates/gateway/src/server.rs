//! The simulated server-side gateway + replica application (§5.1 stages
//! 3–4, §5.4.1 server side).
//!
//! One [`ServerGateway`] node models a host running one replica: it joins
//! the multicast group as a server, FIFO-queues incoming requests
//! (recording `t2`/`t3`), "services" each request by waiting out a sampled
//! service time (scaled by the host's load process), replies with the
//! piggybacked performance data, and pushes a [`AquaMsg::PerfUpdate`] to
//! every subscriber — "each time it processes a request" (§5.4.1).
//!
//! Crashes are silent: the node stops heartbeating and detaches, so the
//! group coordinator eventually evicts it via a view change.

use aqua_core::qos::ReplicaId;
use aqua_core::repository::{MethodId, PerfReport};
use aqua_core::time::{Duration, Instant};
use aqua_faults::{FaultSchedule, ReplicaHealth};
use aqua_group::{FailureDetectorConfig, GroupMsg, Member, MembershipAgent};
use aqua_replica::{CrashPlan, CrashState, LoadModel, LoadProcess, RequestQueue, ServiceTimeModel};
use lan_sim::{Context, Event, Node, NodeId, TimerToken};

use crate::proto::{AquaMsg, RequestId, Wire};

/// Static configuration of one server replica host.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The replica identity this server joins the group as.
    pub replica: ReplicaId,
    /// The group coordinator node.
    pub coordinator: NodeId,
    /// Group/failure-detector cadence.
    pub group: FailureDetectorConfig,
    /// Per-request service-time distribution.
    pub service: ServiceTimeModel,
    /// Method-specific overrides of `service` (multi-interface extension,
    /// §8 ext. 1): a server exporting several methods with different costs.
    pub method_services: Vec<(MethodId, ServiceTimeModel)>,
    /// Host load fluctuation.
    pub load: LoadModel,
    /// Crash injection plan.
    pub crash: CrashPlan,
    /// If set, the replica restarts this long after crashing: it rejoins
    /// the group with an empty queue and fresh state (a process restart on
    /// the same host). `None` = crashes are permanent (the paper's model).
    pub recover_after: Option<Duration>,
    /// Start dormant: the replica process runs but does not join the
    /// service group until the dependability manager activates it
    /// (Proteus, §2).
    pub standby: bool,
    /// Reply payload size in bytes.
    pub reply_size: u32,
    /// Scheduled fault injection on the simulation clock: crash windows
    /// (down, then rejoin at the window's end), pauses (the service stage
    /// stalls, queued work survives), and service-time degradations or
    /// overloads. Network-scoped faults (delay spikes, drops, partitions)
    /// live in the workload's network wrapper instead.
    pub faults: Option<FaultSchedule>,
}

impl ServerConfig {
    /// A paper-style server: Normal(100 ms, σ50 ms) service, steady host,
    /// no crash.
    pub fn paper(replica: ReplicaId, coordinator: NodeId) -> Self {
        ServerConfig {
            replica,
            coordinator,
            group: FailureDetectorConfig::default(),
            service: ServiceTimeModel::paper_load(),
            method_services: Vec::new(),
            load: LoadModel::nominal(),
            crash: CrashPlan::Never,
            recover_after: None,
            standby: false,
            reply_size: 8, // "responded with an integer data" (§6)
            faults: None,
        }
    }
}

/// A request being serviced right now.
#[derive(Debug, Clone)]
struct InService {
    id: RequestId,
    method: MethodId,
    queuing_delay: Duration,
    service_time: Duration,
    timer: TimerToken,
}

/// The simulated server node. See the module docs.
pub struct ServerGateway {
    config: ServerConfig,
    agent: Option<MembershipAgent>,
    queue: RequestQueue<(RequestId, MethodId)>,
    in_service: Option<InService>,
    load: LoadProcess,
    crash: Option<CrashState>,
    crash_timer: Option<TimerToken>,
    /// Standby replica that has not been activated yet (Proteus, §2).
    dormant: bool,
    /// Graceful drain in progress: we have left the group (no new
    /// selections reach us after the view change) but keep servicing the
    /// queue and any stragglers until it empties, then go dormant.
    draining: bool,
    /// For scheduled drains, the window end at which the replica
    /// reactivates on its own; manager-driven drains wait for `Activate`.
    drain_until: Option<Instant>,
    reactivate_timer: Option<TimerToken>,
    /// Dead-but-recoverable: events are dropped until the recovery timer.
    dead: bool,
    recovery_timer: Option<TimerToken>,
    /// Next edge of the scheduled fault plan.
    fault_timer: Option<TimerToken>,
    subscribers: Vec<NodeId>,
    serviced: u64,
    restarts: u64,
}

impl std::fmt::Debug for ServerGateway {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerGateway")
            .field("replica", &self.config.replica)
            .field("queued", &self.queue.len())
            .field("serviced", &self.serviced)
            .field("crashed", &self.is_crashed())
            .finish()
    }
}

impl ServerGateway {
    /// Creates a server from its configuration.
    pub fn new(config: ServerConfig) -> Self {
        let load = LoadProcess::new(config.load.clone());
        ServerGateway {
            config,
            agent: None,
            queue: RequestQueue::new(),
            in_service: None,
            load,
            crash: None,
            crash_timer: None,
            dormant: false,
            draining: false,
            drain_until: None,
            reactivate_timer: None,
            dead: false,
            recovery_timer: None,
            fault_timer: None,
            subscribers: Vec::new(),
            serviced: 0,
            restarts: 0,
        }
    }

    /// Number of times this replica has restarted after a crash.
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// Whether this replica is a standby that has not been activated.
    pub fn is_dormant(&self) -> bool {
        self.dormant
    }

    /// Whether a graceful drain is in progress.
    pub fn is_draining(&self) -> bool {
        self.draining
    }

    /// Begins a graceful drain: leave the group (the view change stops
    /// clients from selecting us), keep servicing queued work and
    /// stragglers, then go dormant once the queue empties. `until` is the
    /// self-reactivation instant for scheduled drains; `None` means the
    /// dependability manager owns reactivation (rolling restart).
    fn begin_drain(&mut self, ctx: &mut Context<'_, Wire>, until: Option<Instant>) {
        if self.dormant || self.dead || self.is_crashed() {
            return;
        }
        if self.draining {
            // Overlapping drain windows extend the dormancy.
            self.drain_until = match (self.drain_until, until) {
                (Some(a), Some(b)) => Some(a.max(b)),
                _ => None, // a manager drain supersedes: wait for Activate
            };
            return;
        }
        self.draining = true;
        self.drain_until = until;
        if let Some(agent) = self.agent.as_mut() {
            agent.leave(ctx);
        }
        self.maybe_go_dormant(ctx);
    }

    /// Completes a drain once nothing is queued or in service: drop group
    /// state and go dormant, arming self-reactivation for scheduled
    /// drains whose window has not ended yet.
    fn maybe_go_dormant(&mut self, ctx: &mut Context<'_, Wire>) {
        if !self.draining || self.in_service.is_some() || !self.queue.is_empty() {
            return;
        }
        self.draining = false;
        self.dormant = true;
        self.agent = None;
        self.subscribers.clear();
        self.crash = None;
        self.crash_timer = None;
        self.fault_timer = None;
        if let Some(at) = self.drain_until.take() {
            let now = ctx.now();
            if at <= now {
                // The scheduled window already ended while we finished
                // queued work: rejoin immediately.
                self.dormant = false;
                self.go_live(ctx);
            } else {
                self.reactivate_timer = Some(ctx.set_timer(at.saturating_duration_since(now)));
            }
        }
    }

    /// Joins the group and arms the crash schedule (initial start or
    /// standby activation).
    fn go_live(&mut self, ctx: &mut Context<'_, Wire>) {
        // Instantiate the crash schedule with the simulation RNG so it is
        // deterministic per seed.
        let crash = CrashState::new(self.config.crash, ctx.now(), ctx.rng());
        if let Some(at) = crash.crash_at() {
            // A timer guarantees the crash happens even while idle.
            self.crash_timer = Some(ctx.set_timer(at.saturating_duration_since(ctx.now())));
        }
        self.crash = Some(crash);

        let me = Member::server(ctx.self_id(), self.config.replica);
        let mut agent = MembershipAgent::new(self.config.coordinator, me, self.config.group);
        agent.on_started(ctx);
        self.agent = Some(agent);
        self.schedule_fault_edge(ctx);
    }

    /// Arms a timer at the next edge of the fault schedule (if any).
    fn schedule_fault_edge(&mut self, ctx: &mut Context<'_, Wire>) {
        let Some(schedule) = &self.config.faults else {
            return;
        };
        let now = ctx.now();
        self.fault_timer = schedule
            .next_transition_after(now)
            .map(|next| ctx.set_timer(next.saturating_duration_since(now)));
    }

    /// A fault-schedule edge passed: enter a scheduled down window, or
    /// resume work stalled by a pause that just ended.
    fn on_fault_edge(&mut self, ctx: &mut Context<'_, Wire>) {
        self.apply_scheduled_faults(ctx);
        self.schedule_fault_edge(ctx);
        if self.dead || self.is_crashed() {
            return;
        }
        // A scheduled drain window opened: leave gracefully, reactivate
        // at the window's end.
        let drain = self
            .config
            .faults
            .as_ref()
            .and_then(|s| s.draining_until(self.config.replica, ctx.now()));
        if let Some(until) = drain {
            self.begin_drain(ctx, Some(until));
        }
        self.start_next_service(ctx);
        self.maybe_go_dormant(ctx);
    }

    /// Enters a scheduled down window: identical to a crash (queued work
    /// is lost, the group evicts us), except the recovery timer is set to
    /// the window's end — or never, for a saturated crash-forever window.
    fn apply_scheduled_faults(&mut self, ctx: &mut Context<'_, Wire>) {
        let Some(schedule) = &self.config.faults else {
            return;
        };
        if self.dead || self.is_crashed() {
            return;
        }
        let now = ctx.now();
        if let ReplicaHealth::Down { until } = schedule.health(self.config.replica, now) {
            if let Some(agent) = self.agent.as_mut() {
                agent.stop();
            }
            self.queue.drain();
            self.in_service = None;
            self.dead = true;
            self.recovery_timer = if until.as_nanos() == u64::MAX {
                None // crash-forever: stay dark
            } else {
                Some(ctx.set_timer(until.saturating_duration_since(now)))
            };
        }
    }

    /// Requests serviced so far.
    pub fn serviced(&self) -> u64 {
        self.serviced
    }

    /// Whether this replica is currently crashed (permanently, or down
    /// awaiting recovery).
    pub fn is_crashed(&self) -> bool {
        self.dead || self.crash.as_ref().is_some_and(CrashState::is_crashed)
    }

    /// Current queue depth.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Registered performance-update subscribers.
    pub fn subscribers(&self) -> &[NodeId] {
        &self.subscribers
    }

    fn crash_now(&mut self, ctx: &mut Context<'_, Wire>) {
        if let Some(agent) = self.agent.as_mut() {
            agent.stop();
        }
        self.queue.drain();
        self.in_service = None;
        match self.config.recover_after {
            // Permanent crash: leave the simulation entirely.
            None => ctx.detach_self(),
            // Process restart: go silent, come back after the downtime.
            Some(downtime) => {
                self.dead = true;
                self.recovery_timer = Some(ctx.set_timer(downtime));
            }
        }
    }

    fn recover(&mut self, ctx: &mut Context<'_, Wire>) {
        self.dead = false;
        self.restarts += 1;
        self.subscribers.clear();
        // A restarted process gets a fresh crash schedule: one-shot
        // time-based plans do not refire, counters and MTBF draws restart.
        let plan = match self.config.crash {
            CrashPlan::AtTime(_) => CrashPlan::Never,
            other => other,
        };
        let crash = CrashState::new(plan, ctx.now(), ctx.rng());
        if let Some(at) = crash.crash_at() {
            self.crash_timer = Some(ctx.set_timer(at.saturating_duration_since(ctx.now())));
        }
        self.crash = Some(crash);
        // Rejoin the group under a fresh membership agent.
        let me = Member::server(ctx.self_id(), self.config.replica);
        let mut agent = MembershipAgent::new(self.config.coordinator, me, self.config.group);
        agent.on_started(ctx);
        self.agent = Some(agent);
        self.schedule_fault_edge(ctx);
    }

    fn check_time_crash(&mut self, ctx: &mut Context<'_, Wire>) -> bool {
        let crashed_now = self
            .crash
            .as_mut()
            .is_some_and(|c| c.observe_time(ctx.now()));
        if crashed_now {
            self.crash_now(ctx);
        }
        self.is_crashed()
    }

    fn start_next_service(&mut self, ctx: &mut Context<'_, Wire>) {
        if self.in_service.is_some() {
            return;
        }
        if let Some(schedule) = &self.config.faults {
            // Paused: the service stage stalls but queued work survives;
            // the fault-edge timer resumes us when the pause ends.
            if schedule
                .paused_until(self.config.replica, ctx.now())
                .is_some()
            {
                return;
            }
        }
        // t3: dequeue for service.
        let Some(((id, method), queuing_delay)) = self.queue.pop(ctx.now()) else {
            return;
        };
        let mut factor = self.load.factor(ctx.now(), ctx.rng());
        if let Some(schedule) = &self.config.faults {
            factor *= schedule.service_factor(self.config.replica, ctx.now());
        }
        let model = self
            .config
            .method_services
            .iter()
            .find(|(m, _)| *m == method)
            .map(|(_, s)| s)
            .unwrap_or(&self.config.service);
        let service_time = model.sample(ctx.rng()).mul_f64(factor);
        let timer = ctx.set_timer(service_time);
        self.in_service = Some(InService {
            id,
            method,
            queuing_delay,
            service_time,
            timer,
        });
    }

    fn finish_service(&mut self, ctx: &mut Context<'_, Wire>) {
        let Some(job) = self.in_service.take() else {
            return;
        };
        self.serviced += 1;
        let perf = PerfReport {
            service_time: job.service_time,
            queuing_delay: job.queuing_delay,
            queue_len: self.queue.len() as u32,
            method: job.method,
        };
        // Reply to the requesting client (perf piggybacked)…
        ctx.send(
            job.id.client,
            GroupMsg::App(AquaMsg::Reply {
                id: job.id,
                replica: self.config.replica,
                perf,
                payload_size: self.config.reply_size,
            }),
        );
        // …and publish the update to all subscribers (§5.4.1). The
        // requesting client already got the data on the reply.
        let update = GroupMsg::App(AquaMsg::PerfUpdate {
            replica: self.config.replica,
            perf,
        });
        let targets: Vec<NodeId> = self
            .subscribers
            .iter()
            .copied()
            .filter(|s| *s != job.id.client)
            .collect();
        if !targets.is_empty() {
            ctx.multicast(&targets, update);
        }

        // Crash-after-N triggers after the reply is sent (the request that
        // hits the threshold is the last one serviced).
        let crashed = self.crash.as_mut().is_some_and(|c| c.observe_serviced());
        if crashed {
            self.crash_now(ctx);
            return;
        }
        self.start_next_service(ctx);
        self.maybe_go_dormant(ctx);
    }
}

impl Node<Wire> for ServerGateway {
    fn on_event(&mut self, event: Event<Wire>, ctx: &mut Context<'_, Wire>) {
        match event {
            Event::Started => {
                if self.config.standby {
                    self.dormant = true;
                } else {
                    self.go_live(ctx);
                }
            }
            Event::Timer { token } => {
                if self.dormant {
                    // Scheduled-drain window ended: rejoin the group.
                    if Some(token) == self.reactivate_timer {
                        self.reactivate_timer = None;
                        self.dormant = false;
                        self.go_live(ctx);
                    }
                    return;
                }
                if self.dead {
                    if Some(token) == self.recovery_timer {
                        self.recover(ctx);
                    }
                    return;
                }
                if self.check_time_crash(ctx) {
                    return;
                }
                if Some(token) == self.crash_timer {
                    // Crash time passed; check_time_crash above handled it
                    // unless the plan moved — nothing more to do.
                    return;
                }
                if Some(token) == self.fault_timer {
                    self.on_fault_edge(ctx);
                    return;
                }
                if let Some(agent) = self.agent.as_mut() {
                    if agent.on_timer(token, ctx) {
                        return;
                    }
                }
                if self.in_service.as_ref().is_some_and(|j| j.timer == token) {
                    self.finish_service(ctx);
                }
            }
            Event::Message { payload, .. } => {
                if self.dormant {
                    if matches!(payload, GroupMsg::App(AquaMsg::Activate)) {
                        self.dormant = false;
                        self.reactivate_timer = None;
                        self.go_live(ctx);
                    }
                    return;
                }
                if self.dead {
                    return;
                }
                if self.check_time_crash(ctx) {
                    return;
                }
                match payload {
                    GroupMsg::App(AquaMsg::Request {
                        id,
                        method,
                        payload_size: _,
                    }) => {
                        // t2: enqueue on arrival.
                        self.queue.push((id, method), ctx.now());
                        self.start_next_service(ctx);
                    }
                    GroupMsg::App(AquaMsg::Subscribe { client })
                        if !self.subscribers.contains(&client) =>
                    {
                        self.subscribers.push(client);
                    }
                    GroupMsg::App(AquaMsg::Drain) => {
                        // Manager-driven rolling restart: drain and wait
                        // dormant for a fresh Activate.
                        self.begin_drain(ctx, None);
                    }
                    GroupMsg::ViewChange(view) => {
                        if let Some(agent) = self.agent.as_mut() {
                            agent.on_view_change(view);
                        }
                    }
                    // Replies/updates are not addressed to servers; other
                    // control traffic is coordinator-bound.
                    _ => {}
                }
            }
        }
    }
}
