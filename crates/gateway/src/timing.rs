//! The timing fault handler (§5.4), transport-agnostic.
//!
//! [`TimingFaultHandler`] owns the per-service state of a client gateway:
//! the QoS spec, the information repository, the selection strategy, the
//! pending-request table, and the timing-failure detector. It is pure
//! bookkeeping — the caller (a simulated node or the socket runtime) feeds
//! it events and performs the sends it plans:
//!
//! 1. [`TimingFaultHandler::plan_request`] — intercept a client request at
//!    `t0`, select replicas, record `t1`;
//! 2. [`TimingFaultHandler::on_reply`] — classify a reply (first vs
//!    redundant), measure the gateway delay `td = t4 − t1 − tq − ts`,
//!    update the repository, and run timing-failure detection;
//! 3. [`TimingFaultHandler::on_perf_update`] /
//!    [`TimingFaultHandler::on_view`] — keep the repository current.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use aqua_core::failure::{TimingFailureDetector, TimingVerdict};
use aqua_core::model::ModelCacheStats;
use aqua_core::qos::{QosSpec, ReplicaId};
use aqua_core::repository::{InfoRepository, MethodId, PerfReport};
use aqua_core::time::{Duration, Instant};
use aqua_strategies::{SelectionInput, SelectionStrategy};

use crate::obs::{HandlerObserver, PlanObservation};

/// A request the handler has multicast and is awaiting replies for.
#[derive(Debug, Clone)]
pub struct PendingRequest {
    /// When the client's request was intercepted (`t0`).
    pub intercepted_at: Instant,
    /// When the request was transmitted to the replicas (`t1`).
    pub sent_at: Instant,
    /// The selected replica subset, shared with the plan handed to the
    /// caller (one allocation per plan, not two).
    pub selected: Arc<[ReplicaId]>,
    /// Whether the first reply has been delivered to the client.
    pub answered: bool,
    /// Probes refresh the repository but are invisible to the client:
    /// no delivery, no timing-failure accounting (§8, extension 3).
    pub probe: bool,
}

/// The plan produced for one intercepted request: multicast the request
/// with this sequence number to these replicas.
#[derive(Debug, Clone)]
pub struct RequestPlan {
    /// Client-local sequence number identifying the request.
    pub seq: u64,
    /// Replicas to multicast to (empty when none are known — the caller
    /// should fail the request immediately). Shared with the handler's
    /// pending-request entry.
    pub replicas: Arc<[ReplicaId]>,
}

/// What [`TimingFaultHandler::on_reply`] decided about a reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplyOutcome {
    /// First reply for the request: deliver it to the client.
    Deliver {
        /// End-to-end response time `tr = t4 − t0`.
        response_time: Duration,
        /// Timing classification (and whether to fire the QoS callback).
        verdict: TimingVerdict,
    },
    /// A redundant reply: discard, but its performance data was used.
    Redundant,
    /// Reply for an unknown/expired request (e.g. after give-up).
    Unknown,
}

/// Aggregate counters for reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HandlerStats {
    /// Requests planned.
    pub requests: u64,
    /// Sum of selected-set sizes (for average redundancy).
    pub replicas_selected: u64,
    /// Replies delivered to the client (first replies).
    pub delivered: u64,
    /// Redundant replies discarded.
    pub redundant: u64,
    /// Requests finalized as failures because no reply ever arrived.
    pub gave_up: u64,
    /// QoS-violation callbacks issued.
    pub callbacks: u64,
    /// Active probes sent to replicas with stale performance data.
    pub probes: u64,
    /// Deadline-driven retry attempts issued (§retry: re-run Algorithm 1
    /// over the remaining replicas when the first selection misses an
    /// intermediate deadline).
    pub retries: u64,
    /// Attempts retired without delivery or failure because a sibling
    /// attempt resolved the logical request.
    pub abandoned: u64,
}

impl HandlerStats {
    /// Average number of replicas selected per request.
    pub fn mean_redundancy(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.replicas_selected as f64 / self.requests as f64
        }
    }
}

/// The per-service client-side handler state (see module docs).
pub struct TimingFaultHandler {
    qos: QosSpec,
    repository: InfoRepository,
    strategy: Box<dyn SelectionStrategy>,
    detector: TimingFailureDetector,
    pending: HashMap<u64, PendingRequest>,
    next_seq: u64,
    stats: HandlerStats,
    observer: Option<HandlerObserver>,
    client_id: Option<u64>,
    /// Strategy cache counters as of the last plan, so each plan reports
    /// only its own delta to the observer.
    cache_seen: ModelCacheStats,
    /// Every replica ever observed in a view or join: a member that shows
    /// up again after leaving is a *rejoin* and starts on probation,
    /// whereas a first-time member is warmed by the cold-start multicast.
    seen: BTreeSet<ReplicaId>,
}

impl std::fmt::Debug for TimingFaultHandler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimingFaultHandler")
            .field("qos", &self.qos)
            .field("strategy", &self.strategy.name())
            .field("pending", &self.pending.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl TimingFaultHandler {
    /// Creates a handler with the paper's defaults: sliding window `l`,
    /// the given strategy, and the client's QoS spec.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(qos: QosSpec, window: usize, strategy: Box<dyn SelectionStrategy>) -> Self {
        TimingFaultHandler {
            qos,
            repository: InfoRepository::new(window),
            strategy,
            detector: TimingFailureDetector::new(qos),
            pending: HashMap::new(),
            next_seq: 0,
            stats: HandlerStats::default(),
            observer: None,
            client_id: None,
            cache_seen: ModelCacheStats::default(),
            seen: BTreeSet::new(),
        }
    }

    /// Attaches an observability sink: from now on every planned request,
    /// reply, and give-up updates the `obs` registry and opens/extends a
    /// journal span. `client` labels the metrics and spans.
    pub fn attach_obs(&mut self, obs: &aqua_obs::Obs, client: Option<u64>) {
        self.observer = Some(HandlerObserver::new(obs, client));
        self.client_id = client;
    }

    /// The attached observer, if any.
    pub fn observer(&self) -> Option<&HandlerObserver> {
        self.observer.as_ref()
    }

    /// Mutable access to the attached observer (fault-window installation,
    /// watchdog reconfiguration, alert hooks).
    pub fn observer_mut(&mut self) -> Option<&mut HandlerObserver> {
        self.observer.as_mut()
    }

    /// Installs the run's fault timeline on the observer so every emitted
    /// span is tagged with the stable ids of overlapping fault windows.
    /// No-op without an attached observer.
    pub fn set_fault_windows(&mut self, windows: Vec<aqua_faults::FaultWindow>) {
        if let Some(observer) = self.observer.as_mut() {
            observer.set_fault_windows(windows);
        }
    }

    /// Emits every span still held by the observer (delivered requests
    /// keep their span open to absorb late redundant replies) and flushes
    /// the journal. No-op without an attached observer.
    pub fn flush_observability(&mut self) {
        if let Some(observer) = self.observer.as_mut() {
            observer.flush();
        }
    }

    /// The QoS specification currently in force.
    pub fn qos(&self) -> QosSpec {
        self.qos
    }

    /// Renegotiates the QoS specification (§4), resetting failure counters.
    pub fn renegotiate(&mut self, qos: QosSpec) {
        self.qos = qos;
        self.detector.renegotiate(qos);
    }

    /// The gateway information repository.
    pub fn repository(&self) -> &InfoRepository {
        &self.repository
    }

    /// Mutable repository access (tests, manual seeding).
    pub fn repository_mut(&mut self) -> &mut InfoRepository {
        &mut self.repository
    }

    /// The timing-failure detector.
    pub fn detector(&self) -> &TimingFailureDetector {
        &self.detector
    }

    /// Aggregate counters.
    pub fn stats(&self) -> HandlerStats {
        self.stats
    }

    /// The active strategy's name.
    pub fn strategy_name(&self) -> &'static str {
        self.strategy.name()
    }

    /// Requests currently awaiting a first reply.
    pub fn pending_count(&self) -> usize {
        self.pending.values().filter(|p| !p.answered).count()
    }

    /// Intercepts a client request at `now` (= `t0` = `t1`) and selects the
    /// replica subset. The caller multicasts the request and later reports
    /// replies via [`TimingFaultHandler::on_reply`].
    pub fn plan_request(&mut self, now: Instant) -> RequestPlan {
        self.plan_request_for(now, None)
    }

    /// Like [`TimingFaultHandler::plan_request`] with a method id for
    /// per-method performance classification (§8 ext. 1).
    pub fn plan_request_for(&mut self, now: Instant, method: Option<MethodId>) -> RequestPlan {
        self.plan_with(now, method, now, None, &[])
            // aqua-lint: allow(no-panic-in-hot-path) plan_with returns None only when every replica is excluded; the initial call excludes none
            .expect("initial selections always produce a plan")
    }

    /// Plans a **deadline-driven retry** for a logical request first issued
    /// at `t0` whose attempt `retry_of` has missed an intermediate deadline:
    /// Algorithm 1 re-runs over the *remaining* replicas (the original
    /// selection is passed in `exclude`) and the new subset is multicast as
    /// a sibling attempt. Returns `None` when no other replica is available,
    /// in which case the caller keeps waiting on the original attempt.
    pub fn plan_retry(
        &mut self,
        now: Instant,
        method: Option<MethodId>,
        t0: Instant,
        retry_of: u64,
        exclude: &[ReplicaId],
    ) -> Option<RequestPlan> {
        self.plan_with(now, method, t0, Some(retry_of), exclude)
    }

    fn plan_with(
        &mut self,
        now: Instant,
        method: Option<MethodId>,
        t0: Instant,
        retry_of: Option<u64>,
        exclude: &[ReplicaId],
    ) -> Option<RequestPlan> {
        // δ (§5.3.3): the wall-clock cost of evaluating the model and
        // running the selection, fed to the overhead histogram. On a retry,
        // Algorithm 1 runs over the *remaining* replicas: the exclusion set
        // travels inside the input so the excluded members are invisible to
        // the model itself — not merely filtered out of its answer.
        let select_started = std::time::Instant::now();
        let mut replicas = self.strategy.select(&SelectionInput {
            repository: &self.repository,
            qos: &self.qos,
            method,
            now,
            exclude,
        });
        if retry_of.is_some() && replicas.is_empty() {
            // A retry with nobody left to ask is pointless; the original
            // attempt (or the give-up timer) resolves the request.
            return None;
        }
        // The model's per-replica P(meet deadline) for this very plan,
        // aligned with the selection (empty for baseline strategies and
        // cold-start multicasts). Captured before probation shadows are
        // appended: shadows carry no prediction.
        let predicted: Vec<f64> = {
            let predictions = self.strategy.last_predictions();
            replicas
                .iter()
                .map(|r| predictions.iter().find(|(id, _)| id == r).map(|(_, p)| *p))
                .collect::<Option<Vec<f64>>>()
                .unwrap_or_default()
        };
        // Probation members ride along as shadow traffic: never trusted
        // candidates until `l` fresh samples arrive (§5.2), but the extra
        // replies rebuild their sliding window so probation can clear.
        let shadows: Vec<ReplicaId> = self
            .repository
            .iter()
            .filter(|(id, stats)| {
                stats.is_on_probation() && !replicas.contains(id) && !exclude.contains(id)
            })
            .map(|(id, _)| id)
            .collect();
        replicas.extend(shadows);
        let overhead_nanos = select_started.elapsed().as_nanos() as u64;
        let replicas: Arc<[ReplicaId]> = replicas.into();
        let seq = self.next_seq;
        self.next_seq += 1;
        if retry_of.is_none() {
            self.stats.requests += 1;
        } else {
            self.stats.retries += 1;
        }
        self.stats.replicas_selected += replicas.len() as u64;
        if let Some(observer) = self.observer.as_mut() {
            observer.on_plan(PlanObservation {
                seq,
                method: method.unwrap_or_default().index(),
                client: self.client_id,
                now_nanos: now.as_nanos(),
                deadline_nanos: self.qos.deadline().as_nanos(),
                promised: self.qos.min_probability(),
                selected: &replicas,
                predicted: &predicted,
                view_version: None,
                probe: false,
                overhead_nanos: Some(overhead_nanos),
                retry_of,
            });
            if let Some(totals) = self.strategy.cache_stats() {
                observer.on_model_cache(
                    totals.hits - self.cache_seen.hits,
                    totals.misses - self.cache_seen.misses,
                    totals.invalidations - self.cache_seen.invalidations,
                );
                self.cache_seen = totals;
            }
        }
        self.pending.insert(
            seq,
            PendingRequest {
                intercepted_at: t0,
                sent_at: now,
                selected: Arc::clone(&replicas),
                answered: false,
                probe: false,
            },
        );
        Some(RequestPlan { seq, replicas })
    }

    /// Plans an **active probe** to one replica (§8, extension 3: "use
    /// active probes \[5\] when a replica's performance information is
    /// obsolete"). The caller sends a minimal request with the returned
    /// sequence number; the reply refreshes the repository (including the
    /// gateway delay, which needs the recorded `t1`) but is never delivered
    /// and never counts toward the timing-failure statistics.
    pub fn plan_probe(&mut self, now: Instant, replica: ReplicaId) -> RequestPlan {
        let replicas: Arc<[ReplicaId]> = Arc::from([replica]);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.stats.probes += 1;
        if let Some(observer) = self.observer.as_mut() {
            observer.on_plan(PlanObservation {
                seq,
                method: MethodId::DEFAULT.index(),
                client: self.client_id,
                now_nanos: now.as_nanos(),
                deadline_nanos: self.qos.deadline().as_nanos(),
                promised: self.qos.min_probability(),
                selected: std::slice::from_ref(&replica),
                predicted: &[],
                view_version: None,
                probe: true,
                overhead_nanos: None,
                retry_of: None,
            });
        }
        self.pending.insert(
            seq,
            PendingRequest {
                intercepted_at: now,
                sent_at: now,
                selected: Arc::clone(&replicas),
                answered: false,
                probe: true,
            },
        );
        RequestPlan { seq, replicas }
    }

    /// Replicas whose repository entry is older than `staleness` at `now`
    /// (or has no data at all) — the probe candidates.
    pub fn stale_replicas(&self, now: Instant, staleness: Duration) -> Vec<ReplicaId> {
        self.repository
            .iter()
            .filter(|(_, stats)| {
                stats
                    .last_update()
                    .is_none_or(|at| now.saturating_duration_since(at) > staleness)
            })
            .map(|(id, _)| id)
            .collect()
    }

    /// Processes a reply that arrived at `now` (= `t4`) from `replica` for
    /// request `seq`, carrying piggybacked `perf` data.
    pub fn on_reply(
        &mut self,
        now: Instant,
        seq: u64,
        replica: ReplicaId,
        perf: PerfReport,
    ) -> ReplyOutcome {
        let Some(pending) = self.pending.get_mut(&seq) else {
            // Expired request: still mine the perf data.
            self.record_perf_only(now, replica, perf);
            return ReplyOutcome::Unknown;
        };

        // td = t4 − t1 − tq − ts (§5.4.1). Clamped at zero: bucketed or
        // skewed measurements must never underflow.
        let in_flight = now.saturating_duration_since(pending.sent_at);
        let td = in_flight
            .saturating_sub(perf.queuing_delay)
            .saturating_sub(perf.service_time);
        let first = !pending.answered;
        let probe = pending.probe;
        let t0 = pending.intercepted_at;
        if first {
            pending.answered = true;
        }

        // The gateway-side handling cost of this reply (repository update
        // plus delay bookkeeping), recorded on the span as `ingest_ns` so
        // forensics can separate wire delay from ingest stalls.
        let ingest_started = std::time::Instant::now();
        self.record_perf_tracked(now, replica, perf);
        self.repository.record_gateway_delay(replica, td, now);
        let ingest_nanos = ingest_started.elapsed().as_nanos() as u64;

        if probe {
            // Probe replies only feed the repository.
            self.observe_reply(
                seq,
                replica,
                now,
                &perf,
                td,
                in_flight,
                ingest_nanos,
                first,
                true,
                None,
            );
            return ReplyOutcome::Redundant;
        }
        if first {
            let response_time = now.saturating_duration_since(t0);
            let verdict = self.detector.record(response_time);
            self.stats.delivered += 1;
            if verdict.should_notify() {
                self.stats.callbacks += 1;
            }
            self.observe_reply(
                seq,
                replica,
                now,
                &perf,
                td,
                in_flight,
                ingest_nanos,
                true,
                false,
                Some(verdict),
            );
            ReplyOutcome::Deliver {
                response_time,
                verdict,
            }
        } else {
            self.stats.redundant += 1;
            self.observe_reply(
                seq,
                replica,
                now,
                &perf,
                td,
                in_flight,
                ingest_nanos,
                false,
                false,
                None,
            );
            self.retire_old_entries();
            ReplyOutcome::Redundant
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn observe_reply(
        &mut self,
        seq: u64,
        replica: ReplicaId,
        now: Instant,
        perf: &PerfReport,
        td: Duration,
        in_flight: Duration,
        ingest_nanos: u64,
        first: bool,
        probe: bool,
        verdict: Option<TimingVerdict>,
    ) {
        if let Some(observer) = self.observer.as_mut() {
            observer.on_reply(
                seq,
                replica,
                now.as_nanos(),
                perf.service_time.as_nanos(),
                perf.queuing_delay.as_nanos(),
                td.as_nanos(),
                in_flight.as_nanos(),
                Some(ingest_nanos),
                first,
                probe,
                verdict,
            );
        }
    }

    /// Answered entries are kept so later duplicates count as `Redundant`
    /// rather than `Unknown`; memory is bounded by retiring entries older
    /// than the most recent 1024 sequence numbers.
    fn retire_old_entries(&mut self) {
        if self.next_seq > 1024 {
            let cutoff = self.next_seq - 1024;
            self.pending.retain(|s, p| *s >= cutoff || !p.answered);
        }
    }

    fn record_perf_only(&mut self, now: Instant, replica: ReplicaId, perf: PerfReport) {
        self.record_perf_tracked(now, replica, perf);
    }

    /// Records a perf sample and emits a probation-cleared event when the
    /// sample is the one that completes the replica's fresh window (§5.2).
    fn record_perf_tracked(&mut self, now: Instant, replica: ReplicaId, perf: PerfReport) {
        let was_on_probation = self
            .repository
            .stats(replica)
            .is_some_and(|s| s.is_on_probation());
        self.repository.record_perf(replica, perf, now);
        if was_on_probation {
            let cleared = self
                .repository
                .stats(replica)
                .is_some_and(|s| !s.is_on_probation());
            if cleared {
                if let Some(observer) = self.observer.as_mut() {
                    observer.on_probation(replica, false, now.as_nanos());
                }
            }
        }
    }

    /// Processes a pushed performance update from a subscriber channel.
    pub fn on_perf_update(&mut self, now: Instant, replica: ReplicaId, perf: PerfReport) {
        self.record_perf_tracked(now, replica, perf);
    }

    /// Installs a new server membership (from a group view change): departed
    /// replicas are dropped from the repository and will "not be considered
    /// in the selection process for future requests" (§5.4). A member that
    /// was seen before, left, and now reappears is a *rejoin* and starts on
    /// probation; first-time members are warmed by the cold-start multicast
    /// as usual.
    pub fn on_view<I: IntoIterator<Item = ReplicaId>>(&mut self, now: Instant, servers: I) {
        let servers: Vec<ReplicaId> = servers.into_iter().collect();
        // Current members are by definition "seen", even when they were
        // inserted directly at connect time rather than through a view.
        let known: Vec<ReplicaId> = self.repository.replica_ids().collect();
        self.seen.extend(known);
        let rejoining: Vec<ReplicaId> = servers
            .iter()
            .filter(|id| self.seen.contains(id) && !self.repository.contains(**id))
            .copied()
            .collect();
        self.seen.extend(servers.iter().copied());
        self.repository.apply_view(servers);
        for id in rejoining {
            self.begin_probation(now, id);
        }
    }

    /// Marks `replica` as rejoined after an outage (e.g. a socket reconnect
    /// after a crash-and-recover): it re-enters the repository **on
    /// probation**, shadowing selections until `l` fresh samples arrive.
    pub fn on_rejoin(&mut self, now: Instant, replica: ReplicaId) {
        self.seen.insert(replica);
        if self.repository.contains(replica) {
            return;
        }
        self.repository.insert_replica(replica);
        self.begin_probation(now, replica);
    }

    fn begin_probation(&mut self, now: Instant, replica: ReplicaId) {
        let window = self.repository.window() as u32;
        self.repository.set_probation(replica, window);
        if let Some(observer) = self.observer.as_mut() {
            observer.on_probation(replica, true, now.as_nanos());
        }
    }

    /// Retires attempt `seq` because a sibling attempt of the same logical
    /// request was delivered first. Not a delivery and not a failure: the
    /// request span closes as `superseded`, and late replies degrade to
    /// [`ReplyOutcome::Unknown`] (still mining their perf data). Returns
    /// `true` if the attempt was still open.
    pub fn on_abandon(&mut self, now: Instant, seq: u64) -> bool {
        match self.pending.get(&seq) {
            Some(p) if !p.answered && !p.probe => {
                self.pending.remove(&seq);
                self.stats.abandoned += 1;
                if let Some(observer) = self.observer.as_mut() {
                    observer.on_abandon(seq, now.as_nanos());
                }
                true
            }
            _ => false,
        }
    }

    /// Finalizes a request that never received any reply (all selected
    /// replicas crashed or the caller's give-up timer fired) at `now`.
    /// Counts as a timing failure. Returns `true` if the request was
    /// still open.
    pub fn on_give_up(&mut self, now: Instant, seq: u64) -> bool {
        match self.pending.get(&seq) {
            Some(p) if p.probe => {
                // An unanswered probe is not a client-visible failure.
                self.pending.remove(&seq);
                if let Some(observer) = self.observer.as_mut() {
                    observer.on_give_up(seq, true, None, false, now.as_nanos());
                }
                false
            }
            Some(p) if !p.answered => {
                self.pending.remove(&seq);
                self.stats.gave_up += 1;
                // An unbounded response time: record as "missed by a lot".
                let verdict = self
                    .detector
                    .record(self.qos.deadline().saturating_mul(1_000));
                if verdict.should_notify() {
                    self.stats.callbacks += 1;
                }
                if let Some(observer) = self.observer.as_mut() {
                    observer.on_give_up(
                        seq,
                        false,
                        Some(verdict),
                        verdict.should_notify(),
                        now.as_nanos(),
                    );
                }
                true
            }
            _ => false,
        }
    }

    /// The pending entry for a sequence number, if still tracked.
    pub fn pending(&self, seq: u64) -> Option<&PendingRequest> {
        self.pending.get(&seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_strategies::ModelBased;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn handler(pc: f64) -> TimingFaultHandler {
        let qos = QosSpec::new(ms(200), pc).unwrap();
        TimingFaultHandler::new(qos, 5, Box::new(ModelBased::default()))
    }

    fn warm(h: &mut TimingFaultHandler, ids: &[u64], service_ms: u64) {
        for i in ids {
            let r = ReplicaId::new(*i);
            h.repository_mut().insert_replica(r);
            for _ in 0..3 {
                h.repository_mut().record_perf(
                    r,
                    PerfReport::new(ms(service_ms), ms(0), 0),
                    Instant::EPOCH,
                );
            }
            h.repository_mut()
                .record_gateway_delay(r, ms(2), Instant::EPOCH);
        }
    }

    #[test]
    fn cold_start_plans_full_multicast() {
        let mut h = handler(0.9);
        for i in 0..3 {
            h.repository_mut().insert_replica(ReplicaId::new(i));
        }
        let plan = h.plan_request(Instant::EPOCH);
        assert_eq!(plan.replicas.len(), 3);
        assert_eq!(plan.seq, 0);
        assert_eq!(h.pending_count(), 1);
    }

    #[test]
    fn first_reply_delivers_and_updates_everything() {
        let mut h = handler(0.9);
        warm(&mut h, &[0, 1, 2], 100);
        let t0 = Instant::from_millis(1_000);
        let plan = h.plan_request(t0);
        assert_eq!(plan.replicas.len(), 2, "warm Pc=0.9 needs m0 + 1");

        let r = plan.replicas[0];
        let t4 = t0 + ms(110);
        let perf = PerfReport::new(ms(100), ms(3), 1);
        let outcome = h.on_reply(t4, plan.seq, r, perf);
        match outcome {
            ReplyOutcome::Deliver {
                response_time,
                verdict,
            } => {
                assert_eq!(response_time, ms(110));
                assert!(verdict.is_timely());
            }
            other => panic!("expected Deliver, got {other:?}"),
        }
        // td = 110 − 3 − 100 = 7 ms.
        assert_eq!(
            h.repository().stats(r).unwrap().last_gateway_delay(),
            Some(ms(7))
        );
        assert_eq!(h.repository().stats(r).unwrap().outstanding(), 1);
        assert_eq!(h.stats().delivered, 1);
    }

    #[test]
    fn second_reply_is_redundant_but_mined() {
        let mut h = handler(0.9);
        warm(&mut h, &[0, 1, 2], 100);
        let t0 = Instant::from_millis(1_000);
        let plan = h.plan_request(t0);
        let (a, b) = (plan.replicas[0], plan.replicas[1]);
        let perf = PerfReport::new(ms(100), ms(0), 0);
        assert!(matches!(
            h.on_reply(t0 + ms(105), plan.seq, a, perf),
            ReplyOutcome::Deliver { .. }
        ));
        let before = h.repository().stats(b).unwrap().gateway_delays().len();
        assert_eq!(
            h.on_reply(t0 + ms(140), plan.seq, b, perf),
            ReplyOutcome::Redundant
        );
        let after = h.repository().stats(b).unwrap().gateway_delays().len();
        assert_eq!(after, before + 1, "redundant reply updated the delay");
        assert_eq!(h.stats().redundant, 1);
        assert_eq!(h.stats().delivered, 1);
    }

    #[test]
    fn late_first_reply_is_a_timing_failure() {
        let mut h = handler(0.0);
        warm(&mut h, &[0, 1], 100);
        let t0 = Instant::EPOCH;
        let plan = h.plan_request(t0);
        let outcome = h.on_reply(
            t0 + ms(500),
            plan.seq,
            plan.replicas[0],
            PerfReport::new(ms(480), ms(0), 0),
        );
        match outcome {
            ReplyOutcome::Deliver { verdict, .. } => {
                assert!(!verdict.is_timely());
                assert!(!verdict.should_notify(), "Pc = 0 tolerates failures");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(h.detector().failures(), 1);
    }

    #[test]
    fn callback_fires_when_violating() {
        let mut h = handler(0.9);
        warm(&mut h, &[0, 1], 100);
        let plan = h.plan_request(Instant::EPOCH);
        let outcome = h.on_reply(
            Instant::EPOCH + ms(900),
            plan.seq,
            plan.replicas[0],
            PerfReport::new(ms(880), ms(0), 0),
        );
        match outcome {
            ReplyOutcome::Deliver { verdict, .. } => assert!(verdict.should_notify()),
            other => panic!("{other:?}"),
        }
        assert_eq!(h.stats().callbacks, 1);
    }

    #[test]
    fn unknown_seq_still_mines_perf() {
        let mut h = handler(0.5);
        warm(&mut h, &[0], 100);
        let r = ReplicaId::new(0);
        let out = h.on_reply(Instant::EPOCH, 999, r, PerfReport::new(ms(50), ms(0), 0));
        assert_eq!(out, ReplyOutcome::Unknown);
        // The perf sample reached the window: 50 ms is now the newest entry.
        let latest = *h
            .repository()
            .stats(r)
            .unwrap()
            .history(MethodId::DEFAULT)
            .unwrap()
            .service_times()
            .latest()
            .unwrap();
        assert_eq!(latest, ms(50));
    }

    #[test]
    fn give_up_counts_failure_once() {
        let mut h = handler(0.0);
        warm(&mut h, &[0, 1], 100);
        let plan = h.plan_request(Instant::EPOCH);
        assert!(h.on_give_up(Instant::from_secs(5), plan.seq));
        assert!(!h.on_give_up(Instant::from_secs(5), plan.seq), "idempotent");
        assert_eq!(h.stats().gave_up, 1);
        assert_eq!(h.detector().failures(), 1);
        // A straggler reply after give-up is Unknown.
        assert_eq!(
            h.on_reply(
                Instant::from_secs(10),
                plan.seq,
                plan.replicas[0],
                PerfReport::new(ms(1), ms(0), 0)
            ),
            ReplyOutcome::Unknown
        );
    }

    #[test]
    fn probes_refresh_without_touching_statistics() {
        let mut h = handler(0.9);
        warm(&mut h, &[0, 1], 100);
        let r = ReplicaId::new(0);
        let t0 = Instant::from_secs(1);
        let plan = h.plan_probe(t0, r);
        assert_eq!(&plan.replicas[..], &[r]);
        assert_eq!(h.stats().probes, 1);
        assert_eq!(h.stats().requests, 0, "probes are not client requests");

        // The probe reply is never delivered, even though it is the first.
        let outcome = h.on_reply(
            t0 + ms(700), // way past any deadline — still no failure
            plan.seq,
            r,
            PerfReport::new(ms(650), ms(40), 2),
        );
        assert_eq!(outcome, ReplyOutcome::Redundant);
        assert_eq!(h.stats().delivered, 0);
        assert_eq!(h.detector().total(), 0, "no timing accounting for probes");
        // But the measurements landed: td = 700 − 40 − 650 = 10 ms.
        let stats = h.repository().stats(r).unwrap();
        assert_eq!(stats.last_gateway_delay(), Some(ms(10)));
        assert_eq!(stats.outstanding(), 2);
    }

    #[test]
    fn unanswered_probes_give_up_silently() {
        let mut h = handler(0.9);
        warm(&mut h, &[0, 1], 100);
        let plan = h.plan_probe(Instant::EPOCH, ReplicaId::new(1));
        assert!(
            !h.on_give_up(Instant::from_secs(5), plan.seq),
            "probe give-up is not a failure"
        );
        assert_eq!(h.stats().gave_up, 0);
        assert_eq!(h.detector().total(), 0);
    }

    #[test]
    fn stale_replicas_reports_old_and_empty_entries() {
        let mut h = handler(0.5);
        warm(&mut h, &[0], 100); // warmed at Instant::EPOCH
        h.repository_mut().insert_replica(ReplicaId::new(9)); // never updated
        let stale = h.stale_replicas(Instant::from_secs(10), Duration::from_secs(5));
        assert_eq!(stale, vec![ReplicaId::new(0), ReplicaId::new(9)]);
        let fresh = h.stale_replicas(Instant::from_millis(1), Duration::from_secs(5));
        assert_eq!(fresh, vec![ReplicaId::new(9)], "only the blank entry");
    }

    #[test]
    fn view_change_evicts_crashed_replica() {
        let mut h = handler(0.0);
        warm(&mut h, &[0, 1, 2], 100);
        h.on_view(Instant::EPOCH, [ReplicaId::new(0), ReplicaId::new(2)]);
        assert!(!h.repository().contains(ReplicaId::new(1)));
        let plan = h.plan_request(Instant::EPOCH);
        assert!(!plan.replicas.contains(&ReplicaId::new(1)));
    }

    #[test]
    fn perf_update_warms_repository() {
        let mut h = handler(0.0);
        h.repository_mut().insert_replica(ReplicaId::new(0));
        h.on_perf_update(
            Instant::EPOCH,
            ReplicaId::new(0),
            PerfReport::new(ms(10), ms(1), 0),
        );
        let stats = h.repository().stats(ReplicaId::new(0)).unwrap();
        assert_eq!(stats.outstanding(), 0);
        assert!(stats.history(MethodId::DEFAULT).is_some());
        assert!(!stats.is_warm(), "still no gateway delay measured");
    }

    #[test]
    fn renegotiate_resets_detector() {
        let mut h = handler(0.9);
        warm(&mut h, &[0, 1], 100);
        let plan = h.plan_request(Instant::EPOCH);
        h.on_reply(
            Instant::EPOCH + ms(900),
            plan.seq,
            plan.replicas[0],
            PerfReport::new(ms(880), ms(0), 0),
        );
        assert!(h.detector().is_violating());
        h.renegotiate(QosSpec::new(ms(1_000), 0.5).unwrap());
        assert!(!h.detector().is_violating());
        assert_eq!(h.qos().deadline(), ms(1_000));
    }

    #[test]
    fn mean_redundancy_tracks_selections() {
        let mut h = handler(0.0);
        warm(&mut h, &[0, 1, 2, 3], 100);
        for i in 0..4 {
            let plan = h.plan_request(Instant::from_millis(i * 10));
            assert_eq!(plan.replicas.len(), 2, "Pc = 0 warm selects 2");
        }
        assert_eq!(h.stats().mean_redundancy(), 2.0);
    }

    #[test]
    fn retry_replans_over_remaining_replicas() {
        let mut h = handler(0.0);
        warm(&mut h, &[0, 1, 2, 3], 100);
        let first = h.plan_request(Instant::EPOCH);
        let retry = h
            .plan_retry(
                Instant::from_millis(150),
                None,
                Instant::EPOCH,
                first.seq,
                &first.replicas,
            )
            .expect("others remain");
        assert!(!retry.replicas.is_empty());
        for r in retry.replicas.iter() {
            assert!(
                !first.replicas.contains(r),
                "retry must use the remaining replicas only"
            );
        }
        assert_eq!(h.stats().requests, 1, "a retry is not a new request");
        assert_eq!(h.stats().retries, 1);
        // The retried attempt keeps the original interception time, so the
        // end-to-end response time spans both attempts.
        assert_eq!(h.pending(retry.seq).unwrap().intercepted_at, Instant::EPOCH);
    }

    #[test]
    fn retry_with_nobody_left_is_refused() {
        let mut h = handler(0.0);
        warm(&mut h, &[0, 1], 100);
        let first = h.plan_request(Instant::EPOCH);
        assert_eq!(first.replicas.len(), 2);
        assert!(
            h.plan_retry(
                Instant::from_millis(150),
                None,
                Instant::EPOCH,
                first.seq,
                &first.replicas
            )
            .is_none(),
            "every replica is already serving the first attempt"
        );
        assert_eq!(h.stats().retries, 0);
    }

    #[test]
    fn plan_and_pending_share_one_replica_list() {
        let mut h = handler(0.0);
        warm(&mut h, &[0, 1], 100);
        let plan = h.plan_request(Instant::EPOCH);
        assert!(
            Arc::ptr_eq(&plan.replicas, &h.pending(plan.seq).unwrap().selected),
            "the plan and the pending entry must share one allocation"
        );
        let probe = h.plan_probe(Instant::from_millis(1), ReplicaId::new(0));
        assert!(Arc::ptr_eq(
            &probe.replicas,
            &h.pending(probe.seq).unwrap().selected
        ));
    }

    #[test]
    fn abandoned_attempt_is_neither_delivery_nor_failure() {
        let mut h = handler(0.0);
        warm(&mut h, &[0, 1], 100);
        let plan = h.plan_request(Instant::EPOCH);
        assert!(h.on_abandon(Instant::from_millis(50), plan.seq));
        assert!(
            !h.on_abandon(Instant::from_millis(51), plan.seq),
            "already retired"
        );
        let stats = h.stats();
        assert_eq!(stats.abandoned, 1);
        assert_eq!(stats.delivered, 0);
        assert_eq!(stats.gave_up, 0);
        assert_eq!(h.detector().failures(), 0);
        // A late reply from the abandoned attempt still mines perf data.
        let replica = plan.replicas[0];
        let outcome = h.on_reply(
            Instant::from_millis(120),
            plan.seq,
            replica,
            PerfReport::new(ms(100), ms(0), 0),
        );
        assert!(matches!(outcome, ReplyOutcome::Unknown));
        assert!(
            !h.on_give_up(Instant::from_millis(130), plan.seq),
            "nothing left to give up on"
        );
    }

    #[test]
    fn rejoining_replica_serves_probation_until_fresh_window() {
        let mut h = handler(0.0);
        warm(&mut h, &[0, 1, 2], 100);
        h.on_view(Instant::EPOCH, [ReplicaId::new(0), ReplicaId::new(1)]);
        assert!(!h.repository().contains(ReplicaId::new(2)));
        // Replica 2 recovers and rejoins the view: probation, not trust.
        h.on_view(
            Instant::from_millis(10),
            [ReplicaId::new(0), ReplicaId::new(1), ReplicaId::new(2)],
        );
        let stats = h.repository().stats(ReplicaId::new(2)).unwrap();
        assert!(stats.is_on_probation());
        // It shadows the next selection (so its window can refill) but is
        // never a trusted candidate while on probation.
        let plan = h.plan_request(Instant::from_millis(20));
        assert!(plan.replicas.contains(&ReplicaId::new(2)));
        assert_eq!(
            *plan.replicas.last().unwrap(),
            ReplicaId::new(2),
            "shadows are appended after the trusted selection"
        );
        // l fresh samples clear probation.
        for i in 0..5u64 {
            h.on_perf_update(
                Instant::from_millis(30 + i),
                ReplicaId::new(2),
                PerfReport::new(ms(90), ms(0), 0),
            );
        }
        let stats = h.repository().stats(ReplicaId::new(2)).unwrap();
        assert!(!stats.is_on_probation());
    }

    #[test]
    fn first_time_members_join_without_probation() {
        let mut h = handler(0.0);
        warm(&mut h, &[0, 1], 100);
        h.on_view(
            Instant::EPOCH,
            [ReplicaId::new(0), ReplicaId::new(1), ReplicaId::new(2)],
        );
        let stats = h.repository().stats(ReplicaId::new(2)).unwrap();
        assert!(
            !stats.is_on_probation(),
            "a never-seen member is warmed by the cold-start multicast instead"
        );
    }

    #[test]
    fn explicit_rejoin_starts_probation() {
        let mut h = handler(0.0);
        warm(&mut h, &[0, 1], 100);
        h.on_view(Instant::EPOCH, [ReplicaId::new(0)]);
        h.on_rejoin(Instant::from_millis(5), ReplicaId::new(1));
        assert!(h.repository().contains(ReplicaId::new(1)));
        assert!(h
            .repository()
            .stats(ReplicaId::new(1))
            .unwrap()
            .is_on_probation());
        // Rejoining while still connected is a no-op.
        h.on_rejoin(Instant::from_millis(6), ReplicaId::new(0));
        assert!(!h
            .repository()
            .stats(ReplicaId::new(0))
            .unwrap()
            .is_on_probation());
    }
}
