//! Observability hooks for the timing fault handler.
//!
//! [`HandlerObserver`] is the glue between [`crate::TimingFaultHandler`]
//! and the `aqua-obs` registry/journal: the handler calls one hook per
//! lifecycle event (plan, reply, give-up) and the observer maintains
//!
//! * counters — requests, probes, delivered/redundant replies, give-ups,
//!   QoS callbacks, timing failures, selection-set-size counts;
//! * histograms — per-replica `ts`/`tq`/`td` decompositions, end-to-end
//!   response times, and the selection overhead δ of §5.3.3;
//! * one [`RequestSpan`] per request, emitted to the JSONL journal when
//!   the request retires (give-up) or when the run flushes.
//!
//! All metric handles are cached here, so steady-state recording never
//! touches the registry lock.

use std::collections::HashMap;
use std::sync::Arc;

use aqua_core::failure::TimingVerdict;
use aqua_core::qos::ReplicaId;
use aqua_core::time::Instant;
use aqua_faults::FaultWindow;
use aqua_obs::journal::{Journal, ReplyObservation, RequestSpan, SpanOutcome};
use aqua_obs::metrics::{Counter, Histogram};
use aqua_obs::Obs;
use aqua_trace::{CalibrationConfig, QosWatchdog};

/// Renders a verdict as the journal's stable string form.
fn verdict_label(verdict: TimingVerdict) -> &'static str {
    match verdict {
        TimingVerdict::Timely => "timely",
        TimingVerdict::Failure { qos_violated: true } => "failure_qos_violated",
        TimingVerdict::Failure {
            qos_violated: false,
        } => "failure",
    }
}

struct ReplicaHistograms {
    ts: Arc<Histogram>,
    tq: Arc<Histogram>,
    td: Arc<Histogram>,
}

/// Everything a handler knows when it plans one attempt, bundled for
/// [`HandlerObserver::on_plan`].
pub(crate) struct PlanObservation<'a> {
    /// Handler-assigned sequence number of this attempt.
    pub seq: u64,
    /// Method identifier.
    pub method: u32,
    /// Client identity, when known.
    pub client: Option<u64>,
    /// Plan time (`t1`), nanoseconds on the run's clock.
    pub now_nanos: u64,
    /// QoS deadline, nanoseconds.
    pub deadline_nanos: u64,
    /// Promised `Pc` from the QoS spec, audited by the watchdog.
    pub promised: f64,
    /// The chosen replica set, trusted members first.
    pub selected: &'a [ReplicaId],
    /// Model predictions `P(meet deadline)` aligned with the leading
    /// entries of `selected`; empty when the planner had none (baseline
    /// strategy, cold-start multicast). Probation shadows at the tail of
    /// `selected` carry no prediction.
    pub predicted: &'a [f64],
    /// Version of the planning view / model snapshot consulted.
    pub view_version: Option<u64>,
    /// Whether this is a measurement probe.
    pub probe: bool,
    /// Selection overhead δ for this plan, when measured.
    pub overhead_nanos: Option<u64>,
    /// For retries, the seq of the superseded attempt.
    pub retry_of: Option<u64>,
}

/// Tags `span` with every fault window that overlapped a selected
/// replica (or the whole network) during its lifetime, then emits it.
/// Pending/gave-up spans without an end time use the deadline window as
/// their exposure interval.
fn emit_span_tagged(journal: &Journal, windows: &[FaultWindow], mut span: RequestSpan) {
    let from = Instant::from_nanos(span.t1_nanos);
    let to = Instant::from_nanos(
        span.end_nanos
            .unwrap_or_else(|| span.t1_nanos.saturating_add(span.deadline_nanos)),
    );
    for window in windows {
        if window.overlaps(&span.selected, from, to) && !span.fault_windows.contains(&window.id) {
            span.fault_windows.push(window.id);
        }
    }
    span.fault_windows.sort_unstable();
    journal.emit_span(&span);
}

/// Per-handler observability state. See the module docs.
pub struct HandlerObserver {
    obs: Obs,
    client_label: String,
    requests: Arc<Counter>,
    probes: Arc<Counter>,
    delivered: Arc<Counter>,
    redundant: Arc<Counter>,
    gave_up: Arc<Counter>,
    callbacks: Arc<Counter>,
    timing_failures: Arc<Counter>,
    retries: Arc<Counter>,
    abandoned: Arc<Counter>,
    probation_started: Arc<Counter>,
    probation_cleared: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    cache_invalidations: Arc<Counter>,
    overhead: Arc<Histogram>,
    response: Arc<Histogram>,
    selection_sizes: HashMap<usize, Arc<Counter>>,
    per_replica: HashMap<ReplicaId, ReplicaHistograms>,
    spans: HashMap<u64, RequestSpan>,
    fault_windows: Vec<FaultWindow>,
    watchdog: QosWatchdog,
}

impl std::fmt::Debug for HandlerObserver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HandlerObserver")
            .field("client", &self.client_label)
            .field("open_spans", &self.spans.len())
            .finish()
    }
}

impl HandlerObserver {
    /// Creates an observer recording into `obs`, labelling every metric
    /// with `client` (the gateway's client identity, when known).
    pub fn new(obs: &Obs, client: Option<u64>) -> Self {
        let client_label = client.map_or_else(|| "-".to_owned(), |c| c.to_string());
        let registry = obs.registry();
        let labels = [("client", client_label.as_str())];
        HandlerObserver {
            requests: registry.counter("aqua_requests_total", &labels),
            probes: registry.counter("aqua_probes_total", &labels),
            delivered: registry.counter("aqua_replies_delivered_total", &labels),
            redundant: registry.counter("aqua_replies_redundant_total", &labels),
            gave_up: registry.counter("aqua_gave_up_total", &labels),
            callbacks: registry.counter("aqua_qos_callbacks_total", &labels),
            timing_failures: registry.counter("aqua_timing_failures_total", &labels),
            retries: registry.counter("aqua_retries_total", &labels),
            abandoned: registry.counter("aqua_attempts_superseded_total", &labels),
            probation_started: registry
                .counter("aqua_probation_transitions_total", &[("phase", "started")]),
            probation_cleared: registry
                .counter("aqua_probation_transitions_total", &[("phase", "cleared")]),
            cache_hits: registry.counter("aqua_model_cache_hits_total", &labels),
            cache_misses: registry.counter("aqua_model_cache_misses_total", &labels),
            cache_invalidations: registry.counter("aqua_model_cache_invalidations_total", &labels),
            overhead: registry.histogram("aqua_selection_overhead_ns", &labels),
            response: registry.histogram("aqua_response_time_ns", &labels),
            selection_sizes: HashMap::new(),
            per_replica: HashMap::new(),
            spans: HashMap::new(),
            fault_windows: Vec::new(),
            watchdog: QosWatchdog::new(obs),
            obs: obs.clone(),
            client_label,
        }
    }

    /// Installs the run's fault timeline so every emitted span is tagged
    /// with the stable ids of the windows that overlapped it (exact joins
    /// for the forensics analyzer).
    pub fn set_fault_windows(&mut self, windows: Vec<FaultWindow>) {
        self.fault_windows = windows;
    }

    /// Replaces the QoS-calibration watchdog with one using `config`
    /// (resets its rolling statistics).
    pub fn configure_watchdog(&mut self, config: CalibrationConfig) {
        self.watchdog = QosWatchdog::with_config(&self.obs, config);
    }

    /// The calibration watchdog, e.g. to register alert hooks for a
    /// dependability manager.
    pub fn watchdog_mut(&mut self) -> &mut QosWatchdog {
        &mut self.watchdog
    }

    fn replica_histograms(&mut self, replica: ReplicaId) -> &ReplicaHistograms {
        if !self.per_replica.contains_key(&replica) {
            let client_label = self.client_label.clone();
            let replica_label = replica.index().to_string();
            let entry = {
                let registry = self.obs.registry();
                let labels = [
                    ("client", client_label.as_str()),
                    ("replica", replica_label.as_str()),
                ];
                ReplicaHistograms {
                    ts: registry.histogram("aqua_reply_ts_ns", &labels),
                    tq: registry.histogram("aqua_reply_tq_ns", &labels),
                    td: registry.histogram("aqua_reply_td_ns", &labels),
                }
            };
            self.per_replica.insert(replica, entry);
        }
        &self.per_replica[&replica]
    }

    fn selection_size_counter(&mut self, size: usize) -> &Arc<Counter> {
        if !self.selection_sizes.contains_key(&size) {
            let client_label = self.client_label.clone();
            let size_label = size.to_string();
            let counter = self.obs.registry().counter(
                "aqua_selection_size_total",
                &[
                    ("client", client_label.as_str()),
                    ("size", size_label.as_str()),
                ],
            );
            self.selection_sizes.insert(size, counter);
        }
        &self.selection_sizes[&size]
    }

    /// Records a planned request (or probe) and opens its span.
    pub(crate) fn on_plan(&mut self, plan: PlanObservation<'_>) {
        if plan.probe {
            self.probes.inc();
        } else {
            if plan.retry_of.is_none() {
                // Retries are extra attempts at the same logical request:
                // they widen the selection-size histogram but must not
                // inflate the request count.
                self.requests.inc();
            }
            self.selection_size_counter(plan.selected.len()).inc();
            let predictions: Vec<(u64, f64)> = plan
                .selected
                .iter()
                .zip(plan.predicted.iter())
                .map(|(r, p)| (r.index(), *p))
                .collect();
            self.watchdog
                .on_plan(plan.seq, plan.method, plan.promised, &predictions);
        }
        if let Some(delta) = plan.overhead_nanos {
            self.overhead.record(delta);
        }
        if let Some(superseded) = plan.retry_of {
            self.retries.inc();
            self.obs.journal().emit_event(
                "retry",
                aqua_obs::json::JsonValue::object()
                    .field("seq", plan.seq)
                    .field("retry_of", superseded)
                    .field("at_ns", plan.now_nanos),
            );
        }
        let mut span = RequestSpan::begin(plan.seq, plan.method, plan.now_nanos, plan.now_nanos);
        span.client = plan.client;
        span.deadline_nanos = plan.deadline_nanos;
        span.selected = plan.selected.iter().map(|r| r.index()).collect();
        span.predicted = plan.predicted.to_vec();
        span.view_version = plan.view_version;
        span.plan_nanos = plan.overhead_nanos;
        span.probe = plan.probe;
        span.retry_of = plan.retry_of;
        self.spans.insert(plan.seq, span);
        // Keep memory bounded on endless runs: spill the oldest finished
        // spans once a generous cap is exceeded.
        if self.spans.len() > 4096 {
            let cutoff = plan.seq.saturating_sub(4096);
            let mut old: Vec<u64> = self
                .spans
                .iter()
                .filter(|(s, span)| **s < cutoff && span.outcome != SpanOutcome::Pending)
                .map(|(s, _)| *s)
                .collect();
            old.sort_unstable();
            for seq in old {
                if let Some(span) = self.spans.remove(&seq) {
                    emit_span_tagged(self.obs.journal(), &self.fault_windows, span);
                }
            }
        }
    }

    /// Records one reply's measurements and appends it to its span.
    /// `ingest_nanos` is the gateway-side handling time for this reply
    /// (stats application / ingest-shard work), when measured.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_reply(
        &mut self,
        seq: u64,
        replica: ReplicaId,
        at_nanos: u64,
        service_nanos: u64,
        queue_nanos: u64,
        gateway_nanos: u64,
        response_nanos: u64,
        ingest_nanos: Option<u64>,
        first: bool,
        probe: bool,
        verdict: Option<TimingVerdict>,
    ) {
        {
            let hists = self.replica_histograms(replica);
            hists.ts.record(service_nanos);
            hists.tq.record(queue_nanos);
            hists.td.record(gateway_nanos);
        }
        if !probe {
            if first {
                self.delivered.inc();
                self.response.record(response_nanos);
            } else {
                self.redundant.inc();
            }
            if let Some(v) = verdict {
                if !v.is_timely() {
                    self.timing_failures.inc();
                }
                if v.should_notify() {
                    self.callbacks.inc();
                }
            }
        }
        let deadline = self.spans.get(&seq).map(|s| s.deadline_nanos);
        if let Some(deadline) = deadline {
            if !probe {
                let met = response_nanos <= deadline;
                self.watchdog
                    .on_replica_reply(seq, replica.index(), met, at_nanos);
                if first {
                    let delivered_in_time = verdict.map_or(met, TimingVerdict::is_timely);
                    self.watchdog.on_outcome(seq, delivered_in_time, at_nanos);
                }
            }
        }
        if let Some(span) = self.spans.get_mut(&seq) {
            span.replies.push(ReplyObservation {
                replica: replica.index(),
                at_nanos,
                service_nanos,
                queue_nanos,
                gateway_nanos,
                response_nanos,
                ingest_nanos,
                first,
                verdict: verdict.map(|v| verdict_label(v).to_owned()),
            });
            if first {
                span.outcome = SpanOutcome::Delivered;
                span.end_nanos = Some(at_nanos);
                if verdict.is_some_and(TimingVerdict::should_notify) {
                    span.callback = true;
                }
            }
        }
    }

    /// Records a give-up (no reply before the extended deadline) and emits
    /// the span. `verdict` is the detector's classification of the
    /// give-up and `callback` whether the client was notified — both are
    /// recorded on the span so the no-miss-without-callback invariant is
    /// auditable from the journal. Probe give-ups close the span without
    /// counting a failure.
    pub(crate) fn on_give_up(
        &mut self,
        seq: u64,
        probe: bool,
        verdict: Option<TimingVerdict>,
        callback: bool,
        at_nanos: u64,
    ) {
        if !probe {
            self.gave_up.inc();
            self.timing_failures.inc();
            if callback {
                self.callbacks.inc();
            }
            self.watchdog.on_outcome(seq, false, at_nanos);
        }
        if let Some(mut span) = self.spans.remove(&seq) {
            span.outcome = SpanOutcome::GaveUp;
            span.end_nanos = Some(at_nanos);
            span.callback = callback;
            span.give_up_verdict = verdict.map(|v| verdict_label(v).to_owned());
            emit_span_tagged(self.obs.journal(), &self.fault_windows, span);
        }
    }

    /// Retires an attempt superseded by a retry (or resolved through a
    /// sibling attempt) and emits its span. Not a timing failure.
    pub(crate) fn on_abandon(&mut self, seq: u64, at_nanos: u64) {
        self.abandoned.inc();
        self.watchdog.on_abandon(seq);
        if let Some(mut span) = self.spans.remove(&seq) {
            if span.outcome == SpanOutcome::Pending {
                span.outcome = SpanOutcome::Superseded;
                span.end_nanos = Some(at_nanos);
            }
            emit_span_tagged(self.obs.journal(), &self.fault_windows, span);
        }
    }

    /// Accumulates one plan's model-cache activity (deltas, not lifetime
    /// totals — the handler subtracts the previous snapshot).
    pub(crate) fn on_model_cache(&mut self, hits: u64, misses: u64, invalidations: u64) {
        if hits > 0 {
            self.cache_hits.add(hits);
        }
        if misses > 0 {
            self.cache_misses.add(misses);
        }
        if invalidations > 0 {
            self.cache_invalidations.add(invalidations);
        }
    }

    /// Records a probation transition for `replica`: `started = true` when
    /// a rejoining replica is quarantined, `false` when the `l` fresh
    /// samples arrived and it re-enters the selectable set.
    pub(crate) fn on_probation(&mut self, replica: ReplicaId, started: bool, at_nanos: u64) {
        if started {
            self.probation_started.inc();
        } else {
            self.probation_cleared.inc();
        }
        self.obs.journal().emit_event(
            "probation",
            aqua_obs::json::JsonValue::object()
                .field("replica", replica.index())
                .field("phase", if started { "started" } else { "cleared" })
                .field("client", self.client_label.as_str())
                .field("at_ns", at_nanos),
        );
    }

    /// Emits every remaining span (delivered and still-pending ones) in
    /// sequence order and flushes the journal.
    pub fn flush(&mut self) {
        let mut seqs: Vec<u64> = self.spans.keys().copied().collect();
        seqs.sort_unstable();
        for seq in seqs {
            if let Some(span) = self.spans.remove(&seq) {
                emit_span_tagged(self.obs.journal(), &self.fault_windows, span);
            }
        }
        self.obs.journal().flush();
    }

    /// Number of spans not yet emitted.
    pub fn open_spans(&self) -> usize {
        self.spans.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_labels_are_stable() {
        assert_eq!(verdict_label(TimingVerdict::Timely), "timely");
        assert_eq!(
            verdict_label(TimingVerdict::Failure {
                qos_violated: false
            }),
            "failure"
        );
        assert_eq!(
            verdict_label(TimingVerdict::Failure { qos_violated: true }),
            "failure_qos_violated"
        );
    }

    fn plan(seq: u64, selected: &[ReplicaId], predicted: &[f64]) -> PlanObservation<'static> {
        // Leak the slices: test-only convenience for a 'static plan.
        PlanObservation {
            seq,
            method: 0,
            client: Some(3),
            now_nanos: 100 + seq,
            deadline_nanos: 200_000_000,
            promised: 0.9,
            selected: Box::leak(selected.to_vec().into_boxed_slice()),
            predicted: Box::leak(predicted.to_vec().into_boxed_slice()),
            view_version: Some(4),
            probe: false,
            overhead_nanos: Some(1_500),
            retry_of: None,
        }
    }

    #[test]
    fn plan_reply_give_up_round_trip() {
        let (obs, reader) = Obs::in_memory();
        let mut observer = HandlerObserver::new(&obs, Some(3));
        let r = ReplicaId::new(1);
        observer.on_plan(plan(0, &[r], &[0.97]));
        observer.on_reply(
            0,
            r,
            90_000_100,
            80_000_000,
            5_000_000,
            5_000_000,
            90_000_000,
            Some(250),
            true,
            false,
            Some(TimingVerdict::Timely),
        );
        observer.on_plan(plan(1, &[r], &[0.97]));
        observer.on_give_up(
            1,
            false,
            Some(TimingVerdict::Failure { qos_violated: true }),
            true,
            400_000_000,
        );
        observer.flush();

        let lines = reader.lines();
        assert_eq!(lines.len(), 2, "{lines:?}");
        assert!(lines[0].contains(r#""outcome":"gave_up""#), "{}", lines[0]);
        assert!(lines[0].contains(r#""callback":true"#), "{}", lines[0]);
        assert!(
            lines[0].contains(r#""give_up_verdict":"failure_qos_violated""#),
            "{}",
            lines[0]
        );
        assert!(lines[0].contains(r#""end_ns":400000000"#), "{}", lines[0]);
        assert!(
            lines[1].contains(r#""outcome":"delivered""#),
            "{}",
            lines[1]
        );
        assert!(lines[1].contains(r#""predicted":[0.97]"#), "{}", lines[1]);
        assert!(lines[1].contains(r#""view_version":4"#), "{}", lines[1]);
        assert!(lines[1].contains(r#""plan_ns":1500"#), "{}", lines[1]);
        assert!(lines[1].contains(r#""ingest_ns":250"#), "{}", lines[1]);

        let prom = obs.prometheus();
        assert!(
            prom.contains("aqua_requests_total{client=\"3\"} 2"),
            "{prom}"
        );
        assert!(prom.contains("aqua_timing_failures_total{client=\"3\"} 1"));
        assert!(prom.contains("aqua_qos_callbacks_total{client=\"3\"} 1"));
        assert!(prom.contains("aqua_selection_overhead_ns"));
        assert!(prom.contains("aqua_reply_ts_ns"));
        assert!(
            prom.contains("aqua_qos_calibration_error"),
            "watchdog fed from the observer: {prom}"
        );
    }

    #[test]
    fn spans_are_tagged_with_overlapping_fault_windows() {
        use aqua_core::time::Duration;
        let (obs, reader) = Obs::in_memory();
        let mut observer = HandlerObserver::new(&obs, None);
        let schedule = aqua_faults::FaultPlan::new()
            .pause(
                1,
                aqua_core::time::Instant::from_secs(1),
                Duration::from_secs(2),
            )
            .degrade(
                9,
                aqua_core::time::Instant::from_secs(100),
                Duration::from_secs(1),
                2.0,
            )
            .instantiate(7);
        observer.set_fault_windows(schedule.windows());
        let r = ReplicaId::new(1);
        let mut p = plan(0, &[r], &[0.9]);
        p.now_nanos = 1_500_000_000; // inside the pause window on replica 1
        observer.on_plan(p);
        observer.on_give_up(0, false, None, false, 1_900_000_000);
        observer.flush();
        let line = &reader.lines_containing("\"type\":\"request\"")[0];
        assert!(line.contains(r#""fault_windows":[0]"#), "{line}");
    }

    #[test]
    fn watchdog_alerts_on_sustained_drift() {
        let (obs, reader) = Obs::in_memory();
        let mut observer = HandlerObserver::new(&obs, None);
        observer.configure_watchdog(CalibrationConfig {
            min_samples: 10,
            cooldown: 20,
            ..CalibrationConfig::default()
        });
        let r = ReplicaId::new(1);
        for seq in 0..40 {
            observer.on_plan(plan(seq, &[r], &[0.97]));
            observer.on_give_up(
                seq,
                false,
                Some(TimingVerdict::Failure { qos_violated: true }),
                true,
                400_000_000 + seq,
            );
        }
        assert!(observer.watchdog_mut().alerts() >= 1);
        assert!(!reader.lines_containing("calibration_alert").is_empty());
    }
}
