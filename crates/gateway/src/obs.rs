//! Observability hooks for the timing fault handler.
//!
//! [`HandlerObserver`] is the glue between [`crate::TimingFaultHandler`]
//! and the `aqua-obs` registry/journal: the handler calls one hook per
//! lifecycle event (plan, reply, give-up) and the observer maintains
//!
//! * counters — requests, probes, delivered/redundant replies, give-ups,
//!   QoS callbacks, timing failures, selection-set-size counts;
//! * histograms — per-replica `ts`/`tq`/`td` decompositions, end-to-end
//!   response times, and the selection overhead δ of §5.3.3;
//! * one [`RequestSpan`] per request, emitted to the JSONL journal when
//!   the request retires (give-up) or when the run flushes.
//!
//! All metric handles are cached here, so steady-state recording never
//! touches the registry lock.

use std::collections::HashMap;
use std::sync::Arc;

use aqua_core::failure::TimingVerdict;
use aqua_core::qos::ReplicaId;
use aqua_obs::journal::{ReplyObservation, RequestSpan, SpanOutcome};
use aqua_obs::metrics::{Counter, Histogram};
use aqua_obs::Obs;

/// Renders a verdict as the journal's stable string form.
fn verdict_label(verdict: TimingVerdict) -> &'static str {
    match verdict {
        TimingVerdict::Timely => "timely",
        TimingVerdict::Failure { qos_violated: true } => "failure_qos_violated",
        TimingVerdict::Failure {
            qos_violated: false,
        } => "failure",
    }
}

struct ReplicaHistograms {
    ts: Arc<Histogram>,
    tq: Arc<Histogram>,
    td: Arc<Histogram>,
}

/// Per-handler observability state. See the module docs.
pub struct HandlerObserver {
    obs: Obs,
    client_label: String,
    requests: Arc<Counter>,
    probes: Arc<Counter>,
    delivered: Arc<Counter>,
    redundant: Arc<Counter>,
    gave_up: Arc<Counter>,
    callbacks: Arc<Counter>,
    timing_failures: Arc<Counter>,
    retries: Arc<Counter>,
    abandoned: Arc<Counter>,
    probation_started: Arc<Counter>,
    probation_cleared: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    cache_invalidations: Arc<Counter>,
    overhead: Arc<Histogram>,
    response: Arc<Histogram>,
    selection_sizes: HashMap<usize, Arc<Counter>>,
    per_replica: HashMap<ReplicaId, ReplicaHistograms>,
    spans: HashMap<u64, RequestSpan>,
}

impl std::fmt::Debug for HandlerObserver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HandlerObserver")
            .field("client", &self.client_label)
            .field("open_spans", &self.spans.len())
            .finish()
    }
}

impl HandlerObserver {
    /// Creates an observer recording into `obs`, labelling every metric
    /// with `client` (the gateway's client identity, when known).
    pub fn new(obs: &Obs, client: Option<u64>) -> Self {
        let client_label = client.map_or_else(|| "-".to_owned(), |c| c.to_string());
        let registry = obs.registry();
        let labels = [("client", client_label.as_str())];
        HandlerObserver {
            requests: registry.counter("aqua_requests_total", &labels),
            probes: registry.counter("aqua_probes_total", &labels),
            delivered: registry.counter("aqua_replies_delivered_total", &labels),
            redundant: registry.counter("aqua_replies_redundant_total", &labels),
            gave_up: registry.counter("aqua_gave_up_total", &labels),
            callbacks: registry.counter("aqua_qos_callbacks_total", &labels),
            timing_failures: registry.counter("aqua_timing_failures_total", &labels),
            retries: registry.counter("aqua_retries_total", &labels),
            abandoned: registry.counter("aqua_attempts_superseded_total", &labels),
            probation_started: registry
                .counter("aqua_probation_transitions_total", &[("phase", "started")]),
            probation_cleared: registry
                .counter("aqua_probation_transitions_total", &[("phase", "cleared")]),
            cache_hits: registry.counter("aqua_model_cache_hits_total", &labels),
            cache_misses: registry.counter("aqua_model_cache_misses_total", &labels),
            cache_invalidations: registry.counter("aqua_model_cache_invalidations_total", &labels),
            overhead: registry.histogram("aqua_selection_overhead_ns", &labels),
            response: registry.histogram("aqua_response_time_ns", &labels),
            selection_sizes: HashMap::new(),
            per_replica: HashMap::new(),
            spans: HashMap::new(),
            obs: obs.clone(),
            client_label,
        }
    }

    fn replica_histograms(&mut self, replica: ReplicaId) -> &ReplicaHistograms {
        if !self.per_replica.contains_key(&replica) {
            let client_label = self.client_label.clone();
            let replica_label = replica.index().to_string();
            let entry = {
                let registry = self.obs.registry();
                let labels = [
                    ("client", client_label.as_str()),
                    ("replica", replica_label.as_str()),
                ];
                ReplicaHistograms {
                    ts: registry.histogram("aqua_reply_ts_ns", &labels),
                    tq: registry.histogram("aqua_reply_tq_ns", &labels),
                    td: registry.histogram("aqua_reply_td_ns", &labels),
                }
            };
            self.per_replica.insert(replica, entry);
        }
        &self.per_replica[&replica]
    }

    fn selection_size_counter(&mut self, size: usize) -> &Arc<Counter> {
        if !self.selection_sizes.contains_key(&size) {
            let client_label = self.client_label.clone();
            let size_label = size.to_string();
            let counter = self.obs.registry().counter(
                "aqua_selection_size_total",
                &[
                    ("client", client_label.as_str()),
                    ("size", size_label.as_str()),
                ],
            );
            self.selection_sizes.insert(size, counter);
        }
        &self.selection_sizes[&size]
    }

    /// Records a planned request (or probe) and opens its span.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_plan(
        &mut self,
        seq: u64,
        method: u32,
        client: Option<u64>,
        now_nanos: u64,
        deadline_nanos: u64,
        selected: &[ReplicaId],
        probe: bool,
        overhead_nanos: Option<u64>,
        retry_of: Option<u64>,
    ) {
        if probe {
            self.probes.inc();
        } else {
            if retry_of.is_none() {
                // Retries are extra attempts at the same logical request:
                // they widen the selection-size histogram but must not
                // inflate the request count.
                self.requests.inc();
            }
            self.selection_size_counter(selected.len()).inc();
        }
        if let Some(delta) = overhead_nanos {
            self.overhead.record(delta);
        }
        if let Some(superseded) = retry_of {
            self.retries.inc();
            self.obs.journal().emit_event(
                "retry",
                aqua_obs::json::JsonValue::object()
                    .field("seq", seq)
                    .field("retry_of", superseded)
                    .field("at_ns", now_nanos),
            );
        }
        let mut span = RequestSpan::begin(seq, method, now_nanos, now_nanos);
        span.client = client;
        span.deadline_nanos = deadline_nanos;
        span.selected = selected.iter().map(|r| r.index()).collect();
        span.probe = probe;
        span.retry_of = retry_of;
        self.spans.insert(seq, span);
        // Keep memory bounded on endless runs: spill the oldest finished
        // spans once a generous cap is exceeded.
        if self.spans.len() > 4096 {
            let cutoff = seq.saturating_sub(4096);
            let old: Vec<u64> = self
                .spans
                .iter()
                .filter(|(s, span)| **s < cutoff && span.outcome != SpanOutcome::Pending)
                .map(|(s, _)| *s)
                .collect();
            let journal = self.obs.journal();
            let mut old = old;
            old.sort_unstable();
            for seq in old {
                if let Some(span) = self.spans.remove(&seq) {
                    journal.emit_span(&span);
                }
            }
        }
    }

    /// Records one reply's measurements and appends it to its span.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_reply(
        &mut self,
        seq: u64,
        replica: ReplicaId,
        at_nanos: u64,
        service_nanos: u64,
        queue_nanos: u64,
        gateway_nanos: u64,
        response_nanos: u64,
        first: bool,
        probe: bool,
        verdict: Option<TimingVerdict>,
    ) {
        {
            let hists = self.replica_histograms(replica);
            hists.ts.record(service_nanos);
            hists.tq.record(queue_nanos);
            hists.td.record(gateway_nanos);
        }
        if !probe {
            if first {
                self.delivered.inc();
                self.response.record(response_nanos);
            } else {
                self.redundant.inc();
            }
            if let Some(v) = verdict {
                if !v.is_timely() {
                    self.timing_failures.inc();
                }
                if v.should_notify() {
                    self.callbacks.inc();
                }
            }
        }
        if let Some(span) = self.spans.get_mut(&seq) {
            span.replies.push(ReplyObservation {
                replica: replica.index(),
                at_nanos,
                service_nanos,
                queue_nanos,
                gateway_nanos,
                response_nanos,
                first,
                verdict: verdict.map(|v| verdict_label(v).to_owned()),
            });
            if first {
                span.outcome = SpanOutcome::Delivered;
                span.end_nanos = Some(at_nanos);
            }
        }
    }

    /// Records a give-up (no reply before the extended deadline) and emits
    /// the span. Probe give-ups close the span without counting a failure.
    pub(crate) fn on_give_up(&mut self, seq: u64, probe: bool) {
        if !probe {
            self.gave_up.inc();
            self.timing_failures.inc();
        }
        if let Some(mut span) = self.spans.remove(&seq) {
            span.outcome = SpanOutcome::GaveUp;
            self.obs.journal().emit_span(&span);
        }
    }

    /// Records a QoS callback fired by a give-up (reply callbacks are
    /// counted inside [`HandlerObserver::on_reply`]).
    pub(crate) fn on_give_up_callback(&mut self) {
        self.callbacks.inc();
    }

    /// Retires an attempt superseded by a retry (or resolved through a
    /// sibling attempt) and emits its span. Not a timing failure.
    pub(crate) fn on_abandon(&mut self, seq: u64, at_nanos: u64) {
        self.abandoned.inc();
        if let Some(mut span) = self.spans.remove(&seq) {
            if span.outcome == SpanOutcome::Pending {
                span.outcome = SpanOutcome::Superseded;
                span.end_nanos = Some(at_nanos);
            }
            self.obs.journal().emit_span(&span);
        }
    }

    /// Accumulates one plan's model-cache activity (deltas, not lifetime
    /// totals — the handler subtracts the previous snapshot).
    pub(crate) fn on_model_cache(&mut self, hits: u64, misses: u64, invalidations: u64) {
        if hits > 0 {
            self.cache_hits.add(hits);
        }
        if misses > 0 {
            self.cache_misses.add(misses);
        }
        if invalidations > 0 {
            self.cache_invalidations.add(invalidations);
        }
    }

    /// Records a probation transition for `replica`: `started = true` when
    /// a rejoining replica is quarantined, `false` when the `l` fresh
    /// samples arrived and it re-enters the selectable set.
    pub(crate) fn on_probation(&mut self, replica: ReplicaId, started: bool, at_nanos: u64) {
        if started {
            self.probation_started.inc();
        } else {
            self.probation_cleared.inc();
        }
        self.obs.journal().emit_event(
            "probation",
            aqua_obs::json::JsonValue::object()
                .field("replica", replica.index())
                .field("phase", if started { "started" } else { "cleared" })
                .field("client", self.client_label.as_str())
                .field("at_ns", at_nanos),
        );
    }

    /// Emits every remaining span (delivered and still-pending ones) in
    /// sequence order and flushes the journal.
    pub fn flush(&mut self) {
        let mut seqs: Vec<u64> = self.spans.keys().copied().collect();
        seqs.sort_unstable();
        let journal = self.obs.journal();
        for seq in seqs {
            if let Some(span) = self.spans.remove(&seq) {
                journal.emit_span(&span);
            }
        }
        journal.flush();
    }

    /// Number of spans not yet emitted.
    pub fn open_spans(&self) -> usize {
        self.spans.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_labels_are_stable() {
        assert_eq!(verdict_label(TimingVerdict::Timely), "timely");
        assert_eq!(
            verdict_label(TimingVerdict::Failure {
                qos_violated: false
            }),
            "failure"
        );
        assert_eq!(
            verdict_label(TimingVerdict::Failure { qos_violated: true }),
            "failure_qos_violated"
        );
    }

    #[test]
    fn plan_reply_give_up_round_trip() {
        let (obs, reader) = Obs::in_memory();
        let mut observer = HandlerObserver::new(&obs, Some(3));
        let r = ReplicaId::new(1);
        observer.on_plan(
            0,
            0,
            Some(3),
            100,
            200_000_000,
            &[r],
            false,
            Some(1_500),
            None,
        );
        observer.on_reply(
            0,
            r,
            90_000_100,
            80_000_000,
            5_000_000,
            5_000_000,
            90_000_000,
            true,
            false,
            Some(TimingVerdict::Timely),
        );
        observer.on_plan(
            1,
            0,
            Some(3),
            200,
            200_000_000,
            &[r],
            false,
            Some(1_200),
            None,
        );
        observer.on_give_up(1, false);
        observer.flush();

        let lines = reader.lines();
        assert_eq!(lines.len(), 2, "{lines:?}");
        assert!(lines[0].contains(r#""outcome":"gave_up""#), "{}", lines[0]);
        assert!(
            lines[1].contains(r#""outcome":"delivered""#),
            "{}",
            lines[1]
        );

        let prom = obs.prometheus();
        assert!(
            prom.contains("aqua_requests_total{client=\"3\"} 2"),
            "{prom}"
        );
        assert!(prom.contains("aqua_timing_failures_total{client=\"3\"} 1"));
        assert!(prom.contains("aqua_selection_overhead_ns"));
        assert!(prom.contains("aqua_reply_ts_ns"));
    }
}
