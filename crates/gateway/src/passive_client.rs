//! A simulated client gateway running the **passive** replication handler
//! of earlier AQuA work (§2), for head-to-head comparison with the timing
//! fault handler.
//!
//! The passive scheme sends each request to a single primary; when the
//! primary crashes, the group's view change promotes the senior backup and
//! outstanding requests are resent. Crash masking therefore costs a full
//! *detection + failover + retransmission* round trip, where the timing
//! fault handler's redundant multicast masks the same crash with zero
//! added latency (Eq. 3).

use std::collections::HashMap;

use aqua_core::qos::QosSpec;
use aqua_core::repository::MethodId;
use aqua_core::time::Duration;
use aqua_group::{FailureDetectorConfig, GroupMsg, Member, MembershipAgent};
use lan_sim::{Context, Event, Node, NodeId, TimerToken};

use crate::client::RequestRecord;
use crate::handlers::PassiveHandler;
use crate::proto::{AquaMsg, RequestId, Wire};

/// Configuration of a passive-replication client gateway.
#[derive(Debug, Clone)]
pub struct PassiveClientConfig {
    /// The group coordinator node.
    pub coordinator: NodeId,
    /// Group cadence parameters.
    pub group: FailureDetectorConfig,
    /// Used only for timing-failure accounting in the records (the passive
    /// handler itself is deadline-oblivious).
    pub qos: QosSpec,
    /// Think time between a response and the next request.
    pub think_time: Duration,
    /// Requests to issue.
    pub num_requests: u64,
    /// Delay before the first request.
    pub start_after: Duration,
    /// Give up on a request this long after its (first) transmission.
    pub give_up_after: Duration,
}

impl PassiveClientConfig {
    /// Paper-style loop: think 1 s, 50 requests.
    pub fn paper(coordinator: NodeId, qos: QosSpec) -> Self {
        PassiveClientConfig {
            coordinator,
            group: FailureDetectorConfig::default(),
            qos,
            think_time: Duration::from_secs(1),
            num_requests: 50,
            start_after: Duration::from_millis(500),
            give_up_after: Duration::from_secs(5),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TimerKind {
    IssueRequest,
    GiveUp(u64),
}

/// The passive-replication client node. See the module docs.
pub struct PassiveClientGateway {
    config: PassiveClientConfig,
    handler: PassiveHandler,
    agent: Option<MembershipAgent>,
    timers: HashMap<TimerToken, TimerKind>,
    records: Vec<RequestRecord>,
    issued: u64,
    finished: bool,
}

impl std::fmt::Debug for PassiveClientGateway {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PassiveClientGateway")
            .field("issued", &self.issued)
            .field("failovers", &self.handler.failovers())
            .field("finished", &self.finished)
            .finish()
    }
}

impl PassiveClientGateway {
    /// Creates a passive client gateway.
    pub fn new(config: PassiveClientConfig) -> Self {
        PassiveClientGateway {
            config,
            handler: PassiveHandler::new(),
            agent: None,
            timers: HashMap::new(),
            records: Vec::new(),
            issued: 0,
            finished: false,
        }
    }

    /// The per-request records collected so far.
    pub fn records(&self) -> &[RequestRecord] {
        &self.records
    }

    /// Whether the configured number of requests has completed.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Failovers performed by the underlying handler.
    pub fn failovers(&self) -> u64 {
        self.handler.failovers()
    }

    fn schedule(&mut self, ctx: &mut Context<'_, Wire>, after: Duration, kind: TimerKind) {
        let token = ctx.set_timer(after);
        self.timers.insert(token, kind);
    }

    fn send_to_primary(&mut self, ctx: &mut Context<'_, Wire>, seq: u64) {
        let Some(primary) = self.handler.primary() else {
            return;
        };
        let Some(node) = self.agent.as_ref().and_then(|a| a.view().node_of(primary)) else {
            return;
        };
        ctx.send(
            node,
            GroupMsg::App(AquaMsg::Request {
                id: RequestId {
                    client: ctx.self_id(),
                    seq,
                },
                method: MethodId::DEFAULT,
                payload_size: 16,
            }),
        );
    }

    fn issue_request(&mut self, ctx: &mut Context<'_, Wire>) {
        if self.finished {
            return;
        }
        if self.issued >= self.config.num_requests {
            self.finished = true;
            return;
        }
        if self.handler.primary().is_none() {
            self.schedule(ctx, Duration::from_millis(50), TimerKind::IssueRequest);
            return;
        }
        let now = ctx.now();
        let Some((seq, _primary)) = self.handler.plan_request(now) else {
            self.schedule(ctx, Duration::from_millis(50), TimerKind::IssueRequest);
            return;
        };
        self.issued += 1;
        self.send_to_primary(ctx, seq);
        self.records.push(RequestRecord {
            seq,
            sent_at: now,
            redundancy: 1,
            first_reply_at: None,
            response_time: None,
            timely: false,
            callback: false,
        });
        let give_up = self.config.give_up_after;
        self.schedule(ctx, give_up, TimerKind::GiveUp(seq));
    }

    fn next_request(&mut self, ctx: &mut Context<'_, Wire>) {
        if self.issued >= self.config.num_requests {
            self.finished = true;
            return;
        }
        let think = self.config.think_time;
        self.schedule(ctx, think, TimerKind::IssueRequest);
    }

    /// The give-up timer fired; if the request is still outstanding, count
    /// it as a failure and move on.
    fn give_up(&mut self, seq: u64, ctx: &mut Context<'_, Wire>) {
        if self.handler.on_reply(seq) {
            if let Some(rec) = self.records.iter_mut().find(|r| r.seq == seq) {
                rec.timely = false;
            }
            self.next_request(ctx);
        }
    }

    /// A (primary's) reply arrived; close out the request if it is the
    /// first one.
    fn handle_reply(&mut self, seq: u64, ctx: &mut Context<'_, Wire>) {
        if self.handler.on_reply(seq) {
            let now = ctx.now();
            if let Some(rec) = self.records.iter_mut().find(|r| r.seq == seq) {
                rec.first_reply_at = Some(now);
                let tr = now.saturating_duration_since(rec.sent_at);
                rec.response_time = Some(tr);
                rec.timely = tr <= self.config.qos.deadline();
            }
            self.next_request(ctx);
        }
    }
}

impl Node<Wire> for PassiveClientGateway {
    fn on_event(&mut self, event: Event<Wire>, ctx: &mut Context<'_, Wire>) {
        match event {
            Event::Started => {
                let me = Member::client(ctx.self_id());
                let mut agent =
                    MembershipAgent::new(self.config.coordinator, me, self.config.group);
                agent.on_started(ctx);
                self.agent = Some(agent);
                let start_after = self.config.start_after;
                self.schedule(ctx, start_after, TimerKind::IssueRequest);
            }
            Event::Timer { token } => {
                if let Some(agent) = self.agent.as_mut() {
                    if agent.on_timer(token, ctx) {
                        return;
                    }
                }
                match self.timers.remove(&token) {
                    Some(TimerKind::IssueRequest) => self.issue_request(ctx),
                    Some(TimerKind::GiveUp(seq)) => self.give_up(seq, ctx),
                    None => {}
                }
            }
            Event::Message { payload, .. } => match payload {
                GroupMsg::App(AquaMsg::Reply { id, .. }) => self.handle_reply(id.seq, ctx),
                GroupMsg::ViewChange(view) => {
                    let installed = self
                        .agent
                        .as_mut()
                        .expect("started")
                        .on_view_change(view)
                        .map(|v| v.replica_ids().collect::<Vec<_>>());
                    if let Some(servers) = installed {
                        let action = self.handler.on_view(servers);
                        for seq in action.resend {
                            self.handler.mark_resent(seq, ctx.now());
                            // Record the resend as extra transmissions.
                            if let Some(rec) = self.records.iter_mut().find(|r| r.seq == seq) {
                                rec.redundancy += 1;
                            }
                            self.send_to_primary(ctx, seq);
                        }
                    }
                }
                _ => {}
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ServerConfig, ServerGateway};
    use aqua_core::qos::ReplicaId;
    use aqua_core::time::Instant;
    use aqua_group::GroupCoordinator;
    use aqua_replica::{CrashPlan, ServiceTimeModel};
    use lan_sim::Simulation;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn passive_client_serves_through_the_primary() {
        // Zero-latency network: joins arrive in node order, so replica 0
        // is deterministically the senior member (the primary).
        let mut sim = Simulation::new(71);
        let coordinator = sim.add_node(GroupCoordinator::<AquaMsg>::new(
            FailureDetectorConfig::default(),
        ));
        let mut primary_node = None;
        for i in 0..3u64 {
            let mut cfg = ServerConfig::paper(ReplicaId::new(i), coordinator);
            cfg.service = ServiceTimeModel::Deterministic(ms(30));
            let n = sim.add_node(ServerGateway::new(cfg));
            if i == 0 {
                primary_node = Some(n);
            }
        }
        let mut ccfg = PassiveClientConfig::paper(coordinator, QosSpec::new(ms(200), 0.9).unwrap());
        ccfg.num_requests = 10;
        ccfg.think_time = ms(150);
        let client = sim.add_node(PassiveClientGateway::new(ccfg));
        sim.run_until(Instant::from_secs(30));

        let gw = sim.node::<PassiveClientGateway>(client).unwrap();
        assert!(gw.is_finished(), "{gw:?}");
        assert_eq!(gw.records().len(), 10);
        assert!(gw.records().iter().all(|r| r.timely));
        assert_eq!(gw.failovers(), 0);
        // Only the primary serviced anything.
        let primary = sim.node::<ServerGateway>(primary_node.unwrap()).unwrap();
        assert_eq!(primary.serviced(), 10, "primary-only traffic");
    }

    #[test]
    fn primary_crash_triggers_failover_and_resend() {
        // Zero-latency network (see above): replica 0 is the primary.
        let mut sim = Simulation::new(72);
        let coordinator = sim.add_node(GroupCoordinator::<AquaMsg>::new(
            FailureDetectorConfig::default(),
        ));
        for i in 0..3u64 {
            let mut cfg = ServerConfig::paper(ReplicaId::new(i), coordinator);
            // Slow service so the crash catches requests in flight.
            cfg.service = ServiceTimeModel::Deterministic(ms(400));
            if i == 0 {
                cfg.crash = CrashPlan::AtTime(Instant::from_secs(3));
            }
            sim.add_node(ServerGateway::new(cfg));
        }
        let mut ccfg =
            PassiveClientConfig::paper(coordinator, QosSpec::new(ms(2_000), 0.9).unwrap());
        ccfg.num_requests = 15;
        ccfg.think_time = ms(100);
        ccfg.give_up_after = Duration::from_secs(4);
        let client = sim.add_node(PassiveClientGateway::new(ccfg));
        sim.run_until(Instant::from_secs(60));

        let gw = sim.node::<PassiveClientGateway>(client).unwrap();
        assert!(gw.is_finished(), "{gw:?}");
        assert_eq!(gw.failovers(), 1, "one primary crash, one failover");
        // Some request was resent after the failover…
        let resent: Vec<_> = gw.records().iter().filter(|r| r.redundancy > 1).collect();
        assert!(!resent.is_empty(), "in-flight request was retransmitted");
        // …and its latency includes the detection + failover gap, far
        // above the nominal 400 ms service.
        let max_latency = resent
            .iter()
            .filter_map(|r| r.response_time)
            .max()
            .expect("resent request eventually answered");
        assert!(
            max_latency > ms(500),
            "failover costs detection latency: {max_latency}"
        );
        // All requests were eventually served (no budget exceeded).
        assert!(gw.records().iter().all(|r| r.first_reply_at.is_some()));
    }
}
