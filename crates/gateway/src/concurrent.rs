//! The concurrent timing fault handler: lock-free planning over published
//! snapshots plus a sharded write path.
//!
//! [`crate::TimingFaultHandler`] is deliberately single-threaded — the
//! socket runtime used to wrap it in one big mutex, which serialized
//! *everything*: Algorithm 1, reply classification, repository updates,
//! and the pending-request table. [`ConcurrentHandler`] splits those
//! responsibilities so concurrent callers never meet on a lock:
//!
//! * **Planning** reads an immutable [`PlanningView`] published through a
//!   [`SnapshotCell`]: per-replica cumulative response-time tables plus
//!   warm/probation flags. `plan_request` runs Algorithm 1 entirely on the
//!   caller's thread against that view — no lock is held while the model
//!   is evaluated. Strategies that cannot be evaluated from a snapshot
//!   (stateful baselines) fall back to a small strategy mutex.
//! * **Reply ingestion** is sharded by replica: piggybacked perf reports
//!   and gateway-delay measurements update only the owning shard's
//!   repository. A publisher merges the shards and republishes the
//!   planning view off the hot path, debounced so a burst of replies
//!   costs one rebuild (freshness stays bounded by the sliding window
//!   *l* of §5.2 — see DESIGN.md §12 for the equivalence argument).
//! * **The pending-request table** is sharded by sequence number. Sibling
//!   attempts of one logical request (retries) share an atomic `answered`
//!   flag, so first-reply delivery, duplicate classification, give-up,
//!   and retry re-planning race safely: exactly one of deliver/give-up
//!   wins the flag, and the loser reclassifies itself.
//!
//! The publish-vs-plan and reply-vs-retry protocols are model-checked by
//! `aqua-lint`'s bounded interleaving checker (`interleave.rs`).

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use aqua_core::aqua;
use aqua_core::failure::{TimingFailureDetector, TimingVerdict};
use aqua_core::model::{ModelCacheStats, ModelConfig, ResponseTimeModel};
use aqua_core::pmf::ConvScratch;
use aqua_core::qos::{QosSpec, ReplicaId};
use aqua_core::repository::{InfoRepository, MethodId, PerfReport};
use aqua_core::scheduler::ColdStartPolicy;
use aqua_core::select::{select_replicas_tolerating, Candidate};
use aqua_core::snapshot::{method_slot, PlanningView, ReplicaSnapshot, SnapshotCell};
use aqua_core::time::{Duration, Instant};
use aqua_obs::contention::LockContention;
use aqua_strategies::{SelectionInput, SelectionStrategy, SnapshotPlanSpec};
use parking_lot::Mutex;

use crate::obs::{HandlerObserver, PlanObservation};
use crate::timing::{HandlerStats, ReplyOutcome, RequestPlan};

/// Number of pending-table shards (sequence numbers hash across them).
const PENDING_SHARDS: usize = 16;
/// Number of reply-ingestion shards (replicas hash across them).
const INGEST_SHARDS: usize = 16;
/// Default minimum interval between snapshot republishes. A burst of
/// replies inside the interval is coalesced into one rebuild; the
/// planning view is therefore at most this much behind the shards.
const DEFAULT_MIN_REPUBLISH: Duration = Duration::from_micros(500);

/// One attempt awaiting replies. Sibling attempts of the same logical
/// request share `answered` and `group`, which is what makes delivery,
/// give-up, and retry registration race-safe (see module docs).
#[derive(Debug, Clone)]
struct PendingEntry {
    /// `t0` of the *logical* request (retries inherit the original).
    intercepted_at: Instant,
    /// `t1` of this attempt.
    sent_at: Instant,
    /// Group-wide "a first reply was delivered (or the request was given
    /// up)" flag; exactly one CAS ever wins it.
    answered: Arc<AtomicBool>,
    /// Every attempt seq of the logical request, the original first. A
    /// retry registers itself here *before* inserting its entry, so the
    /// winner's retire pass can never miss it entirely.
    group: Arc<Mutex<Vec<u64>>>,
}

/// Lifetime counters, updated with relaxed atomics from any thread.
#[derive(Debug, Default)]
struct AtomicStats {
    requests: AtomicU64,
    replicas_selected: AtomicU64,
    delivered: AtomicU64,
    redundant: AtomicU64,
    gave_up: AtomicU64,
    callbacks: AtomicU64,
    retries: AtomicU64,
    abandoned: AtomicU64,
}

impl AtomicStats {
    fn snapshot(&self) -> HandlerStats {
        HandlerStats {
            requests: self.requests.load(Ordering::Relaxed),
            replicas_selected: self.replicas_selected.load(Ordering::Relaxed),
            delivered: self.delivered.load(Ordering::Relaxed),
            redundant: self.redundant.load(Ordering::Relaxed),
            gave_up: self.gave_up.load(Ordering::Relaxed),
            callbacks: self.callbacks.load(Ordering::Relaxed),
            probes: 0,
            retries: self.retries.load(Ordering::Relaxed),
            abandoned: self.abandoned.load(Ordering::Relaxed),
        }
    }
}

/// How plans are produced.
enum PlannerMode {
    /// The strategy is a pure function of the response-time distributions:
    /// evaluate Algorithm 1 against the published snapshot, lock-free.
    Snapshot {
        spec: SnapshotPlanSpec,
        model: ResponseTimeModel,
    },
    /// Opaque or stateful strategy: serialize calls through a mutex (the
    /// repository it reads is still the immutable published view).
    Strategy(Mutex<Box<dyn SelectionStrategy>>),
}

/// Group membership bookkeeping (view changes, rejoin detection).
#[derive(Debug, Default)]
struct Membership {
    /// Current members.
    present: BTreeSet<ReplicaId>,
    /// Every replica ever seen — a present-again member that left before
    /// is a *rejoin* and starts on probation.
    seen: BTreeSet<ReplicaId>,
}

/// Publisher-only state, serialized by the publish mutex.
struct PublishState {
    scratch: ConvScratch,
    /// Model used to build snapshot tables when the strategy itself is
    /// not snapshot-plannable (the tables are then unused by planning but
    /// keep the published repository view warm for facade reads).
    fallback_model: ResponseTimeModel,
}

/// Observer state (the observer's hooks take `&mut self`).
struct ObsState {
    observer: HandlerObserver,
    cache_seen: ModelCacheStats,
}

/// A timing fault handler shareable across threads: `&self` everywhere,
/// no global lock. See the module docs for the architecture.
pub struct ConcurrentHandler {
    /// Canonical QoS spec, read by publishers at rebuild time; planners
    /// read the copy published inside the [`PlanningView`] instead.
    qos: Mutex<QosSpec>,
    window: usize,
    strategy_name: &'static str,
    planner: PlannerMode,
    snapshot: SnapshotCell,
    publish: Mutex<PublishState>,
    /// Set by ingestion when shard state moved past the published view.
    dirty: AtomicBool,
    /// `Instant::as_nanos` of the last publish, for the debounce check.
    last_publish_ns: AtomicU64,
    min_republish: Duration,
    ingest: Vec<Mutex<InfoRepository>>,
    membership: Mutex<Membership>,
    pending: Vec<Mutex<HashMap<u64, PendingEntry>>>,
    next_seq: AtomicU64,
    /// Most recent δ (§5.3.3) in nanoseconds, read by the next plan.
    last_overhead_ns: AtomicU64,
    detector: Mutex<TimingFailureDetector>,
    stats: AtomicStats,
    obs: Option<Mutex<ObsState>>,
    client_id: Option<u64>,
    pending_contention: LockContention,
    ingest_contention: LockContention,
    publish_contention: LockContention,
}

impl std::fmt::Debug for ConcurrentHandler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcurrentHandler")
            .field("qos", &*self.qos.lock())
            .field("strategy", &self.strategy_name)
            .field("version", &self.snapshot.version())
            .field("stats", &self.stats.snapshot())
            .finish()
    }
}

impl ConcurrentHandler {
    /// Creates a handler with sliding window `l` and the given strategy.
    ///
    /// Strategies that expose a [`SnapshotPlanSpec`] (the paper's
    /// model-based selection) are planned lock-free from the published
    /// snapshot; others go through a strategy mutex.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(qos: QosSpec, window: usize, strategy: Box<dyn SelectionStrategy>) -> Self {
        let strategy_name = strategy.name();
        let planner = match strategy.snapshot_spec() {
            Some(spec) => PlannerMode::Snapshot {
                spec,
                model: ResponseTimeModel::new(spec.model),
            },
            None => PlannerMode::Strategy(Mutex::new(strategy)),
        };
        let fallback_model = ResponseTimeModel::new(ModelConfig::default());
        ConcurrentHandler {
            qos: Mutex::new(qos),
            window,
            strategy_name,
            planner,
            snapshot: SnapshotCell::new(PlanningView::empty(window, qos)),
            publish: Mutex::new(PublishState {
                scratch: ConvScratch::new(),
                fallback_model,
            }),
            dirty: AtomicBool::new(false),
            last_publish_ns: AtomicU64::new(0),
            min_republish: DEFAULT_MIN_REPUBLISH,
            ingest: (0..INGEST_SHARDS)
                .map(|_| Mutex::new(InfoRepository::new(window)))
                .collect(),
            membership: Mutex::new(Membership::default()),
            pending: (0..PENDING_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            next_seq: AtomicU64::new(0),
            last_overhead_ns: AtomicU64::new(0),
            detector: Mutex::new(TimingFailureDetector::new(qos)),
            stats: AtomicStats::default(),
            obs: None,
            client_id: None,
            pending_contention: LockContention::detached(),
            ingest_contention: LockContention::detached(),
            publish_contention: LockContention::detached(),
        }
    }

    /// Overrides the republish debounce interval (tests, benchmarks).
    #[must_use]
    pub fn with_min_republish(mut self, interval: Duration) -> Self {
        self.min_republish = interval;
        self
    }

    /// Attaches an observability sink (must happen before the handler is
    /// shared). Also registers the lock-contention counters
    /// `aqua_lock_wait_ns_total{lock=…}` for the shard and publish locks.
    pub fn attach_obs(&mut self, obs: &aqua_obs::Obs, client: Option<u64>) {
        self.obs = Some(Mutex::new(ObsState {
            observer: HandlerObserver::new(obs, client),
            cache_seen: ModelCacheStats::default(),
        }));
        self.client_id = client;
        self.pending_contention = LockContention::new(obs.registry(), "pending-shard");
        self.ingest_contention = LockContention::new(obs.registry(), "ingest-shard");
        self.publish_contention = LockContention::new(obs.registry(), "publish");
    }

    /// The QoS specification in force.
    pub fn qos(&self) -> QosSpec {
        *self.qos.lock()
    }

    /// Renegotiates the QoS spec (§5.4.2): the detector starts a clean
    /// history under the new deadline, and the planning snapshot is
    /// republished immediately so in-flight planners switch over at their
    /// next pointer load.
    pub fn renegotiate(&self, now: Instant, qos: QosSpec) {
        *self.qos.lock() = qos;
        self.detector.lock().renegotiate(qos);
        self.maybe_publish(now, true);
    }

    /// The active strategy's name.
    pub fn strategy_name(&self) -> &'static str {
        self.strategy_name
    }

    /// A point-in-time copy of the merged information repository (the
    /// facade tests and reporting read; planning uses the published view).
    pub fn repository(&self) -> InfoRepository {
        self.merged_repository()
    }

    /// A point-in-time copy of the timing-failure detector.
    pub fn detector(&self) -> TimingFailureDetector {
        self.detector.lock().clone()
    }

    /// Aggregate counters.
    pub fn stats(&self) -> HandlerStats {
        self.stats.snapshot()
    }

    /// The currently published planning view.
    pub fn planning_view(&self) -> Arc<PlanningView> {
        self.snapshot.load()
    }

    /// Attempts currently awaiting a first reply.
    pub fn pending_count(&self) -> usize {
        self.pending
            .iter()
            .map(|shard| {
                let shard = self.pending_contention.acquire(|| shard.lock());
                shard
                    .values()
                    .filter(|p| !p.answered.load(Ordering::Acquire))
                    .count()
            })
            .sum()
    }

    /// Emits every span still held by the observer and flushes the
    /// journal. No-op without an attached observer.
    pub fn flush_observability(&self) {
        if let Some(obs) = &self.obs {
            obs.lock().observer.flush();
        }
    }

    /// Installs the run's fault timeline on the observer so every emitted
    /// span is tagged with the stable ids of overlapping fault windows.
    /// No-op without an attached observer.
    pub fn set_fault_windows(&self, windows: Vec<aqua_faults::FaultWindow>) {
        if let Some(obs) = &self.obs {
            obs.lock().observer.set_fault_windows(windows);
        }
    }

    /// Runs `f` against the attached observer (watchdog reconfiguration,
    /// alert hooks). Returns `None` without an attached observer.
    pub fn with_observer<T>(&self, f: impl FnOnce(&mut HandlerObserver) -> T) -> Option<T> {
        self.obs.as_ref().map(|obs| f(&mut obs.lock().observer))
    }

    // -- membership ---------------------------------------------------------

    /// Registers a replica (connect time / service discovery).
    pub fn insert_replica(&self, now: Instant, id: ReplicaId) -> bool {
        {
            let mut membership = self.membership.lock();
            membership.present.insert(id);
            membership.seen.insert(id);
        }
        let inserted = {
            let mut repo = self.ingest_shard(id).lock();
            repo.insert_replica(id)
        };
        self.maybe_publish(now, true);
        inserted
    }

    /// Marks `replica` as rejoined after an outage: it re-enters the
    /// repository **on probation**, shadowing selections until `l` fresh
    /// samples arrive.
    pub fn on_rejoin(&self, now: Instant, replica: ReplicaId) {
        let fresh = {
            let mut membership = self.membership.lock();
            membership.seen.insert(replica);
            membership.present.insert(replica)
        };
        if !fresh {
            return;
        }
        {
            let mut repo = self.ingest_shard(replica).lock();
            repo.insert_replica(replica);
            repo.set_probation(replica, self.window as u32);
        }
        self.observe_probation(replica, true, now);
        self.maybe_publish(now, true);
    }

    /// Installs a new membership view; departed replicas are dropped, and
    /// previously-seen members that reappear start on probation (§5.4).
    pub fn on_view<I: IntoIterator<Item = ReplicaId>>(&self, now: Instant, servers: I) {
        let servers: Vec<ReplicaId> = servers.into_iter().collect();
        let (departed, rejoining) = {
            let mut membership = self.membership.lock();
            let rejoining: Vec<ReplicaId> = servers
                .iter()
                .filter(|id| membership.seen.contains(id) && !membership.present.contains(id))
                .copied()
                .collect();
            let departed: Vec<ReplicaId> = membership
                .present
                .iter()
                .filter(|id| !servers.contains(id))
                .copied()
                .collect();
            membership.present = servers.iter().copied().collect();
            membership.seen.extend(servers.iter().copied());
            (departed, rejoining)
        };
        for id in departed {
            let mut repo = self.ingest_shard(id).lock();
            repo.remove_replica(id);
        }
        for id in &servers {
            let mut repo = self.ingest_shard(*id).lock();
            repo.insert_replica(*id);
        }
        for id in rejoining {
            {
                let mut repo = self.ingest_shard(id).lock();
                repo.set_probation(id, self.window as u32);
            }
            self.observe_probation(id, true, now);
        }
        self.maybe_publish(now, true);
    }

    // -- ingestion ----------------------------------------------------------

    /// Processes a pushed performance update from a subscriber channel.
    pub fn on_perf_update(&self, now: Instant, replica: ReplicaId, perf: PerfReport) {
        self.ingest(now, replica, Some(perf), None);
    }

    /// Records into the replica's shard; emits the probation-cleared event
    /// when the sample completes a fresh window; marks the view dirty.
    fn ingest(
        &self,
        now: Instant,
        replica: ReplicaId,
        perf: Option<PerfReport>,
        delay: Option<Duration>,
    ) {
        let cleared = {
            let mut repo = self
                .ingest_contention
                .acquire(|| self.ingest_shard(replica).lock());
            if !repo.contains(replica) {
                // Unknown replica (departed mid-flight): drop the sample,
                // exactly like the serialized repository does.
                return;
            }
            let was_on_probation = repo.stats(replica).is_some_and(|s| s.is_on_probation());
            if let Some(report) = perf {
                repo.record_perf(replica, report, now);
            }
            if let Some(td) = delay {
                repo.record_gateway_delay(replica, td, now);
            }
            was_on_probation && repo.stats(replica).is_some_and(|s| !s.is_on_probation())
        };
        if cleared {
            self.observe_probation(replica, false, now);
        }
        self.dirty.store(true, Ordering::Release);
        self.maybe_publish(now, false);
    }

    // -- publishing ---------------------------------------------------------

    /// Rebuilds and publishes the planning view if it is stale (or
    /// `force`d by a membership change). Debounced: at most one publish
    /// per [`ConcurrentHandler::with_min_republish`] interval, so a burst
    /// of replies costs one rebuild.
    fn maybe_publish(&self, now: Instant, force: bool) {
        if !force {
            if !self.dirty.load(Ordering::Acquire) {
                return;
            }
            let last = self.last_publish_ns.load(Ordering::Relaxed);
            if now.as_nanos().saturating_sub(last) < self.min_republish.as_nanos() {
                return;
            }
        }
        let mut state = self.publish_contention.acquire(|| self.publish.lock());
        if !force && !self.dirty.load(Ordering::Acquire) {
            // A queued publisher already covered this batch of updates.
            return;
        }
        self.dirty.store(false, Ordering::Release);
        let last = self.last_publish_ns.load(Ordering::Relaxed);
        // aqua-lint: allow(atomics-ordering) debounce timestamp only; the snapshot is published via the version-guarded cell, a stale read costs one extra rebuild
        self.last_publish_ns
            .store(now.as_nanos().max(last), Ordering::Relaxed);

        let current = self.snapshot.load();
        let merged = self.merged_repository();
        let PublishState {
            scratch,
            fallback_model,
        } = &mut *state;
        let model = match &self.planner {
            PlannerMode::Snapshot { model, .. } => model,
            PlannerMode::Strategy(_) => &*fallback_model,
        };
        let mut snaps: Vec<Arc<ReplicaSnapshot>> = Vec::with_capacity(merged.len());
        for (id, stats) in merged.iter() {
            let reused = current
                .replicas()
                .binary_search_by_key(&id, |r| r.id())
                .ok()
                .map(|i| &current.replicas()[i])
                .filter(|snap| snap.is_current(stats))
                .map(Arc::clone);
            snaps.push(match reused {
                Some(snap) => snap,
                None => Arc::new(ReplicaSnapshot::build(id, stats, model, scratch)),
            });
        }
        let view =
            PlanningView::assemble(current.version() + 1, snaps, Arc::new(merged), self.qos());
        self.snapshot.publish(Arc::new(view));
    }

    /// Clones every present replica's stats out of its shard (one shard
    /// lock at a time) into one repository.
    fn merged_repository(&self) -> InfoRepository {
        let present: Vec<ReplicaId> = {
            let membership = self.membership.lock();
            membership.present.iter().copied().collect()
        };
        let mut merged = InfoRepository::new(self.window);
        for id in present {
            let stats = {
                let repo = self.ingest_shard(id).lock();
                repo.stats(id).cloned()
            };
            if let Some(stats) = stats {
                merged.insert_stats(id, stats);
            }
        }
        merged
    }

    // -- planning -----------------------------------------------------------

    /// Intercepts a client request at `now` (= `t0` = `t1`) and selects
    /// the replica subset, lock-free when the strategy allows it.
    pub fn plan_request(&self, now: Instant) -> RequestPlan {
        self.plan_request_for(now, None)
    }

    /// Like [`ConcurrentHandler::plan_request`] with a method id.
    pub fn plan_request_for(&self, now: Instant, method: Option<MethodId>) -> RequestPlan {
        let (seq, replicas) = self
            .plan_with(now, method, now, None, &[])
            .expect("initial selections always produce a plan");
        let entry = PendingEntry {
            intercepted_at: now,
            sent_at: now,
            answered: Arc::new(AtomicBool::new(false)),
            group: Arc::new(Mutex::new(vec![seq])),
        };
        {
            let mut shard = self
                .pending_contention
                .acquire(|| self.pending_shard(seq).lock());
            shard.insert(seq, entry);
        }
        RequestPlan { seq, replicas }
    }

    /// Plans a deadline-driven retry of attempt `retry_of`: Algorithm 1
    /// re-runs over the remaining replicas and the new attempt joins the
    /// original's group. Returns `None` when no replica is left to ask or
    /// the logical request already resolved.
    pub fn plan_retry(
        &self,
        now: Instant,
        method: Option<MethodId>,
        t0: Instant,
        retry_of: u64,
        exclude: &[ReplicaId],
    ) -> Option<RequestPlan> {
        let origin = {
            let shard = self
                .pending_contention
                .acquire(|| self.pending_shard(retry_of).lock());
            shard.get(&retry_of).cloned()
        }?;
        if origin.answered.load(Ordering::Acquire) {
            return None;
        }
        let (seq, replicas) = self.plan_with(now, method, t0, Some(retry_of), exclude)?;
        // Join the group *before* inserting the entry: the delivery path
        // snapshots the group and retires every member it finds, so a
        // concurrent winner either sees our seq (and retires the entry
        // once we insert it — or misses it and we self-retire below) or
        // has not delivered yet, in which case the flag check below is
        // still false and the attempt proceeds normally.
        {
            let mut group = origin.group.lock();
            group.push(seq);
        }
        let entry = PendingEntry {
            intercepted_at: t0,
            sent_at: now,
            answered: Arc::clone(&origin.answered),
            group: Arc::clone(&origin.group),
        };
        {
            let mut shard = self
                .pending_contention
                .acquire(|| self.pending_shard(seq).lock());
            shard.insert(seq, entry);
        }
        if origin.answered.load(Ordering::Acquire) {
            // The sibling resolved while we were registering. The winner's
            // retire pass may have run before our insert; retire ourselves
            // (idempotent — at most one of the two removals succeeds).
            self.retire_attempt(now, seq);
            return None;
        }
        Some(RequestPlan { seq, replicas })
    }

    /// Shared planning core: runs the selection (snapshot or strategy
    /// mode), appends probation shadows, updates stats and the observer.
    fn plan_with(
        &self,
        now: Instant,
        method: Option<MethodId>,
        _t0: Instant,
        retry_of: Option<u64>,
        exclude: &[ReplicaId],
    ) -> Option<(u64, Arc<[ReplicaId]>)> {
        let started = std::time::Instant::now();
        let view = self.snapshot.load();
        let (mut replicas, predicted, cache_totals) = match &self.planner {
            PlannerMode::Snapshot { spec, .. } => {
                let (selected, predicted) = self.plan_from_snapshot(&view, spec, method, exclude);
                (selected, predicted, None)
            }
            PlannerMode::Strategy(strategy) => {
                let mut strategy = strategy.lock();
                let selected = strategy.select(&SelectionInput {
                    repository: view.repository(),
                    qos: &view.qos(),
                    method,
                    now,
                    exclude,
                });
                // Strategies that model per-replica success expose this
                // plan's predictions; baselines return an empty slice.
                let predictions = strategy.last_predictions();
                let predicted: Vec<f64> = selected
                    .iter()
                    .map(|r| predictions.iter().find(|(id, _)| id == r).map(|(_, p)| *p))
                    .collect::<Option<Vec<f64>>>()
                    .unwrap_or_default();
                (selected, predicted, strategy.cache_stats())
            }
        };
        if retry_of.is_some() && replicas.is_empty() {
            return None;
        }
        // Probation members ride along as shadow traffic (§5.2): never
        // trusted candidates, but their replies rebuild the fresh window.
        for snap in view.replicas() {
            let id = snap.id();
            if !snap.is_selectable() && !replicas.contains(&id) && !exclude.contains(&id) {
                replicas.push(id);
            }
        }
        let overhead_nanos = started.elapsed().as_nanos() as u64;
        // aqua-lint: allow(atomics-ordering) standalone overhead gauge; readers tolerate staleness and no other data is published under it
        self.last_overhead_ns
            .store(overhead_nanos, Ordering::Relaxed);
        let replicas: Arc<[ReplicaId]> = replicas.into();
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        if retry_of.is_none() {
            self.stats.requests.fetch_add(1, Ordering::Relaxed);
        } else {
            self.stats.retries.fetch_add(1, Ordering::Relaxed);
        }
        self.stats
            .replicas_selected
            .fetch_add(replicas.len() as u64, Ordering::Relaxed);
        if let Some(obs) = &self.obs {
            let mut obs = obs.lock();
            obs.observer.on_plan(PlanObservation {
                seq,
                method: method.unwrap_or_default().index(),
                client: self.client_id,
                now_nanos: now.as_nanos(),
                deadline_nanos: view.qos().deadline().as_nanos(),
                promised: view.qos().min_probability(),
                selected: &replicas,
                predicted: &predicted,
                view_version: Some(view.version()),
                probe: false,
                overhead_nanos: Some(overhead_nanos),
                retry_of,
            });
            if let Some(totals) = cache_totals {
                let seen = obs.cache_seen;
                obs.observer.on_model_cache(
                    totals.hits - seen.hits,
                    totals.misses - seen.misses,
                    totals.invalidations - seen.invalidations,
                );
                obs.cache_seen = totals;
            }
        }
        Some((seq, replicas))
    }

    /// Algorithm 1 over the published snapshot: evaluate `F_Ri(t − δ)`
    /// from the memoized tables, then run the crash-tolerant subset
    /// selection. Runs entirely on the caller's thread. Returns the
    /// selection plus each chosen replica's predicted `P(meet deadline)`
    /// (empty on a cold-start multicast, which has no model to consult).
    #[aqua::hot_path]
    fn plan_from_snapshot(
        &self,
        view: &PlanningView,
        spec: &SnapshotPlanSpec,
        method: Option<MethodId>,
        exclude: &[ReplicaId],
    ) -> (Vec<ReplicaId>, Vec<f64>) {
        let deadline = view.qos().deadline().saturating_sub(Duration::from_nanos(
            self.last_overhead_ns.load(Ordering::Relaxed),
        ));
        let slot = method_slot(spec.model.method_scope, method);
        // aqua-lint: allow(no-alloc-in-select) the candidate list is the function's output; one exact-size reservation, no per-replica reallocation
        let mut candidates = Vec::with_capacity(view.replicas().len());
        for snap in view.replicas() {
            let id = snap.id();
            if !snap.is_selectable() || exclude.contains(&id) {
                continue;
            }
            match snap.probability_by(slot, deadline) {
                Some(p) => candidates.push(Candidate::new(id, p)),
                None => match spec.cold_start {
                    ColdStartPolicy::SelectAll => {
                        // Cold start (§5.4.1): multicast to every
                        // selectable member in one round.
                        let everyone = view
                            .replicas()
                            .iter()
                            .filter(|s| s.is_selectable() && !exclude.contains(&s.id()))
                            .map(|s| s.id())
                            .collect();
                        // aqua-lint: allow(no-alloc-in-select) Vec::new is allocation-free; a cold-start multicast has no predictions to report
                        return (everyone, Vec::new());
                    }
                    ColdStartPolicy::Optimistic(p) => {
                        candidates.push(Candidate::new(id, p.clamp(0.0, 1.0)));
                    }
                },
            }
        }
        let chosen =
            select_replicas_tolerating(&candidates, view.qos().min_probability(), spec.crashes)
                .into_replicas();
        let predicted = chosen
            .iter()
            .map(|id| {
                candidates
                    .iter()
                    .find(|c| c.id == *id)
                    .map_or(0.0, |c| c.probability)
            })
            .collect();
        (chosen, predicted)
    }

    // -- replies ------------------------------------------------------------

    /// Processes a reply that arrived at `now` (= `t4`) from `replica`
    /// for attempt `seq`, carrying piggybacked perf data. Lock scope: one
    /// pending-shard lookup, one ingest-shard update, and (on a first
    /// reply) the detector and the sibling retire pass — never the
    /// planning path.
    pub fn on_reply(
        &self,
        now: Instant,
        seq: u64,
        replica: ReplicaId,
        perf: PerfReport,
    ) -> ReplyOutcome {
        let entry = {
            let shard = self
                .pending_contention
                .acquire(|| self.pending_shard(seq).lock());
            shard.get(&seq).cloned()
        };
        let Some(entry) = entry else {
            // Expired request: still mine the perf data (no td — the
            // attempt's t1 is gone).
            self.ingest(now, replica, Some(perf), None);
            return ReplyOutcome::Unknown;
        };

        // td = t4 − t1 − tq − ts (§5.4.1), clamped at zero.
        let in_flight = now.saturating_duration_since(entry.sent_at);
        let td = in_flight
            .saturating_sub(perf.queuing_delay)
            .saturating_sub(perf.service_time);
        // Exactly one reply (or the give-up timer) wins the group flag.
        let first = entry
            .answered
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok();
        // Ingest-shard handling cost, recorded on the span as `ingest_ns`
        // so forensics can separate wire delay from ingest stalls.
        let ingest_started = std::time::Instant::now();
        self.ingest(now, replica, Some(perf), Some(td));
        let ingest_nanos = ingest_started.elapsed().as_nanos() as u64;

        if first {
            let response_time = now.saturating_duration_since(entry.intercepted_at);
            let verdict = {
                let mut detector = self.detector.lock();
                detector.record(response_time)
            };
            self.stats.delivered.fetch_add(1, Ordering::Relaxed);
            if verdict.should_notify() {
                self.stats.callbacks.fetch_add(1, Ordering::Relaxed);
            }
            self.observe_reply(
                seq,
                replica,
                now,
                &perf,
                td,
                in_flight,
                ingest_nanos,
                true,
                Some(verdict),
            );
            self.retire_siblings(now, &entry, seq);
            ReplyOutcome::Deliver {
                response_time,
                verdict,
            }
        } else {
            self.stats.redundant.fetch_add(1, Ordering::Relaxed);
            self.observe_reply(
                seq,
                replica,
                now,
                &perf,
                td,
                in_flight,
                ingest_nanos,
                false,
                None,
            );
            self.retire_old_entries(seq);
            ReplyOutcome::Redundant
        }
    }

    /// Retires every sibling attempt of `winner` (their entries go away;
    /// the winner's stays, flagged answered, so late duplicates classify
    /// as redundant rather than unknown).
    fn retire_siblings(&self, now: Instant, entry: &PendingEntry, winner: u64) {
        let siblings: Vec<u64> = {
            let group = entry.group.lock();
            group.clone()
        };
        for seq in siblings {
            if seq != winner {
                self.retire_attempt(now, seq);
            }
        }
    }

    /// Removes one attempt's entry; counts and journals the abandonment
    /// iff this call actually removed it (races are idempotent).
    fn retire_attempt(&self, now: Instant, seq: u64) -> bool {
        let removed = {
            let mut shard = self
                .pending_contention
                .acquire(|| self.pending_shard(seq).lock());
            shard.remove(&seq).is_some()
        };
        if removed {
            self.stats.abandoned.fetch_add(1, Ordering::Relaxed);
            if let Some(obs) = &self.obs {
                obs.lock().observer.on_abandon(seq, now.as_nanos());
            }
        }
        removed
    }

    /// Bounded cleanup of answered entries, run on the redundant-reply
    /// path for the shard the reply hashed to.
    fn retire_old_entries(&self, seq: u64) {
        let next = self.next_seq.load(Ordering::Relaxed);
        if next > 1024 {
            let cutoff = next - 1024;
            let mut shard = self
                .pending_contention
                .acquire(|| self.pending_shard(seq).lock());
            shard.retain(|s, p| *s >= cutoff || !p.answered.load(Ordering::Relaxed));
        }
    }

    /// Retires attempt `seq` because a sibling resolved the logical
    /// request. Returns `true` if the attempt was still open.
    pub fn on_abandon(&self, now: Instant, seq: u64) -> bool {
        let entry = {
            let shard = self
                .pending_contention
                .acquire(|| self.pending_shard(seq).lock());
            shard.get(&seq).cloned()
        };
        let Some(entry) = entry else {
            return false;
        };
        if entry.answered.load(Ordering::Acquire) {
            return false;
        }
        self.retire_attempt(now, seq)
    }

    /// Finalizes a request that never received any reply, at `now`. Wins
    /// or loses the group's answered flag against a concurrent first
    /// reply — returns `false` when the reply got there first (the caller
    /// should then drain its delivery channel instead of failing the
    /// call).
    pub fn on_give_up(&self, now: Instant, seq: u64) -> bool {
        let entry = {
            let shard = self
                .pending_contention
                .acquire(|| self.pending_shard(seq).lock());
            shard.get(&seq).cloned()
        };
        let Some(entry) = entry else {
            return false;
        };
        if entry
            .answered
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return false;
        }
        {
            let mut shard = self
                .pending_contention
                .acquire(|| self.pending_shard(seq).lock());
            shard.remove(&seq);
        }
        self.stats.gave_up.fetch_add(1, Ordering::Relaxed);
        // An unbounded response time: record as "missed by a lot".
        let deadline = self.qos.lock().deadline();
        let verdict = {
            let mut detector = self.detector.lock();
            detector.record(deadline.saturating_mul(1_000))
        };
        if verdict.should_notify() {
            self.stats.callbacks.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(obs) = &self.obs {
            obs.lock().observer.on_give_up(
                seq,
                false,
                Some(verdict),
                verdict.should_notify(),
                now.as_nanos(),
            );
        }
        true
    }

    // -- helpers ------------------------------------------------------------

    fn pending_shard(&self, seq: u64) -> &Mutex<HashMap<u64, PendingEntry>> {
        &self.pending[(seq as usize) % PENDING_SHARDS]
    }

    fn ingest_shard(&self, id: ReplicaId) -> &Mutex<InfoRepository> {
        &self.ingest[(id.index() as usize) % INGEST_SHARDS]
    }

    fn observe_probation(&self, replica: ReplicaId, started: bool, now: Instant) {
        if let Some(obs) = &self.obs {
            obs.lock()
                .observer
                .on_probation(replica, started, now.as_nanos());
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn observe_reply(
        &self,
        seq: u64,
        replica: ReplicaId,
        now: Instant,
        perf: &PerfReport,
        td: Duration,
        in_flight: Duration,
        ingest_nanos: u64,
        first: bool,
        verdict: Option<TimingVerdict>,
    ) {
        if let Some(obs) = &self.obs {
            obs.lock().observer.on_reply(
                seq,
                replica,
                now.as_nanos(),
                perf.service_time.as_nanos(),
                perf.queuing_delay.as_nanos(),
                td.as_nanos(),
                in_flight.as_nanos(),
                Some(ingest_nanos),
                first,
                false,
                verdict,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::TimingFaultHandler;
    use aqua_strategies::{FastestMean, ModelBased};

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn handler(pc: f64) -> ConcurrentHandler {
        let qos = QosSpec::new(ms(200), pc).unwrap();
        ConcurrentHandler::new(qos, 5, Box::new(ModelBased::default()))
            .with_min_republish(Duration::ZERO)
    }

    /// Inserts `ids` and fills their windows with per-replica service
    /// times via the reply/perf-update path, mirroring the serialized
    /// handler tests.
    fn warm(h: &ConcurrentHandler, ids: &[u64], service_ms: u64) {
        let mut at = Instant::EPOCH;
        for i in ids {
            h.insert_replica(at, ReplicaId::new(*i));
        }
        for _ in 0..5 {
            at += ms(1);
            for i in ids {
                let r = ReplicaId::new(*i);
                h.on_perf_update(at, r, PerfReport::new(ms(service_ms + *i * 10), ms(0), 0));
                h.ingest(at, r, None, Some(ms(1)));
            }
        }
        // One more tick so the (zero-interval) debounce publishes the tail.
        h.ingest(at + ms(1), ReplicaId::new(ids[0]), None, Some(ms(1)));
    }

    #[test]
    fn cold_start_multicasts_to_all() {
        let h = handler(0.9);
        for i in 0..3 {
            h.insert_replica(Instant::EPOCH, ReplicaId::new(i));
        }
        let plan = h.plan_request(Instant::EPOCH);
        assert_eq!(plan.replicas.len(), 3, "cold start selects everyone");
        assert_eq!(h.stats().requests, 1);
    }

    #[test]
    fn warm_snapshot_plan_matches_serialized_handler() {
        let h = handler(0.9);
        warm(&h, &[0, 1, 2], 20);
        let plan = h.plan_request(Instant::from_millis(100));

        // Serialized reference: same repository content, same QoS.
        let qos = QosSpec::new(ms(200), 0.9).unwrap();
        let mut reference = TimingFaultHandler::new(qos, 5, Box::new(ModelBased::default()));
        *reference.repository_mut() = h.repository();
        let expected = reference.plan_request(Instant::from_millis(100));

        assert_eq!(plan.replicas.as_ref(), expected.replicas.as_ref());
        assert!(plan.replicas.len() < 3, "warm plans are selective");
    }

    #[test]
    fn first_reply_delivers_then_duplicates_are_redundant() {
        let h = handler(0.9);
        warm(&h, &[0, 1], 20);
        let t0 = Instant::from_millis(100);
        let plan = h.plan_request(t0);
        let r = plan.replicas[0];
        let t4 = t0 + ms(30);
        match h.on_reply(t4, plan.seq, r, PerfReport::new(ms(20), ms(0), 0)) {
            ReplyOutcome::Deliver {
                response_time,
                verdict,
            } => {
                assert_eq!(response_time, ms(30));
                assert!(verdict.is_timely());
            }
            other => panic!("expected delivery, got {other:?}"),
        }
        let again = h.on_reply(t4 + ms(5), plan.seq, r, PerfReport::new(ms(20), ms(0), 0));
        assert_eq!(again, ReplyOutcome::Redundant);
        let stats = h.stats();
        assert_eq!((stats.delivered, stats.redundant), (1, 1));
        assert_eq!(h.pending_count(), 0);
    }

    #[test]
    fn unknown_seq_still_mines_perf_data() {
        let h = handler(0.9);
        h.insert_replica(Instant::EPOCH, ReplicaId::new(0));
        let samples = |h: &ConcurrentHandler| {
            h.repository()
                .stats(ReplicaId::new(0))
                .and_then(|s| s.history(MethodId::DEFAULT).map(|m| m.len()))
                .unwrap_or(0)
        };
        let before = samples(&h);
        let out = h.on_reply(
            Instant::from_millis(50),
            999,
            ReplicaId::new(0),
            PerfReport::new(ms(10), ms(0), 0),
        );
        assert_eq!(out, ReplyOutcome::Unknown);
        assert_eq!(samples(&h), before + 1);
    }

    #[test]
    fn retry_joins_group_and_delivery_retires_the_loser() {
        let h = handler(0.9);
        warm(&h, &[0, 1, 2], 20);
        let t0 = Instant::from_millis(100);
        let plan = h.plan_request(t0);
        let retry = h
            .plan_retry(t0 + ms(150), None, t0, plan.seq, &plan.replicas)
            .expect("replicas remain for the retry");
        for r in retry.replicas.iter() {
            assert!(
                !plan.replicas.contains(r),
                "retry must exclude the original selection"
            );
        }
        // The retry's replica answers first: its attempt delivers, the
        // original is retired as superseded.
        let out = h.on_reply(
            t0 + ms(170),
            retry.seq,
            retry.replicas[0],
            PerfReport::new(ms(20), ms(0), 0),
        );
        assert!(matches!(out, ReplyOutcome::Deliver { .. }));
        let late = h.on_reply(
            t0 + ms(180),
            plan.seq,
            plan.replicas[0],
            PerfReport::new(ms(20), ms(0), 0),
        );
        assert_eq!(late, ReplyOutcome::Unknown, "retired attempt is gone");
        let stats = h.stats();
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.abandoned, 1);
        assert_eq!(stats.delivered, 1);
        assert_eq!(h.pending_count(), 0);
    }

    #[test]
    fn retry_after_resolution_returns_none() {
        let h = handler(0.9);
        warm(&h, &[0, 1, 2], 20);
        let t0 = Instant::from_millis(100);
        let plan = h.plan_request(t0);
        h.on_reply(
            t0 + ms(25),
            plan.seq,
            plan.replicas[0],
            PerfReport::new(ms(20), ms(0), 0),
        );
        assert!(h
            .plan_retry(t0 + ms(150), None, t0, plan.seq, &plan.replicas)
            .is_none());
    }

    #[test]
    fn give_up_and_reply_race_has_one_winner() {
        let h = handler(0.9);
        warm(&h, &[0, 1], 20);
        let t0 = Instant::from_millis(100);

        // Give-up first: the late reply degrades to Unknown.
        let plan = h.plan_request(t0);
        assert!(h.on_give_up(t0 + ms(300), plan.seq));
        assert!(
            !h.on_give_up(t0 + ms(301), plan.seq),
            "second give-up is a no-op"
        );
        let late = h.on_reply(
            t0 + ms(400),
            plan.seq,
            plan.replicas[0],
            PerfReport::new(ms(20), ms(0), 0),
        );
        assert_eq!(late, ReplyOutcome::Unknown);

        // Reply first: the give-up loses and reports so.
        let plan2 = h.plan_request(t0 + ms(500));
        let out = h.on_reply(
            t0 + ms(520),
            plan2.seq,
            plan2.replicas[0],
            PerfReport::new(ms(20), ms(0), 0),
        );
        assert!(matches!(out, ReplyOutcome::Deliver { .. }));
        assert!(
            !h.on_give_up(t0 + ms(900), plan2.seq),
            "delivered request cannot fail"
        );
        let stats = h.stats();
        assert_eq!((stats.gave_up, stats.delivered), (1, 1));
        assert_eq!(h.detector().failures(), 1);
    }

    #[test]
    fn rejoined_replica_shadows_as_probation_member() {
        let h = handler(0.9);
        warm(&h, &[0, 1], 20);
        h.on_view(Instant::from_millis(200), [ReplicaId::new(0)]);
        assert!(!h.repository().contains(ReplicaId::new(1)));
        // r1 comes back: rejoin ⇒ probation ⇒ shadow traffic, never a
        // trusted candidate.
        h.on_rejoin(Instant::from_millis(300), ReplicaId::new(1));
        assert!(h
            .repository()
            .stats(ReplicaId::new(1))
            .unwrap()
            .is_on_probation());
        let plan = h.plan_request(Instant::from_millis(301));
        assert_eq!(
            plan.replicas.last(),
            Some(&ReplicaId::new(1)),
            "probation members are appended last"
        );
        assert_eq!(h.pending_count(), 1);
    }

    #[test]
    fn debounce_coalesces_publishes() {
        let qos = QosSpec::new(ms(200), 0.9).unwrap();
        let h = ConcurrentHandler::new(qos, 5, Box::new(ModelBased::default()))
            .with_min_republish(ms(10));
        h.insert_replica(Instant::EPOCH, ReplicaId::new(0));
        let v0 = h.planning_view().version();
        // A burst of updates inside the debounce window: no republish.
        for k in 1..5u64 {
            h.on_perf_update(
                Instant::from_millis(k),
                ReplicaId::new(0),
                PerfReport::new(ms(20), ms(0), 0),
            );
        }
        assert_eq!(h.planning_view().version(), v0);
        // Past the window: one publish covers the whole burst.
        h.on_perf_update(
            Instant::from_millis(30),
            ReplicaId::new(0),
            PerfReport::new(ms(20), ms(0), 0),
        );
        assert_eq!(h.planning_view().version(), v0 + 1);
        assert_eq!(
            h.planning_view()
                .repository()
                .stats(ReplicaId::new(0))
                .and_then(|s| s.history(MethodId::DEFAULT).map(|m| m.len()))
                .unwrap_or(0),
            5,
            "the coalesced publish carries every sample"
        );
    }

    #[test]
    fn strategy_mode_plans_through_the_published_view() {
        let qos = QosSpec::new(ms(200), 0.9).unwrap();
        let h = ConcurrentHandler::new(qos, 5, Box::new(FastestMean { k: 1 }))
            .with_min_republish(Duration::ZERO);
        assert_eq!(h.strategy_name(), "fastest-mean");
        warm(&h, &[0, 1], 20);
        let plan = h.plan_request(Instant::from_millis(100));
        assert_eq!(
            plan.replicas.as_ref(),
            &[ReplicaId::new(0)],
            "fastest-mean picks the fastest replica from the snapshot"
        );
    }

    #[test]
    fn concurrent_plans_and_replies_share_the_handler() {
        let h = Arc::new(handler(0.9));
        warm(&h, &[0, 1, 2], 20);
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for k in 0..50u64 {
                        let now = Instant::from_millis(1_000 + t * 100 + k);
                        let plan = h.plan_request(now);
                        assert!(!plan.replicas.is_empty());
                        let out = h.on_reply(
                            now + ms(20),
                            plan.seq,
                            plan.replicas[0],
                            PerfReport::new(ms(20), ms(0), 0),
                        );
                        assert!(matches!(out, ReplyOutcome::Deliver { .. }));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let stats = h.stats();
        assert_eq!(stats.requests, 200);
        assert_eq!(stats.delivered, 200);
        assert_eq!(h.pending_count(), 0);
    }
}
