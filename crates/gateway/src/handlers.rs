//! The other AQuA gateway handlers (§2): active and passive replication.
//!
//! Prior AQuA work tolerated crash failures with an **active** handler
//! (every replica processes every request; first reply wins) and a
//! **passive** handler (a primary services requests; backups take over on
//! failure). Here they serve as baselines that bracket the timing fault
//! handler: the active handler is maximum redundancy, the passive handler
//! is minimum redundancy plus failover latency.

use std::collections::HashMap;

use aqua_core::qos::ReplicaId;
use aqua_core::time::Instant;
use aqua_strategies::AllReplicas;

/// The active-replication handler is exactly the [`AllReplicas`] strategy
/// behind the timing fault handler's machinery: multicast to everyone,
/// deliver the first reply.
///
/// Construct a client with it via
/// [`crate::ClientGateway::new`]`(config, Box::new(active_strategy()))`.
pub fn active_strategy() -> AllReplicas {
    AllReplicas
}

/// A request the passive handler has sent to the current primary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassivePending {
    /// When the request was (last) sent.
    pub sent_at: Instant,
    /// How many times it has been (re)sent.
    pub attempts: u32,
}

/// What the passive handler wants the caller to do after a view change.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FailoverAction {
    /// The new primary, if one exists.
    pub new_primary: Option<ReplicaId>,
    /// Outstanding request sequence numbers to resend to the new primary.
    pub resend: Vec<u64>,
}

/// Client-side passive-replication handler logic (sans-IO).
///
/// # Examples
///
/// ```
/// use aqua_gateway::PassiveHandler;
/// use aqua_core::qos::ReplicaId;
/// use aqua_core::time::Instant;
///
/// let mut h = PassiveHandler::new();
/// h.on_view([ReplicaId::new(0), ReplicaId::new(1)]);
/// let (seq, primary) = h.plan_request(Instant::EPOCH).unwrap();
/// assert_eq!(primary, ReplicaId::new(0));
///
/// // Primary crashes before replying: fail over and resend.
/// let action = h.on_view([ReplicaId::new(1)]);
/// assert_eq!(action.new_primary, Some(ReplicaId::new(1)));
/// assert_eq!(action.resend, vec![seq]);
/// ```
#[derive(Debug, Default)]
pub struct PassiveHandler {
    members: Vec<ReplicaId>,
    pending: HashMap<u64, PassivePending>,
    next_seq: u64,
    failovers: u64,
}

impl PassiveHandler {
    /// Creates an empty handler; call [`PassiveHandler::on_view`] before
    /// planning requests.
    pub fn new() -> Self {
        PassiveHandler::default()
    }

    /// The current primary: the first member of the view, mirroring how
    /// AQuA's passive scheme promotes the senior backup.
    pub fn primary(&self) -> Option<ReplicaId> {
        self.members.first().copied()
    }

    /// Number of failovers performed.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// Outstanding (unanswered) requests.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Installs a view. If the primary changed while requests were
    /// outstanding, returns the resend instructions.
    pub fn on_view<I: IntoIterator<Item = ReplicaId>>(&mut self, servers: I) -> FailoverAction {
        let old_primary = self.primary();
        self.members = servers.into_iter().collect();
        let new_primary = self.primary();
        // No failover when the primary is unchanged, when there was no
        // primary before, or when nobody is left to fail over to.
        if new_primary == old_primary || old_primary.is_none() || new_primary.is_none() {
            return FailoverAction {
                new_primary,
                resend: Vec::new(),
            };
        }
        self.failovers += 1;
        let mut resend: Vec<u64> = self.pending.keys().copied().collect();
        resend.sort_unstable();
        FailoverAction {
            new_primary,
            resend,
        }
    }

    /// Plans a request: returns its sequence number and the primary to send
    /// it to, or `None` when no replica is available.
    pub fn plan_request(&mut self, now: Instant) -> Option<(u64, ReplicaId)> {
        let primary = self.primary()?;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.insert(
            seq,
            PassivePending {
                sent_at: now,
                attempts: 1,
            },
        );
        Some((seq, primary))
    }

    /// Marks a resend (after failover) for bookkeeping.
    pub fn mark_resent(&mut self, seq: u64, now: Instant) {
        if let Some(p) = self.pending.get_mut(&seq) {
            p.sent_at = now;
            p.attempts += 1;
        }
    }

    /// Records a reply; returns `true` if the request was outstanding (the
    /// reply should be delivered) and `false` for duplicates.
    pub fn on_reply(&mut self, seq: u64) -> bool {
        self.pending.remove(&seq).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u64) -> ReplicaId {
        ReplicaId::new(i)
    }

    #[test]
    fn primary_is_first_member() {
        let mut h = PassiveHandler::new();
        assert_eq!(h.primary(), None);
        assert!(h.plan_request(Instant::EPOCH).is_none());
        h.on_view([r(3), r(5)]);
        assert_eq!(h.primary(), Some(r(3)));
    }

    #[test]
    fn replies_clear_pending() {
        let mut h = PassiveHandler::new();
        h.on_view([r(0)]);
        let (seq, _) = h.plan_request(Instant::EPOCH).unwrap();
        assert_eq!(h.pending_count(), 1);
        assert!(h.on_reply(seq));
        assert!(!h.on_reply(seq), "duplicate reply is not re-delivered");
        assert_eq!(h.pending_count(), 0);
    }

    #[test]
    fn failover_resends_outstanding_in_order() {
        let mut h = PassiveHandler::new();
        h.on_view([r(0), r(1), r(2)]);
        let (s1, p1) = h.plan_request(Instant::EPOCH).unwrap();
        let (s2, _) = h.plan_request(Instant::EPOCH).unwrap();
        assert_eq!(p1, r(0));
        let action = h.on_view([r(1), r(2)]);
        assert_eq!(action.new_primary, Some(r(1)));
        assert_eq!(action.resend, vec![s1, s2]);
        assert_eq!(h.failovers(), 1);
        h.mark_resent(s1, Instant::from_millis(5));
        h.mark_resent(s2, Instant::from_millis(5));
        assert!(h.on_reply(s1));
    }

    #[test]
    fn unchanged_primary_resends_nothing() {
        let mut h = PassiveHandler::new();
        h.on_view([r(0), r(1)]);
        let _ = h.plan_request(Instant::EPOCH);
        // Backup crashes: primary unchanged.
        let action = h.on_view([r(0)]);
        assert_eq!(action.new_primary, Some(r(0)));
        assert!(action.resend.is_empty());
        assert_eq!(h.failovers(), 0);
    }

    #[test]
    fn total_loss_leaves_no_primary() {
        let mut h = PassiveHandler::new();
        h.on_view([r(0)]);
        let _ = h.plan_request(Instant::EPOCH);
        let action = h.on_view([]);
        assert_eq!(action.new_primary, None);
        assert!(
            action.resend.is_empty(),
            "nothing to resend with nobody to send to"
        );
        assert!(h.plan_request(Instant::EPOCH).is_none());
    }

    #[test]
    fn active_strategy_is_all_replicas() {
        use aqua_strategies::SelectionStrategy;
        assert_eq!(active_strategy().name(), "all-replicas");
    }
}
