//! The elastic supervisor's policy engine.
//!
//! Pure decision logic, no simulator or transport types: the
//! [`crate::DependabilityManager`] (sim) and the socket runtime's driver
//! feed observations in — QoS-calibration alerts from the clients'
//! watchdogs, queue depths from the replicas' piggybacked perf updates —
//! and periodically ask [`SupervisorPolicy::tick`] for actions. Three
//! loops close here:
//!
//! * **Load-adaptive replication** — Poloczek & Ciucu ("Contrasting
//!   Effects of Replication in Parallel Systems") show replication helps
//!   under underload and actively hurts under overload, so the policy
//!   lowers the effective replication target toward `min_replication`
//!   while fleet queues stay deep (every extra copy of a request is more
//!   queued work) and raises it back toward `max_replication` when the
//!   fleet runs idle.
//! * **Replica lifecycle** — a replica whose per-replica calibration
//!   stays degraded (the model keeps vouching for it, reality keeps
//!   disagreeing) is quarantined for a rolling restart; it rejoins
//!   through the clients' probation machinery.
//! * **Escalation ladder** — when several replicas degrade inside one
//!   correlation window the failure is not individual, and restarting
//!   replicas one by one just thins the fleet. The policy escalates to a
//!   fleet-level action instead: the manager renegotiates `Pc` downward
//!   and tells clients to shed load.
//!
//! Every tie-break (which sick replica to quarantine first) is derived
//! from the experiment seed, so a chaos scenario replays bit-identically.

use std::collections::BTreeMap;

use aqua_core::time::{Duration, Instant};

/// Tunables for [`SupervisorPolicy`].
#[derive(Clone, Copy, Debug)]
pub struct SupervisorConfig {
    /// Lower bound on the effective replication target.
    pub min_replication: usize,
    /// Upper bound on the effective replication target.
    pub max_replication: usize,
    /// Fleet-mean smoothed queue depth at or above which the fleet is
    /// overloaded (replication backs off).
    pub overload_queue: f64,
    /// Fleet-mean smoothed queue depth at or below which the fleet is
    /// underloaded (replication expands).
    pub underload_queue: f64,
    /// EWMA smoothing factor for per-replica queue depths in `(0, 1]`;
    /// higher weighs fresh samples more.
    pub queue_smoothing: f64,
    /// Replica-scoped calibration alerts inside `sick_window` before a
    /// replica is quarantined.
    pub sick_alerts: u32,
    /// How far back replica alerts count toward quarantine.
    pub sick_window: Duration,
    /// Distinct degrading replicas inside `correlated_window` that turn
    /// per-replica restarts into a fleet-level escalation.
    pub correlated_count: usize,
    /// The correlation window for escalation.
    pub correlated_window: Duration,
    /// Minimum time between consecutive target changes, and between
    /// consecutive quarantines (rolling restarts are rolling).
    pub decision_interval: Duration,
    /// Minimum time between fleet-level escalations.
    pub escalation_cooldown: Duration,
    /// The experiment seed; every tie-break is a pure function of it.
    pub seed: u64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            min_replication: 1,
            max_replication: 4,
            overload_queue: 4.0,
            underload_queue: 1.0,
            queue_smoothing: 0.2,
            sick_alerts: 2,
            sick_window: Duration::from_secs(30),
            correlated_count: 3,
            correlated_window: Duration::from_secs(10),
            decision_interval: Duration::from_secs(5),
            escalation_cooldown: Duration::from_secs(60),
            seed: 0,
        }
    }
}

/// One decision out of [`SupervisorPolicy::tick`], in actuation order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SupervisorAction {
    /// The effective replication target moved. The actuator tops up from
    /// the standby pool on a raise and drains surplus replicas back to
    /// standby on a lower.
    SetTarget {
        /// The new effective target, within `[min, max]`.
        target: usize,
        /// Why it moved (`"overload"` / `"underload"`), for the journal.
        reason: &'static str,
    },
    /// Quarantine one sick replica: drain it, roll it, let probation
    /// readmit it.
    Quarantine {
        /// The replica to drain.
        replica: u64,
    },
    /// Correlated degradation: act on the fleet, not the member.
    Escalate {
        /// Every replica degrading inside the correlation window.
        degraded: Vec<u64>,
    },
}

/// Per-replica observation state.
#[derive(Clone, Debug, Default)]
struct ReplicaSignals {
    /// Smoothed queue depth from perf updates.
    queue_ewma: Option<f64>,
    /// Timestamps of recent replica-scoped calibration alerts.
    alerts: Vec<Instant>,
}

/// The supervisor's decision engine. See the module docs.
#[derive(Clone, Debug)]
pub struct SupervisorPolicy {
    config: SupervisorConfig,
    target: usize,
    replicas: BTreeMap<u64, ReplicaSignals>,
    /// Timestamps of recent set-scoped (whole-selection) alerts.
    set_alerts: Vec<Instant>,
    last_target_change: Option<Instant>,
    last_quarantine: Option<Instant>,
    last_escalation: Option<Instant>,
}

/// The instant `window` before `now`, clamped at the epoch.
fn cutoff(now: Instant, window: Duration) -> Instant {
    Instant::from_nanos(now.as_nanos().saturating_sub(window.as_nanos()))
}

/// SplitMix64 avalanche used for seeded tie-breaks (shared with the
/// manager's surplus-drain ordering).
pub(crate) fn mix(seed: u64, value: u64) -> u64 {
    let mut x = seed ^ value.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl SupervisorPolicy {
    /// A policy starting at `initial_target` replicas (clamped to the
    /// configured bounds).
    pub fn new(initial_target: usize, config: SupervisorConfig) -> Self {
        let target = initial_target.clamp(config.min_replication, config.max_replication);
        SupervisorPolicy {
            config,
            target,
            replicas: BTreeMap::new(),
            set_alerts: Vec::new(),
            last_target_change: None,
            last_quarantine: None,
            last_escalation: None,
        }
    }

    /// The current effective replication target.
    pub fn target(&self) -> usize {
        self.target
    }

    /// The active tunables.
    pub fn config(&self) -> &SupervisorConfig {
        &self.config
    }

    /// Feeds one calibration alert: `replica` is the sick member for
    /// replica-scoped alerts, `None` for set-scoped (whole-selection)
    /// drift.
    pub fn on_alert(&mut self, now: Instant, replica: Option<u64>) {
        match replica {
            Some(r) => self.replicas.entry(r).or_default().alerts.push(now),
            None => self.set_alerts.push(now),
        }
    }

    /// Feeds one queue-depth observation from a replica's piggybacked
    /// perf update.
    pub fn on_queue_sample(&mut self, replica: u64, queue_len: u32) {
        let alpha = self.config.queue_smoothing.clamp(1e-3, 1.0);
        let signals = self.replicas.entry(replica).or_default();
        let q = f64::from(queue_len);
        signals.queue_ewma = Some(match signals.queue_ewma {
            Some(prev) => prev + alpha * (q - prev),
            None => q,
        });
    }

    /// Forgets a replica's signal history (it left the fleet — drained,
    /// crashed, or evicted). A rejoin starts clean.
    pub fn forget(&mut self, replica: u64) {
        self.replicas.remove(&replica);
    }

    /// Mean smoothed queue depth over `live`, when enough of the fleet
    /// has reported.
    fn fleet_queue(&self, live: &[u64]) -> Option<f64> {
        let depths: Vec<f64> = live
            .iter()
            .filter_map(|r| self.replicas.get(r).and_then(|s| s.queue_ewma))
            .collect();
        // Half-fleet coverage guards against deciding off one noisy host.
        if depths.is_empty() || depths.len() * 2 < live.len() {
            return None;
        }
        Some(depths.iter().sum::<f64>() / depths.len() as f64)
    }

    fn expire(&mut self, now: Instant) {
        let sick_cutoff = cutoff(now, self.config.sick_window);
        for signals in self.replicas.values_mut() {
            signals.alerts.retain(|t| *t >= sick_cutoff);
        }
        let set_cutoff = cutoff(now, self.config.correlated_window);
        self.set_alerts.retain(|t| *t >= set_cutoff);
    }

    /// Runs one decision round against the live fleet (replica ids
    /// currently in the view). Returns actions in actuation order; the
    /// policy assumes the actuator carries every one of them out.
    pub fn tick(&mut self, now: Instant, live: &[u64]) -> Vec<SupervisorAction> {
        self.expire(now);
        let mut actions = Vec::new();
        let correlated_cutoff = cutoff(now, self.config.correlated_window);

        // 1. Correlated degradation first: if the fault is fleet-wide,
        //    restarting members one by one just thins the fleet.
        let degraded: Vec<u64> = self
            .replicas
            .iter()
            .filter(|(_, s)| s.alerts.iter().any(|t| *t >= correlated_cutoff))
            .map(|(r, _)| *r)
            .collect();
        let escalation_due = self
            .last_escalation
            .is_none_or(|t| now.saturating_duration_since(t) >= self.config.escalation_cooldown);
        if degraded.len() >= self.config.correlated_count.max(1) && escalation_due {
            self.last_escalation = Some(now);
            // The alerts are consumed by the escalation: the same burst
            // must not also trigger per-replica quarantines.
            for signals in self.replicas.values_mut() {
                signals.alerts.clear();
            }
            actions.push(SupervisorAction::Escalate { degraded });
            return actions;
        }

        // 2. Sick-replica quarantine, at most one per decision interval
        //    (rolling restarts are rolling), never below min live.
        let quarantine_due = self
            .last_quarantine
            .is_none_or(|t| now.saturating_duration_since(t) >= self.config.decision_interval);
        if quarantine_due && live.len() > self.config.min_replication {
            let mut sick: Vec<u64> = self
                .replicas
                .iter()
                .filter(|(r, s)| {
                    live.contains(r) && s.alerts.len() >= self.config.sick_alerts as usize
                })
                .map(|(r, _)| *r)
                .collect();
            // Seeded tie-break: which sick replica restarts first is a
            // pure function of the experiment seed, so seeded chaos runs
            // replay bit-identically.
            sick.sort_by_key(|r| (mix(self.config.seed, *r), *r));
            if let Some(victim) = sick.first().copied() {
                self.last_quarantine = Some(now);
                self.replicas.remove(&victim);
                actions.push(SupervisorAction::Quarantine { replica: victim });
            }
        }

        // 3. Load adaptation, one step per decision interval.
        let change_due = self
            .last_target_change
            .is_none_or(|t| now.saturating_duration_since(t) >= self.config.decision_interval);
        if change_due {
            let fleet_queue = self.fleet_queue(live);
            let overloaded = fleet_queue.is_some_and(|q| q >= self.config.overload_queue);
            let set_drifting = self.set_alerts.iter().any(|t| *t >= correlated_cutoff);
            let underloaded =
                fleet_queue.is_some_and(|q| q <= self.config.underload_queue) && !set_drifting;
            let proposed = if overloaded {
                self.target.saturating_sub(1)
            } else if underloaded {
                self.target + 1
            } else {
                self.target
            };
            let proposed = proposed.clamp(self.config.min_replication, self.config.max_replication);
            if proposed != self.target {
                self.target = proposed;
                self.last_target_change = Some(now);
                actions.push(SupervisorAction::SetTarget {
                    target: proposed,
                    reason: if overloaded { "overload" } else { "underload" },
                });
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(v: u64) -> Instant {
        Instant::from_secs(v)
    }

    fn config() -> SupervisorConfig {
        SupervisorConfig {
            min_replication: 2,
            max_replication: 5,
            seed: 7,
            ..SupervisorConfig::default()
        }
    }

    #[test]
    fn overload_shrinks_the_target_to_the_floor() {
        let mut p = SupervisorPolicy::new(4, config());
        let live = [0, 1, 2, 3];
        let mut shrinks = Vec::new();
        for t in 0..60 {
            for r in &live {
                p.on_queue_sample(*r, 12);
            }
            for a in p.tick(secs(t), &live) {
                if let SupervisorAction::SetTarget { target, reason } = a {
                    assert_eq!(reason, "overload");
                    shrinks.push(target);
                }
            }
        }
        assert_eq!(shrinks, vec![3, 2], "one step per interval, floored");
        assert_eq!(p.target(), 2);
    }

    #[test]
    fn underload_grows_the_target_to_the_ceiling() {
        let mut p = SupervisorPolicy::new(3, config());
        let live = [0, 1, 2];
        let mut grows = Vec::new();
        for t in 0..60 {
            for r in &live {
                p.on_queue_sample(*r, 0);
            }
            for a in p.tick(secs(t), &live) {
                if let SupervisorAction::SetTarget { target, reason } = a {
                    assert_eq!(reason, "underload");
                    grows.push(target);
                }
            }
        }
        assert_eq!(grows, vec![4, 5]);
        assert_eq!(p.target(), 5);
    }

    #[test]
    fn no_decision_without_fleet_coverage() {
        let mut p = SupervisorPolicy::new(4, config());
        // Only one of four replicas ever reports: too thin to act on.
        p.on_queue_sample(0, 50);
        assert!(p.tick(secs(10), &[0, 1, 2, 3]).is_empty());
    }

    #[test]
    fn sick_replica_is_quarantined_after_repeated_alerts() {
        let mut p = SupervisorPolicy::new(3, config());
        let live = [0, 1, 2];
        p.on_alert(secs(1), Some(1));
        assert!(p.tick(secs(2), &live).is_empty(), "one alert is noise");
        p.on_alert(secs(3), Some(1));
        let actions = p.tick(secs(4), &live);
        assert_eq!(actions, vec![SupervisorAction::Quarantine { replica: 1 }]);
        // History cleared: no immediate second quarantine of the same one.
        assert!(p.tick(secs(20), &live).is_empty());
    }

    #[test]
    fn quarantine_never_drops_live_below_the_floor() {
        let mut p = SupervisorPolicy::new(2, config());
        p.on_alert(secs(1), Some(0));
        p.on_alert(secs(2), Some(0));
        assert!(
            p.tick(secs(3), &[0, 1]).is_empty(),
            "two live at min 2: hold"
        );
        assert_eq!(
            p.tick(secs(3), &[0, 1, 2]),
            vec![SupervisorAction::Quarantine { replica: 0 }]
        );
    }

    #[test]
    fn quarantine_order_is_a_pure_function_of_the_seed() {
        // Two sick replicas: below the correlation threshold, so the
        // policy restarts one of them — the tie-break under test.
        let pick_first = |seed: u64| {
            let mut p = SupervisorPolicy::new(3, SupervisorConfig { seed, ..config() });
            for r in 0..2 {
                p.on_alert(secs(1), Some(r));
                p.on_alert(secs(2), Some(r));
            }
            match p.tick(secs(3), &[0, 1, 2, 3]).first() {
                Some(SupervisorAction::Quarantine { replica }) => *replica,
                other => panic!("expected quarantine, got {other:?}"),
            }
        };
        // Same seed twice → same victim (bit-identical replay)…
        assert_eq!(pick_first(7), pick_first(7));
        // …and across seeds the choice varies (it is not just "lowest id").
        let picks: std::collections::BTreeSet<u64> = (0..16).map(pick_first).collect();
        assert!(picks.len() > 1, "seed actually enters the tie-break");
    }

    #[test]
    fn correlated_degradation_escalates_instead_of_restarting() {
        let mut p = SupervisorPolicy::new(4, config());
        let live = [0, 1, 2, 3];
        for r in 0..3 {
            p.on_alert(secs(5), Some(r));
            p.on_alert(secs(6), Some(r));
        }
        let actions = p.tick(secs(7), &live);
        assert_eq!(
            actions,
            vec![SupervisorAction::Escalate {
                degraded: vec![0, 1, 2]
            }],
            "fleet-level action, no per-replica quarantine"
        );
        // Cooldown: the same burst does not re-escalate.
        p.on_alert(secs(8), Some(0));
        p.on_alert(secs(8), Some(1));
        p.on_alert(secs(8), Some(2));
        let again = p.tick(secs(9), &live);
        assert!(
            !again
                .iter()
                .any(|a| matches!(a, SupervisorAction::Escalate { .. })),
            "{again:?}"
        );
    }

    #[test]
    fn stale_alerts_expire_out_of_the_windows() {
        let mut p = SupervisorPolicy::new(3, config());
        p.on_alert(secs(1), Some(2));
        p.on_alert(secs(2), Some(2));
        // 40 s later both alerts fell out of the 30 s sick window.
        assert!(p.tick(secs(42), &[0, 1, 2]).is_empty());
    }
}
