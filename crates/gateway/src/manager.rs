//! The Proteus dependability manager (§2), grown into an elastic
//! supervisor.
//!
//! "The Proteus dependability manager manages the replication level for
//! different applications based on their dependability requirements." The
//! baseline duty is unchanged: watch the group view, and whenever the
//! number of live server replicas drops below the target, activate
//! replicas from a standby pool (processes that are running but have not
//! joined the service group).
//!
//! With [`ManagerConfig::supervision`] set, the manager additionally runs
//! the [`SupervisorPolicy`] loops:
//!
//! * **Load-adaptive replication** — the effective target moves inside
//!   `[min, max]`: down under overload (every extra copy of a request is
//!   more queued work — Poloczek & Ciucu), up under underload. Surplus
//!   replicas are drained back into the standby pool, deficits are topped
//!   up from it.
//! * **Rolling restarts** — a replica whose per-replica calibration stays
//!   degraded is drained (graceful group leave; queued work completes),
//!   rested for [`SupervisionConfig::restart_delay`], and returned to the
//!   pool; clients readmit a rejoining replica through probation.
//! * **Escalation** — when enough replicas degrade inside one correlation
//!   window the manager stops restarting members and acts on the fleet:
//!   it journals an `escalation` event and multicasts a
//!   [`AquaMsg::Directive`] telling clients to renegotiate `Pc` downward
//!   and shed load.
//!
//! The manager observes the fleet through the same channels the paper's
//! gateways use: it subscribes to every replica's piggybacked
//! [`AquaMsg::PerfUpdate`]s (queue depths) and receives
//! [`AquaMsg::AlertReport`]s forwarded by the clients' QoS-calibration
//! watchdogs. Every supervisor-initiated drain is journalled as a `fault`
//! window (kind `drain`, ids offset by [`DRAIN_WINDOW_BASE`]) so the
//! forensics analyzer attributes any miss it causes to
//! `supervisor_drain`, not to an environmental fault.

use std::collections::{BTreeMap, BTreeSet};

use aqua_core::qos::ReplicaId;
use aqua_core::time::{Duration, Instant};
use aqua_group::{FailureDetectorConfig, GroupMsg, Member, MembershipAgent};
use aqua_obs::json::JsonValue;
use aqua_obs::Obs;
use lan_sim::{Context, Event, Node, NodeId};

use crate::proto::{AquaMsg, Wire};
use crate::supervisor::{mix, SupervisorAction, SupervisorConfig, SupervisorPolicy};

/// Journal window ids for supervisor-initiated drains start here, far
/// above any fault plan's indices, so the two id spaces never collide.
pub const DRAIN_WINDOW_BASE: u64 = 1_000_000;

/// Elastic-supervision tunables layered on top of [`ManagerConfig`].
#[derive(Clone, Copy, Debug)]
pub struct SupervisionConfig {
    /// The decision engine's tunables (bounds, thresholds, seed).
    pub policy: SupervisorConfig,
    /// Rest period between a drained replica leaving the view and its
    /// node returning to the standby pool. Long enough for the drained
    /// process to finish stragglers and go dormant, so a subsequent
    /// `Activate` cannot race the tail of the drain.
    pub restart_delay: Duration,
    /// The `Pc` clients renegotiate down to when correlated degradation
    /// escalates to a fleet-level action.
    pub escalate_pc: f64,
    /// How long clients shed load after an escalation.
    pub shed_for: Duration,
}

impl Default for SupervisionConfig {
    fn default() -> Self {
        SupervisionConfig {
            policy: SupervisorConfig::default(),
            restart_delay: Duration::from_millis(500),
            escalate_pc: 0.8,
            shed_for: Duration::from_secs(2),
        }
    }
}

/// Configuration of the dependability manager.
#[derive(Debug, Clone)]
pub struct ManagerConfig {
    /// The group coordinator node.
    pub coordinator: NodeId,
    /// Group cadence parameters.
    pub group: FailureDetectorConfig,
    /// Desired number of live server replicas (the initial effective
    /// target when supervision is on).
    pub target_replication: usize,
    /// Standby server nodes (spawned with `standby: true`) that can be
    /// activated, in activation order.
    pub standbys: Vec<NodeId>,
    /// How often to re-check the replication level (besides reacting to
    /// every view change).
    pub check_interval: Duration,
    /// Do not enforce during this long after start: views installed while
    /// the group is still forming under-count the servers (their joins are
    /// in flight), and acting on them would activate standbys spuriously.
    pub startup_grace: Duration,
    /// Elastic supervision; `None` keeps the fixed-target baseline.
    pub supervision: Option<SupervisionConfig>,
}

/// One supervisor-initiated drain in flight.
#[derive(Debug, Clone, Copy)]
struct DrainRecord {
    node: NodeId,
    replica: u64,
    /// Journal window id (`DRAIN_WINDOW_BASE + seq`).
    window: u64,
    started: Instant,
    /// When the drained replica disappeared from the view (its graceful
    /// leave was installed); `None` while it is still finishing work.
    left: Option<Instant>,
}

/// The dependability manager node. See the module docs.
pub struct DependabilityManager {
    config: ManagerConfig,
    agent: Option<MembershipAgent>,
    enforce_after: Option<Instant>,
    /// Standby nodes available for activation, in activation order.
    /// Drained replicas return here once their rest period elapses.
    pool: Vec<NodeId>,
    /// Activated standbys that have not appeared in a view yet, with the
    /// time of the last `Activate` poke — re-sent while the join is
    /// outstanding, since the network may drop the command.
    pending_joins: BTreeMap<NodeId, Instant>,
    /// Supervisor-initiated drains in flight.
    draining: Vec<DrainRecord>,
    /// Server nodes we hold a perf-update subscription on.
    subscribed: BTreeSet<NodeId>,
    policy: Option<SupervisorPolicy>,
    obs: Option<Obs>,
    activations: u64,
    drains: u64,
    escalations: u64,
    /// Rate-limits `standby_pool_exhausted` to one event per episode.
    exhaustion_reported: bool,
}

impl std::fmt::Debug for DependabilityManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DependabilityManager")
            .field("target", &self.target())
            .field("activations", &self.activations)
            .field("drains", &self.drains)
            .field("standbys_left", &self.pool.len())
            .finish()
    }
}

impl DependabilityManager {
    /// Creates a manager from its configuration.
    pub fn new(config: ManagerConfig) -> Self {
        let pool = config.standbys.clone();
        let policy = config
            .supervision
            .map(|s| SupervisorPolicy::new(config.target_replication, s.policy));
        DependabilityManager {
            config,
            agent: None,
            enforce_after: None,
            pool,
            pending_joins: BTreeMap::new(),
            draining: Vec::new(),
            subscribed: BTreeSet::new(),
            policy,
            obs: None,
            activations: 0,
            drains: 0,
            escalations: 0,
            exhaustion_reported: false,
        }
    }

    /// Attaches an observability bundle: supervisor decisions, drain
    /// windows, escalations, and pool exhaustion get journalled and
    /// counted through it.
    pub fn with_obs(mut self, obs: &Obs) -> Self {
        self.obs = Some(obs.clone());
        self
    }

    /// Standby activations performed so far.
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// Supervisor-initiated drains (rolling restarts + target shrinks).
    pub fn drains(&self) -> u64 {
        self.drains
    }

    /// Fleet-level escalations raised so far.
    pub fn escalations(&self) -> u64 {
        self.escalations
    }

    /// Standbys currently available for activation.
    pub fn standbys_remaining(&self) -> usize {
        self.pool.len()
    }

    /// The effective replication target (moved by the supervisor when
    /// supervision is on, the configured constant otherwise).
    pub fn target(&self) -> usize {
        self.policy
            .as_ref()
            .map_or(self.config.target_replication, SupervisorPolicy::target)
    }

    fn emit_event(&self, kind: &str, fields: aqua_obs::json::JsonObject) {
        if let Some(obs) = &self.obs {
            obs.journal().emit_event(kind, fields);
        }
    }

    fn count(&self, name: &str, labels: &[(&str, &str)]) {
        if let Some(obs) = &self.obs {
            obs.registry().counter(name, labels).inc();
        }
    }

    /// Emits one edge of a supervisor drain window. The shape mirrors the
    /// fault injector's journal lines so the forensics analyzer joins the
    /// window by stable id and recognizes `kind: "drain"`.
    fn emit_drain_edge(&self, rec: &DrainRecord, phase: &str, at: Instant) {
        self.emit_event(
            "fault",
            JsonValue::object()
                .field("phase", phase)
                .field("kind", "drain")
                .field("fault", rec.window)
                .field("window", rec.window)
                .field("at_ns", at.as_nanos())
                .field("start_ns", rec.started.as_nanos())
                .field("replica", rec.replica),
        );
    }

    fn enforce_replication(&mut self, ctx: &mut Context<'_, Wire>) {
        let Some(agent) = self.agent.as_ref() else {
            return;
        };
        // Never act before the first view arrives (an empty membership
        // snapshot is indistinguishable from "everything crashed") or
        // while the group is still forming.
        if agent.view().id == 0 || self.enforce_after.is_none_or(|t| ctx.now() < t) {
            return;
        }
        let view = agent.view();
        let live = view.servers().count();
        // The Activate command travels over the same faulty network as
        // everything else: re-poke any standby whose join is still
        // outstanding after two check intervals, in case the first
        // command was lost. Activation is idempotent on the server side.
        let now = ctx.now();
        let repoke_after = self.config.check_interval.saturating_mul(2);
        let mut repoke = Vec::new();
        for (node, poked) in &mut self.pending_joins {
            if !view.contains(*node) && now.saturating_duration_since(*poked) >= repoke_after {
                *poked = now;
                repoke.push(*node);
            }
        }
        for node in repoke {
            ctx.send(node, GroupMsg::App(AquaMsg::Activate));
        }
        // Account for activations already in flight (standbys we poked
        // that have not appeared in a view yet): every activated standby
        // beyond the live servers counts toward the target.
        let in_flight = self
            .pending_joins
            .keys()
            .filter(|n| !view.contains(**n))
            .count();
        let mut deficit = self.target().saturating_sub(live).saturating_sub(in_flight);
        while deficit > 0 && !self.pool.is_empty() {
            let standby = self.pool.remove(0);
            self.pending_joins.insert(standby, ctx.now());
            self.activations += 1;
            self.count("aqua_manager_activations_total", &[]);
            self.emit_event(
                "supervisor",
                JsonValue::object()
                    .field("action", "activate")
                    .field("node", u64::from(standby.index()))
                    .field("at_ns", ctx.now().as_nanos()),
            );
            ctx.send(standby, GroupMsg::App(AquaMsg::Activate));
            deficit -= 1;
        }
        if deficit > 0 {
            // The pool ran dry with the fleet still below target: journal
            // it once per episode so operators (and the soak gate) see the
            // capacity floor was hit.
            if !self.exhaustion_reported {
                self.exhaustion_reported = true;
                self.count("aqua_manager_pool_exhausted_total", &[]);
                self.emit_event(
                    "standby_pool_exhausted",
                    JsonValue::object()
                        .field("target", self.target())
                        .field("live", live)
                        .field("deficit", deficit)
                        .field("at_ns", ctx.now().as_nanos()),
                );
            }
        } else {
            self.exhaustion_reported = false;
        }
    }

    /// Starts a graceful drain of `replica`, journalling the window that
    /// lets forensics attribute any resulting miss to the supervisor.
    fn drain_replica(&mut self, ctx: &mut Context<'_, Wire>, replica: u64, action: &str) {
        let Some(agent) = self.agent.as_ref() else {
            return;
        };
        let Some(node) = agent.view().node_of(ReplicaId::new(replica)) else {
            return;
        };
        if self.draining.iter().any(|d| d.node == node) {
            return;
        }
        let rec = DrainRecord {
            node,
            replica,
            window: DRAIN_WINDOW_BASE + self.drains,
            started: ctx.now(),
            left: None,
        };
        self.drains += 1;
        self.count("aqua_supervisor_drains_total", &[("action", action)]);
        self.emit_event(
            "supervisor",
            JsonValue::object()
                .field("action", action)
                .field("replica", replica)
                .field("window", rec.window)
                .field("at_ns", ctx.now().as_nanos()),
        );
        self.emit_drain_edge(&rec, "active", ctx.now());
        self.draining.push(rec);
        ctx.send(node, GroupMsg::App(AquaMsg::Drain));
    }

    /// Drains surplus replicas down to `target`, picking victims in the
    /// seeded tie-break order so replays are bit-identical.
    fn drain_surplus(&mut self, ctx: &mut Context<'_, Wire>, target: usize, seed: u64) {
        let Some(agent) = self.agent.as_ref() else {
            return;
        };
        let draining: BTreeSet<u64> = self.draining.iter().map(|d| d.replica).collect();
        let mut live: Vec<u64> = agent
            .view()
            .replica_ids()
            .map(ReplicaId::index)
            .filter(|r| !draining.contains(r))
            .collect();
        live.sort_by_key(|r| (mix(seed, *r), *r));
        let surplus = live.len().saturating_sub(target);
        for replica in live.into_iter().take(surplus) {
            self.drain_replica(ctx, replica, "shrink");
        }
    }

    /// One supervision round: finish rested drains, tick the policy, and
    /// actuate its decisions.
    fn supervise(&mut self, ctx: &mut Context<'_, Wire>) {
        let Some(sup) = self.config.supervision else {
            return;
        };
        let now = ctx.now();
        // Drains whose rest period elapsed: the node is dormant again and
        // safe to treat as a standby. Drains whose graceful leave has not
        // been observed yet get the command re-sent — the Drain travels
        // over the faulty network too, and begin_drain is idempotent.
        let repoke_after = self.config.check_interval.saturating_mul(2);
        let mut i = 0;
        while i < self.draining.len() {
            let rec = self.draining[i];
            let due = rec
                .left
                .is_some_and(|left| now.saturating_duration_since(left) >= sup.restart_delay);
            if due {
                self.draining.remove(i);
                self.pool.push(rec.node);
                self.emit_event(
                    "supervisor",
                    JsonValue::object()
                        .field("action", "restart_ready")
                        .field("replica", rec.replica)
                        .field("window", rec.window)
                        .field("at_ns", now.as_nanos()),
                );
            } else {
                if rec.left.is_none() && now.saturating_duration_since(rec.started) >= repoke_after
                {
                    ctx.send(rec.node, GroupMsg::App(AquaMsg::Drain));
                }
                i += 1;
            }
        }

        let Some(agent) = self.agent.as_ref() else {
            return;
        };
        if agent.view().id == 0 || self.enforce_after.is_none_or(|t| now < t) {
            return;
        }
        let draining: BTreeSet<u64> = self.draining.iter().map(|d| d.replica).collect();
        let live: Vec<u64> = agent
            .view()
            .replica_ids()
            .map(ReplicaId::index)
            .filter(|r| !draining.contains(r))
            .collect();
        let Some(policy) = self.policy.as_mut() else {
            return;
        };
        let actions = policy.tick(now, &live);
        for action in actions {
            match action {
                SupervisorAction::SetTarget { target, reason } => {
                    self.count(
                        "aqua_supervisor_target_changes_total",
                        &[("reason", reason)],
                    );
                    self.emit_event(
                        "supervisor",
                        JsonValue::object()
                            .field("action", "set_target")
                            .field("target", target)
                            .field("reason", reason)
                            .field("at_ns", now.as_nanos()),
                    );
                    if live.len() > target {
                        self.drain_surplus(ctx, target, sup.policy.seed);
                    }
                }
                SupervisorAction::Quarantine { replica } => {
                    self.count("aqua_supervisor_quarantines_total", &[]);
                    self.drain_replica(ctx, replica, "quarantine");
                }
                SupervisorAction::Escalate { degraded } => {
                    self.escalations += 1;
                    self.count("aqua_supervisor_escalations_total", &[]);
                    self.emit_event(
                        "escalation",
                        JsonValue::object()
                            .field(
                                "degraded",
                                JsonValue::Array(
                                    degraded.iter().map(|r| JsonValue::from(*r)).collect(),
                                ),
                            )
                            .field("pc", sup.escalate_pc)
                            .field("shed_ms", sup.shed_for.as_nanos() / 1_000_000)
                            .field("at_ns", now.as_nanos()),
                    );
                    let directive = GroupMsg::App(AquaMsg::Directive {
                        renegotiate_pc: Some(sup.escalate_pc),
                        shed_for: Some(sup.shed_for),
                    });
                    let me = ctx.self_id();
                    let clients: Vec<NodeId> = self
                        .agent
                        .as_ref()
                        .map(|a| {
                            a.view()
                                .clients()
                                .map(|m| m.node)
                                .filter(|n| *n != me)
                                .collect()
                        })
                        .unwrap_or_default();
                    if !clients.is_empty() {
                        ctx.multicast(&clients, directive);
                    }
                }
            }
        }
    }

    /// Reacts to an installed view: settle pending joins, notice drained
    /// replicas leaving, and keep perf-update subscriptions current.
    fn on_view_installed(&mut self, ctx: &mut Context<'_, Wire>) {
        let Some(agent) = self.agent.as_ref() else {
            return;
        };
        let view = agent.view();
        let now = ctx.now();
        self.pending_joins.retain(|n, _| !view.contains(*n));
        self.subscribed.retain(|n| view.contains(*n));
        // A drained replica disappearing from the view means its graceful
        // leave was installed: close the journal window there. (It may
        // still be finishing stragglers; the rest period covers that.)
        let mut left = Vec::new();
        for rec in &mut self.draining {
            if rec.left.is_none() && !view.contains(rec.node) {
                rec.left = Some(now);
                left.push(*rec);
            }
        }
        let server_nodes: Vec<(NodeId, u64)> = view
            .servers()
            .filter_map(|m| m.replica.map(|r| (m.node, r.index())))
            .collect();
        for rec in left {
            self.emit_drain_edge(&rec, "cleared", now);
            if let Some(policy) = self.policy.as_mut() {
                policy.forget(rec.replica);
            }
        }
        // Subscribe to every server we are not already subscribed to (a
        // recovered or reactivated replica forgets its subscribers, but
        // it also re-enters the view through a fresh join, which drops it
        // from `subscribed` in the retain above while it is away).
        if self.policy.is_some() {
            let me = ctx.self_id();
            for (node, _) in server_nodes {
                if self.subscribed.insert(node) {
                    ctx.send(node, GroupMsg::App(AquaMsg::Subscribe { client: me }));
                }
            }
        }
        self.enforce_replication(ctx);
    }
}

impl Node<Wire> for DependabilityManager {
    fn on_event(&mut self, event: Event<Wire>, ctx: &mut Context<'_, Wire>) {
        match event {
            Event::Started => {
                let me = Member::client(ctx.self_id());
                let mut agent =
                    MembershipAgent::new(self.config.coordinator, me, self.config.group);
                agent.on_started(ctx);
                self.agent = Some(agent);
                self.enforce_after = Some(ctx.now().saturating_add(self.config.startup_grace));
                ctx.set_timer(self.config.check_interval);
            }
            Event::Timer { token } => {
                if let Some(agent) = self.agent.as_mut() {
                    if agent.on_timer(token, ctx) {
                        return;
                    }
                }
                self.supervise(ctx);
                self.enforce_replication(ctx);
                ctx.set_timer(self.config.check_interval);
            }
            Event::Message { payload, .. } => match payload {
                GroupMsg::ViewChange(view) => {
                    let installed = self
                        .agent
                        .as_mut()
                        .expect("started")
                        .on_view_change(view)
                        .is_some();
                    if installed {
                        self.on_view_installed(ctx);
                    }
                }
                GroupMsg::App(AquaMsg::PerfUpdate { replica, perf }) => {
                    if let Some(policy) = self.policy.as_mut() {
                        policy.on_queue_sample(replica.index(), perf.queue_len);
                    }
                }
                GroupMsg::App(AquaMsg::AlertReport { replica, .. }) => {
                    if let Some(policy) = self.policy.as_mut() {
                        policy.on_alert(ctx.now(), replica);
                    }
                }
                _ => {}
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClientConfig, ClientGateway, ServerConfig, ServerGateway};
    use aqua_core::qos::{QosSpec, ReplicaId};
    use aqua_core::time::Instant;
    use aqua_group::GroupCoordinator;
    use aqua_replica::{CrashPlan, LoadModel, ServiceTimeModel};
    use aqua_strategies::ModelBased;
    use lan_sim::{Simulation, UniformLan};

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn standby_is_activated_after_a_crash() {
        let mut sim = Simulation::with_network(51, UniformLan::aqua_testbed());
        let coordinator = sim.add_node(GroupCoordinator::<AquaMsg>::new(
            FailureDetectorConfig::default(),
        ));
        // Three active replicas, one of which crashes at 2 s.
        for i in 0..3u64 {
            let mut cfg = ServerConfig::paper(ReplicaId::new(i), coordinator);
            cfg.service = ServiceTimeModel::Deterministic(ms(40));
            if i == 0 {
                cfg.crash = CrashPlan::AtTime(Instant::from_secs(2));
            }
            sim.add_node(ServerGateway::new(cfg));
        }
        // Two standbys.
        let mut standbys = Vec::new();
        for i in 3..5u64 {
            let mut cfg = ServerConfig::paper(ReplicaId::new(i), coordinator);
            cfg.service = ServiceTimeModel::Deterministic(ms(40));
            cfg.standby = true;
            standbys.push(sim.add_node(ServerGateway::new(cfg)));
        }
        let manager = sim.add_node(DependabilityManager::new(ManagerConfig {
            coordinator,
            group: FailureDetectorConfig::default(),
            target_replication: 3,
            standbys: standbys.clone(),
            check_interval: ms(200),
            startup_grace: ms(800),
            supervision: None,
        }));
        let mut ccfg = ClientConfig::paper(coordinator, QosSpec::new(ms(300), 0.9).unwrap());
        ccfg.num_requests = Some(40);
        ccfg.think_time = ms(250);
        let client = sim.add_node(ClientGateway::new(ccfg, Box::new(ModelBased::default())));

        // Before the crash: 3 live servers, standbys dormant.
        sim.run_until(Instant::from_millis(1_800));
        {
            let coord = sim.node::<GroupCoordinator<AquaMsg>>(coordinator).unwrap();
            assert_eq!(coord.view().servers().count(), 3);
            let mgr = sim.node::<DependabilityManager>(manager).unwrap();
            assert_eq!(mgr.activations(), 0);
        }

        // After the crash + detection: the manager restores the level.
        sim.run_until(Instant::from_secs(30));
        let coord = sim.node::<GroupCoordinator<AquaMsg>>(coordinator).unwrap();
        assert_eq!(
            coord.view().servers().count(),
            3,
            "replication level restored"
        );
        let mgr = sim.node::<DependabilityManager>(manager).unwrap();
        assert_eq!(mgr.activations(), 1, "exactly one standby activated");
        assert_eq!(mgr.standbys_remaining(), 1);
        // The standby replica (r3) is now in the client's repository and
        // has serviced work.
        let standby_node = sim.node::<ServerGateway>(standbys[0]).unwrap();
        assert!(standby_node.serviced() > 0, "{standby_node:?}");
        let gw = sim.node::<ClientGateway>(client).unwrap();
        assert!(gw
            .handler()
            .unwrap()
            .repository()
            .contains(ReplicaId::new(3)));
    }

    #[test]
    fn manager_does_not_overshoot_the_target() {
        let mut sim = Simulation::with_network(52, UniformLan::aqua_testbed());
        let coordinator = sim.add_node(GroupCoordinator::<AquaMsg>::new(
            FailureDetectorConfig::default(),
        ));
        for i in 0..2u64 {
            sim.add_node(ServerGateway::new(ServerConfig::paper(
                ReplicaId::new(i),
                coordinator,
            )));
        }
        let mut standbys = Vec::new();
        for i in 2..6u64 {
            let mut cfg = ServerConfig::paper(ReplicaId::new(i), coordinator);
            cfg.standby = true;
            standbys.push(sim.add_node(ServerGateway::new(cfg)));
        }
        let manager = sim.add_node(DependabilityManager::new(ManagerConfig {
            coordinator,
            group: FailureDetectorConfig::default(),
            target_replication: 4,
            standbys,
            check_interval: ms(100),
            startup_grace: ms(800),
            supervision: None,
        }));
        sim.run_until(Instant::from_secs(10));
        // Target 4 with 2 active: exactly 2 activations even though the
        // check timer fired many times while joins were in flight.
        let mgr = sim.node::<DependabilityManager>(manager).unwrap();
        assert_eq!(mgr.activations(), 2);
        let coord = sim.node::<GroupCoordinator<AquaMsg>>(coordinator).unwrap();
        assert_eq!(coord.view().servers().count(), 4);
    }

    #[test]
    fn overload_drains_surplus_replicas_back_to_the_pool() {
        let mut sim = Simulation::with_network(53, UniformLan::aqua_testbed());
        let coordinator = sim.add_node(GroupCoordinator::<AquaMsg>::new(
            FailureDetectorConfig::default(),
        ));
        // Four slow replicas: a steady request stream overwhelms them, so
        // queue depths stay high and the supervisor backs replication off.
        for i in 0..4u64 {
            let mut cfg = ServerConfig::paper(ReplicaId::new(i), coordinator);
            cfg.service = ServiceTimeModel::Deterministic(ms(120));
            cfg.load = LoadModel::nominal();
            sim.add_node(ServerGateway::new(cfg));
        }
        let supervision = SupervisionConfig {
            policy: SupervisorConfig {
                min_replication: 2,
                max_replication: 4,
                overload_queue: 2.0,
                underload_queue: 0.2,
                decision_interval: ms(500),
                seed: 53,
                ..SupervisorConfig::default()
            },
            ..SupervisionConfig::default()
        };
        let (obs, reader) = Obs::in_memory();
        let manager = sim.add_node(
            DependabilityManager::new(ManagerConfig {
                coordinator,
                group: FailureDetectorConfig::default(),
                target_replication: 4,
                standbys: Vec::new(),
                check_interval: ms(200),
                startup_grace: ms(800),
                supervision: Some(supervision),
            })
            .with_obs(&obs),
        );
        // An open-loop client keeps every queue deep: a request every
        // 30 ms on average against 120 ms service.
        let mut ccfg = ClientConfig::paper(coordinator, QosSpec::new(ms(900), 0.9).unwrap());
        ccfg.num_requests = None;
        ccfg.arrivals = crate::ArrivalModel::OpenLoopPoisson {
            mean_interarrival: ms(30),
        };
        sim.add_node(ClientGateway::new(ccfg, Box::new(ModelBased::default())));

        sim.run_until(Instant::from_secs(20));
        let mgr = sim.node::<DependabilityManager>(manager).unwrap();
        assert_eq!(mgr.target(), 2, "overload shrank the target to the floor");
        assert!(mgr.drains() >= 2, "surplus replicas were drained");
        let coord = sim.node::<GroupCoordinator<AquaMsg>>(coordinator).unwrap();
        assert_eq!(coord.view().servers().count(), 2);
        // Drained replicas rested and returned to the standby pool.
        assert_eq!(mgr.standbys_remaining(), 2);
        // The journal shows the decisions and the drain fault windows.
        assert!(!reader
            .lines_containing("\"action\":\"set_target\"")
            .is_empty());
        let drains = reader.lines_containing("\"kind\":\"drain\"");
        assert!(
            drains.iter().any(|l| l.contains("\"phase\":\"active\""))
                && drains.iter().any(|l| l.contains("\"phase\":\"cleared\"")),
            "{drains:?}"
        );
        assert!(drains
            .iter()
            .all(|l| l.contains(&format!("\"window\":{DRAIN_WINDOW_BASE}"))
                || l.contains(&format!("\"window\":{}", DRAIN_WINDOW_BASE + 1))));
    }

    #[test]
    fn pool_exhaustion_is_journalled_once_per_episode() {
        let mut sim = Simulation::with_network(54, UniformLan::aqua_testbed());
        let coordinator = sim.add_node(GroupCoordinator::<AquaMsg>::new(
            FailureDetectorConfig::default(),
        ));
        // Two replicas, one crashes permanently; no standbys to cover it.
        for i in 0..2u64 {
            let mut cfg = ServerConfig::paper(ReplicaId::new(i), coordinator);
            if i == 0 {
                cfg.crash = CrashPlan::AtTime(Instant::from_secs(2));
            }
            sim.add_node(ServerGateway::new(cfg));
        }
        let (obs, reader) = Obs::in_memory();
        sim.add_node(
            DependabilityManager::new(ManagerConfig {
                coordinator,
                group: FailureDetectorConfig::default(),
                target_replication: 2,
                standbys: Vec::new(),
                check_interval: ms(200),
                startup_grace: ms(800),
                supervision: None,
            })
            .with_obs(&obs),
        );
        sim.run_until(Instant::from_secs(12));
        let lines = reader.lines_containing("\"type\":\"standby_pool_exhausted\"");
        assert_eq!(lines.len(), 1, "one event per episode, not per check");
        assert!(lines[0].contains("\"deficit\":1"), "{}", lines[0]);
        assert!(obs
            .prometheus()
            .contains("aqua_manager_pool_exhausted_total 1"));
    }
}
