//! The Proteus dependability manager (§2).
//!
//! "The Proteus dependability manager manages the replication level for
//! different applications based on their dependability requirements." Here
//! that means: watch the group view, and whenever the number of live
//! server replicas drops below the configured target, activate replicas
//! from a standby pool (processes that are running but have not joined the
//! service group). Newly activated replicas join the view, get explored by
//! the clients' cold-start rule, and restore the selection algorithm's
//! room to manoeuvre.

use aqua_core::time::Duration;
use aqua_group::{FailureDetectorConfig, GroupMsg, Member, MembershipAgent};
use lan_sim::{Context, Event, Node, NodeId};

use crate::proto::{AquaMsg, Wire};

/// Configuration of the dependability manager.
#[derive(Debug, Clone)]
pub struct ManagerConfig {
    /// The group coordinator node.
    pub coordinator: NodeId,
    /// Group cadence parameters.
    pub group: FailureDetectorConfig,
    /// Desired number of live server replicas.
    pub target_replication: usize,
    /// Standby server nodes (spawned with `standby: true`) that can be
    /// activated, in activation order.
    pub standbys: Vec<NodeId>,
    /// How often to re-check the replication level (besides reacting to
    /// every view change).
    pub check_interval: Duration,
    /// Do not enforce during this long after start: views installed while
    /// the group is still forming under-count the servers (their joins are
    /// in flight), and acting on them would activate standbys spuriously.
    pub startup_grace: Duration,
}

/// The dependability manager node. See the module docs.
pub struct DependabilityManager {
    config: ManagerConfig,
    agent: Option<MembershipAgent>,
    enforce_after: Option<aqua_core::time::Instant>,
    next_standby: usize,
    activations: u64,
}

impl std::fmt::Debug for DependabilityManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DependabilityManager")
            .field("target", &self.config.target_replication)
            .field("activations", &self.activations)
            .field(
                "standbys_left",
                &(self.config.standbys.len() - self.next_standby),
            )
            .finish()
    }
}

impl DependabilityManager {
    /// Creates a manager from its configuration.
    pub fn new(config: ManagerConfig) -> Self {
        DependabilityManager {
            config,
            agent: None,
            enforce_after: None,
            next_standby: 0,
            activations: 0,
        }
    }

    /// Standby activations performed so far.
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// Standbys not yet activated.
    pub fn standbys_remaining(&self) -> usize {
        self.config.standbys.len() - self.next_standby
    }

    fn enforce_replication(&mut self, ctx: &mut Context<'_, Wire>) {
        let Some(agent) = self.agent.as_ref() else {
            return;
        };
        // Never act before the first view arrives (an empty membership
        // snapshot is indistinguishable from "everything crashed") or
        // while the group is still forming.
        if agent.view().id == 0 || self.enforce_after.is_none_or(|t| ctx.now() < t) {
            return;
        }
        let live = agent.view().servers().count();
        let mut deficit = self.config.target_replication.saturating_sub(live);
        // Account for activations already in flight (standbys we poked
        // that have not appeared in a view yet): every activated standby
        // beyond the live servers counts toward the target.
        let in_flight = self.config.standbys[..self.next_standby]
            .iter()
            .filter(|n| !agent.view().contains(**n))
            .count();
        deficit = deficit.saturating_sub(in_flight);
        while deficit > 0 && self.next_standby < self.config.standbys.len() {
            let standby = self.config.standbys[self.next_standby];
            self.next_standby += 1;
            self.activations += 1;
            ctx.send(standby, GroupMsg::App(AquaMsg::Activate));
            deficit -= 1;
        }
    }
}

impl Node<Wire> for DependabilityManager {
    fn on_event(&mut self, event: Event<Wire>, ctx: &mut Context<'_, Wire>) {
        match event {
            Event::Started => {
                let me = Member::client(ctx.self_id());
                let mut agent =
                    MembershipAgent::new(self.config.coordinator, me, self.config.group);
                agent.on_started(ctx);
                self.agent = Some(agent);
                self.enforce_after = Some(ctx.now().saturating_add(self.config.startup_grace));
                ctx.set_timer(self.config.check_interval);
            }
            Event::Timer { token } => {
                if let Some(agent) = self.agent.as_mut() {
                    if agent.on_timer(token, ctx) {
                        return;
                    }
                }
                self.enforce_replication(ctx);
                ctx.set_timer(self.config.check_interval);
            }
            Event::Message { payload, .. } => {
                if let GroupMsg::ViewChange(view) = payload {
                    let installed = self
                        .agent
                        .as_mut()
                        .expect("started")
                        .on_view_change(view)
                        .is_some();
                    if installed {
                        self.enforce_replication(ctx);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClientConfig, ClientGateway, ServerConfig, ServerGateway};
    use aqua_core::qos::{QosSpec, ReplicaId};
    use aqua_core::time::Instant;
    use aqua_group::GroupCoordinator;
    use aqua_replica::{CrashPlan, ServiceTimeModel};
    use aqua_strategies::ModelBased;
    use lan_sim::{Simulation, UniformLan};

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn standby_is_activated_after_a_crash() {
        let mut sim = Simulation::with_network(51, UniformLan::aqua_testbed());
        let coordinator = sim.add_node(GroupCoordinator::<AquaMsg>::new(
            FailureDetectorConfig::default(),
        ));
        // Three active replicas, one of which crashes at 2 s.
        for i in 0..3u64 {
            let mut cfg = ServerConfig::paper(ReplicaId::new(i), coordinator);
            cfg.service = ServiceTimeModel::Deterministic(ms(40));
            if i == 0 {
                cfg.crash = CrashPlan::AtTime(Instant::from_secs(2));
            }
            sim.add_node(ServerGateway::new(cfg));
        }
        // Two standbys.
        let mut standbys = Vec::new();
        for i in 3..5u64 {
            let mut cfg = ServerConfig::paper(ReplicaId::new(i), coordinator);
            cfg.service = ServiceTimeModel::Deterministic(ms(40));
            cfg.standby = true;
            standbys.push(sim.add_node(ServerGateway::new(cfg)));
        }
        let manager = sim.add_node(DependabilityManager::new(ManagerConfig {
            coordinator,
            group: FailureDetectorConfig::default(),
            target_replication: 3,
            standbys: standbys.clone(),
            check_interval: ms(200),
            startup_grace: ms(800),
        }));
        let mut ccfg = ClientConfig::paper(coordinator, QosSpec::new(ms(300), 0.9).unwrap());
        ccfg.num_requests = Some(40);
        ccfg.think_time = ms(250);
        let client = sim.add_node(ClientGateway::new(ccfg, Box::new(ModelBased::default())));

        // Before the crash: 3 live servers, standbys dormant.
        sim.run_until(Instant::from_millis(1_800));
        {
            let coord = sim.node::<GroupCoordinator<AquaMsg>>(coordinator).unwrap();
            assert_eq!(coord.view().servers().count(), 3);
            let mgr = sim.node::<DependabilityManager>(manager).unwrap();
            assert_eq!(mgr.activations(), 0);
        }

        // After the crash + detection: the manager restores the level.
        sim.run_until(Instant::from_secs(30));
        let coord = sim.node::<GroupCoordinator<AquaMsg>>(coordinator).unwrap();
        assert_eq!(
            coord.view().servers().count(),
            3,
            "replication level restored"
        );
        let mgr = sim.node::<DependabilityManager>(manager).unwrap();
        assert_eq!(mgr.activations(), 1, "exactly one standby activated");
        assert_eq!(mgr.standbys_remaining(), 1);
        // The standby replica (r3) is now in the client's repository and
        // has serviced work.
        let standby_node = sim.node::<ServerGateway>(standbys[0]).unwrap();
        assert!(standby_node.serviced() > 0, "{standby_node:?}");
        let gw = sim.node::<ClientGateway>(client).unwrap();
        assert!(gw
            .handler()
            .unwrap()
            .repository()
            .contains(ReplicaId::new(3)));
    }

    #[test]
    fn manager_does_not_overshoot_the_target() {
        let mut sim = Simulation::with_network(52, UniformLan::aqua_testbed());
        let coordinator = sim.add_node(GroupCoordinator::<AquaMsg>::new(
            FailureDetectorConfig::default(),
        ));
        for i in 0..2u64 {
            sim.add_node(ServerGateway::new(ServerConfig::paper(
                ReplicaId::new(i),
                coordinator,
            )));
        }
        let mut standbys = Vec::new();
        for i in 2..6u64 {
            let mut cfg = ServerConfig::paper(ReplicaId::new(i), coordinator);
            cfg.standby = true;
            standbys.push(sim.add_node(ServerGateway::new(cfg)));
        }
        let manager = sim.add_node(DependabilityManager::new(ManagerConfig {
            coordinator,
            group: FailureDetectorConfig::default(),
            target_replication: 4,
            standbys,
            check_interval: ms(100),
            startup_grace: ms(800),
        }));
        sim.run_until(Instant::from_secs(10));
        // Target 4 with 2 active: exactly 2 activations even though the
        // check timer fired many times while joins were in flight.
        let mgr = sim.node::<DependabilityManager>(manager).unwrap();
        assert_eq!(mgr.activations(), 2);
        let coord = sim.node::<GroupCoordinator<AquaMsg>>(coordinator).unwrap();
        assert_eq!(coord.view().servers().count(), 4);
    }
}
