//! # aqua-gateway — the AQuA gateway protocol handlers
//!
//! The middleware layer of the reproduction (§2, §5.4): client and server
//! gateways exchanging [`AquaMsg`]s through the group-communication
//! substrate.
//!
//! * [`TimingFaultHandler`] — the paper's handler as transport-agnostic
//!   state (selection, repository updates, `td` measurement, timing-failure
//!   detection). Reused verbatim by the simulator.
//! * [`ConcurrentHandler`] — the same responsibilities restructured for
//!   multi-threaded callers: lock-free snapshot planning plus sharded
//!   reply ingestion and pending-request tracking. Used by the socket
//!   runtime's hot path.
//! * [`ClientGateway`] — a simulated client gateway node wrapping the
//!   handler plus the paper's closed-loop request generator.
//! * [`ServerGateway`] — a simulated replica host: FIFO queue, service-time
//!   model, load process, crash plan, performance publication.
//! * [`PassiveHandler`] / [`active_strategy`] — the crash-tolerance
//!   handlers of earlier AQuA work, as baselines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod concurrent;
mod handlers;
mod manager;
pub mod obs;
mod passive_client;
mod proto;
mod server;
mod supervisor;
mod timing;

pub use client::{ArrivalModel, ClientConfig, ClientGateway, RequestRecord};
pub use concurrent::ConcurrentHandler;
pub use handlers::{active_strategy, FailoverAction, PassiveHandler, PassivePending};
pub use manager::{DependabilityManager, ManagerConfig, SupervisionConfig, DRAIN_WINDOW_BASE};
pub use obs::HandlerObserver;
// Re-exported so downstream crates can configure the QoS-calibration
// watchdog without depending on aqua-trace directly.
pub use aqua_trace::{CalibrationAlert, CalibrationConfig};
pub use passive_client::{PassiveClientConfig, PassiveClientGateway};
pub use proto::{AquaMsg, RequestId, Wire};
pub use server::{ServerConfig, ServerGateway};
pub use supervisor::{SupervisorAction, SupervisorConfig, SupervisorPolicy};
pub use timing::{HandlerStats, PendingRequest, ReplyOutcome, RequestPlan, TimingFaultHandler};

#[cfg(test)]
mod sim_tests {
    //! End-to-end tests of the simulated stack: coordinator + servers +
    //! clients over a jittery LAN.

    use super::*;
    use aqua_core::qos::{QosSpec, ReplicaId};
    use aqua_core::time::{Duration, Instant};
    use aqua_group::{FailureDetectorConfig, GroupCoordinator};
    use aqua_replica::{CrashPlan, ServiceTimeModel};
    use aqua_strategies::ModelBased;
    use lan_sim::{NodeId, Simulation, UniformLan};

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    struct TestBed {
        sim: Simulation<Wire>,
        client: NodeId,
        servers: Vec<NodeId>,
    }

    /// Builds coordinator + `n` servers + one model-based client.
    fn build(
        n: usize,
        qos: QosSpec,
        requests: u64,
        seed: u64,
        crash: impl Fn(usize) -> CrashPlan,
        service: impl Fn(usize) -> ServiceTimeModel,
    ) -> TestBed {
        let mut sim = Simulation::with_network(seed, UniformLan::aqua_testbed());
        let coordinator = sim.add_node(GroupCoordinator::<AquaMsg>::new(
            FailureDetectorConfig::default(),
        ));
        let mut servers = Vec::new();
        for i in 0..n {
            let mut cfg = ServerConfig::paper(ReplicaId::new(i as u64), coordinator);
            cfg.crash = crash(i);
            cfg.service = service(i);
            servers.push(sim.add_node(ServerGateway::new(cfg)));
        }
        let mut ccfg = ClientConfig::paper(coordinator, qos);
        ccfg.num_requests = Some(requests);
        ccfg.think_time = ms(200); // shorter loop keeps tests fast
        let client = sim.add_node(ClientGateway::new(ccfg, Box::new(ModelBased::default())));
        TestBed {
            sim,
            client,
            servers,
        }
    }

    #[test]
    fn full_stack_services_all_requests() {
        let qos = QosSpec::new(ms(250), 0.9).unwrap();
        let mut bed = build(
            3,
            qos,
            20,
            42,
            |_| CrashPlan::Never,
            |_| ServiceTimeModel::Deterministic(ms(50)),
        );
        bed.sim.run_until(Instant::from_secs(60));
        let client = bed.sim.node::<ClientGateway>(bed.client).unwrap();
        assert!(client.is_finished(), "{client:?}");
        let records = client.records();
        assert_eq!(records.len(), 20);
        assert!(
            records.iter().all(|r| r.timely),
            "deterministic 50 ms service always beats a 250 ms deadline"
        );
        // First request is a cold-start full multicast; later ones are 2.
        assert_eq!(records[0].redundancy, 3);
        assert!(records[2..].iter().all(|r| r.redundancy == 2));
    }

    #[test]
    fn perf_updates_reach_non_requesting_clients() {
        let qos = QosSpec::new(ms(250), 0.0).unwrap();
        let mut bed = build(
            2,
            qos,
            5,
            7,
            |_| CrashPlan::Never,
            |_| ServiceTimeModel::Deterministic(ms(30)),
        );
        // Add a second, idle client that never sends requests but
        // subscribes to updates.
        let coordinator = NodeId::new(0);
        let mut idle_cfg = ClientConfig::paper(coordinator, qos);
        idle_cfg.num_requests = Some(0);
        let idle = bed.sim.add_node(ClientGateway::new(
            idle_cfg,
            Box::new(ModelBased::default()),
        ));
        bed.sim.run_until(Instant::from_secs(30));

        let idle_client = bed.sim.node::<ClientGateway>(idle).unwrap();
        let repo = idle_client.handler().unwrap().repository();
        assert_eq!(repo.len(), 2);
        for (_, stats) in repo.iter() {
            assert!(
                stats.histories().count() > 0,
                "pushed updates filled the idle client's repository"
            );
        }
    }

    #[test]
    fn crash_mid_run_is_masked_by_redundancy() {
        let qos = QosSpec::new(ms(300), 0.9).unwrap();
        // r0 is the fastest replica and crashes after 5 services.
        let mut bed = build(
            4,
            qos,
            25,
            11,
            |i| {
                if i == 0 {
                    CrashPlan::AfterRequests(5)
                } else {
                    CrashPlan::Never
                }
            },
            |i| {
                if i == 0 {
                    ServiceTimeModel::Deterministic(ms(20))
                } else {
                    ServiceTimeModel::Deterministic(ms(80))
                }
            },
        );
        bed.sim.run_until(Instant::from_secs(120));
        assert!(bed.sim.is_detached(bed.servers[0]), "r0 crashed");
        let client = bed.sim.node::<ClientGateway>(bed.client).unwrap();
        assert!(client.is_finished(), "{client:?}");
        let records = client.records();
        assert_eq!(records.len(), 25);
        let failures = records.iter().filter(|r| !r.timely).count();
        // The selected set tolerates a single crash (Eq. 3): even the
        // requests in flight during the crash get served by the backup.
        assert!(
            failures == 0,
            "single crash must be masked, got {failures} failures"
        );
        // After the view change, r0 is gone from the repository.
        let repo = client.handler().unwrap().repository();
        assert!(!repo.contains(ReplicaId::new(0)));
    }

    #[test]
    fn all_replicas_crashing_triggers_give_up() {
        let qos = QosSpec::new(ms(300), 0.0).unwrap();
        let mut bed = build(
            2,
            qos,
            10,
            13,
            |_| CrashPlan::AtTime(Instant::from_millis(1_200)),
            |_| ServiceTimeModel::Deterministic(ms(50)),
        );
        bed.sim.run_until(Instant::from_secs(120));
        let client = bed.sim.node::<ClientGateway>(bed.client).unwrap();
        let stats = client.handler().unwrap().stats();
        assert!(
            stats.gave_up > 0 || client.records().iter().any(|r| !r.timely),
            "with every replica dead, requests must fail: {stats:?}"
        );
    }

    #[test]
    fn active_probes_keep_unselected_replicas_fresh() {
        let qos = QosSpec::new(ms(300), 0.0).unwrap();
        let mut sim = Simulation::with_network(41, UniformLan::aqua_testbed());
        let coordinator = sim.add_node(GroupCoordinator::<AquaMsg>::new(
            FailureDetectorConfig::default(),
        ));
        // Two fast replicas plus one slow one the selection never picks.
        for i in 0..2u64 {
            sim.add_node(ServerGateway::new(ServerConfig {
                service: ServiceTimeModel::Deterministic(ms(20)),
                ..ServerConfig::paper(ReplicaId::new(i), coordinator)
            }));
        }
        let slow = sim.add_node(ServerGateway::new(ServerConfig {
            service: ServiceTimeModel::Deterministic(ms(200)),
            ..ServerConfig::paper(ReplicaId::new(2), coordinator)
        }));
        let mut ccfg = ClientConfig::paper(coordinator, qos);
        ccfg.num_requests = Some(20);
        ccfg.think_time = ms(400);
        ccfg.probe_stale_after = Some(Duration::from_secs(1));
        let client = sim.add_node(ClientGateway::new(ccfg, Box::new(ModelBased::default())));
        sim.run_until(Instant::from_secs(30));

        let gw = sim.node::<ClientGateway>(client).unwrap();
        assert!(gw.is_finished(), "{gw:?}");
        let handler = gw.handler().unwrap();
        assert!(
            handler.stats().probes > 3,
            "the slow replica went stale repeatedly: {:?}",
            handler.stats()
        );
        // The probes serviced real requests at the slow replica…
        let slow_node = sim.node::<ServerGateway>(slow).unwrap();
        assert!(slow_node.serviced() > 3, "{slow_node:?}");
        // …and kept its entry fresh for the whole workload: without
        // probes the only update would be the cold-start multicast at
        // ~0.5 s (probing stops once the client finishes, around 8.5 s).
        let stats = handler.repository().stats(ReplicaId::new(2)).unwrap();
        let last = stats.last_update().unwrap();
        assert!(
            last > Instant::from_secs(5),
            "entry refreshed late in the run, last update {last}"
        );
        // Probes never polluted the client-visible statistics.
        assert_eq!(handler.stats().delivered, 20);
        assert_eq!(handler.detector().total() as usize, 20);
    }

    #[test]
    fn crashed_replica_recovers_and_rejoins() {
        let qos = QosSpec::new(ms(300), 0.0).unwrap();
        let mut sim = Simulation::with_network(31, UniformLan::aqua_testbed());
        let coordinator = sim.add_node(GroupCoordinator::<AquaMsg>::new(
            FailureDetectorConfig::default(),
        ));
        // The only fast replica crashes at 2 s and restarts 3 s later.
        let fast = sim.add_node(ServerGateway::new(ServerConfig {
            service: ServiceTimeModel::Deterministic(ms(10)),
            crash: CrashPlan::AtTime(Instant::from_secs(2)),
            recover_after: Some(Duration::from_secs(3)),
            ..ServerConfig::paper(ReplicaId::new(0), coordinator)
        }));
        let _slow = sim.add_node(ServerGateway::new(ServerConfig {
            service: ServiceTimeModel::Deterministic(ms(150)),
            ..ServerConfig::paper(ReplicaId::new(1), coordinator)
        }));
        let mut ccfg = ClientConfig::paper(coordinator, qos);
        ccfg.num_requests = Some(40);
        ccfg.think_time = ms(300);
        let client = sim.add_node(ClientGateway::new(ccfg, Box::new(ModelBased::default())));

        // While the fast replica is down, it must be out of the view…
        sim.run_until(Instant::from_millis(3_500));
        {
            let coord = sim.node::<GroupCoordinator<AquaMsg>>(coordinator).unwrap();
            assert_eq!(coord.view().servers().count(), 1, "fast replica evicted");
            let server = sim.node::<ServerGateway>(fast).unwrap();
            assert!(server.is_crashed());
        }

        // …and after recovery it rejoins and serves again.
        sim.run_until(Instant::from_secs(30));
        let coord = sim.node::<GroupCoordinator<AquaMsg>>(coordinator).unwrap();
        assert_eq!(coord.view().servers().count(), 2, "fast replica rejoined");
        let server = sim.node::<ServerGateway>(fast).unwrap();
        assert_eq!(server.restarts(), 1);
        assert!(!server.is_crashed());
        let before_recovery = server.serviced();
        assert!(before_recovery > 0, "served again after restart");

        let gw = sim.node::<ClientGateway>(client).unwrap();
        let repo = gw.handler().unwrap().repository();
        assert!(
            repo.contains(ReplicaId::new(0)),
            "the client re-learned about the recovered replica"
        );
        // Late requests go to the fast replica again (10 ms vs 150 ms).
        let late_latency = gw
            .records()
            .last()
            .and_then(|r| r.response_time)
            .expect("answered");
        assert!(
            late_latency < ms(100),
            "fast replica is being used again: {late_latency}"
        );
    }

    #[test]
    fn open_loop_overlaps_requests_and_builds_queues() {
        let qos = QosSpec::new(ms(400), 0.0).unwrap();
        let mut sim = Simulation::with_network(21, UniformLan::aqua_testbed());
        let coordinator = sim.add_node(GroupCoordinator::<AquaMsg>::new(
            FailureDetectorConfig::default(),
        ));
        // One slow replica: 100 ms service, arrivals every ~40 ms → the
        // FIFO queue must build and queuing delays must be observed.
        let server = sim.add_node(ServerGateway::new(ServerConfig {
            service: ServiceTimeModel::Deterministic(ms(100)),
            ..ServerConfig::paper(ReplicaId::new(0), coordinator)
        }));
        let mut ccfg = ClientConfig::paper(coordinator, qos);
        ccfg.num_requests = Some(30);
        ccfg.arrivals = crate::ArrivalModel::OpenLoopPoisson {
            mean_interarrival: ms(40),
        };
        let client = sim.add_node(ClientGateway::new(ccfg, Box::new(ModelBased::default())));
        sim.run_until(Instant::from_secs(60));

        let gw = sim.node::<ClientGateway>(client).unwrap();
        assert!(gw.is_finished(), "{gw:?}");
        assert_eq!(gw.records().len(), 30);
        let server_node = sim.node::<ServerGateway>(server).unwrap();
        assert_eq!(server_node.serviced(), 30);
        // Queuing delays were measured and are substantial.
        let repo = gw.handler().unwrap().repository();
        let stats = repo.stats(ReplicaId::new(0)).unwrap();
        let max_queue_delay = stats
            .history(aqua_core::repository::MethodId::DEFAULT)
            .unwrap()
            .queuing_delays()
            .iter()
            .copied()
            .fold(Duration::ZERO, Duration::max);
        assert!(
            max_queue_delay >= ms(100),
            "arrivals at 2.5x the service rate must queue: {max_queue_delay}"
        );
        // And some requests genuinely overlapped.
        let overlapping = gw
            .records()
            .windows(2)
            .filter(|w| match w[0].first_reply_at {
                Some(reply) => w[1].sent_at < reply,
                None => true,
            })
            .count();
        assert!(
            overlapping > 5,
            "open loop overlaps requests: {overlapping}"
        );
    }

    #[test]
    fn deterministic_replay_under_fixed_seed() {
        fn run(seed: u64) -> Vec<(u64, bool, usize)> {
            let qos = QosSpec::new(ms(200), 0.5).unwrap();
            let mut bed = build(
                3,
                qos,
                10,
                seed,
                |_| CrashPlan::Never,
                |_| ServiceTimeModel::paper_load(),
            );
            bed.sim.run_until(Instant::from_secs(60));
            bed.sim
                .node::<ClientGateway>(bed.client)
                .unwrap()
                .records()
                .iter()
                .map(|r| (r.seq, r.timely, r.redundancy))
                .collect()
        }
        assert_eq!(run(99), run(99));
    }
}
