//! The simulated client gateway: the timing fault handler wired to the
//! group, plus the paper's closed-loop client workload.
//!
//! The paper's experiment clients "independently issued requests to the
//! same service with a one second delay between receiving a response and
//! issuing the next request" (§6). [`ClientGateway`] reproduces that loop:
//! join the group, subscribe to performance updates, issue a request,
//! deliver the earliest reply, think, repeat — recording one
//! [`RequestRecord`] per request for the harness.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use aqua_core::qos::QosSpec;
use aqua_core::repository::MethodId;
use aqua_core::time::{Duration, Instant};
use aqua_group::{FailureDetectorConfig, GroupMsg, Member, MembershipAgent};
use aqua_strategies::SelectionStrategy;
use lan_sim::{Context, Event, Node, NodeId, TimerToken};

use crate::proto::{AquaMsg, RequestId, Wire};
use crate::timing::{ReplyOutcome, TimingFaultHandler};

/// How a client paces its requests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalModel {
    /// One request outstanding at a time; the next is issued `think_time`
    /// after the previous response (the paper's §6 clients).
    ClosedLoop,
    /// Poisson arrivals with the given mean inter-arrival time; requests
    /// are issued regardless of outstanding ones, so they can overlap and
    /// genuinely queue at the replicas.
    OpenLoopPoisson {
        /// Mean inter-arrival time (1/λ).
        mean_interarrival: Duration,
    },
    /// On/off bursts: every `interval`, issue `size` requests
    /// back-to-back. Produces the sudden queue build-ups that distinguish
    /// leading (queue-length) from lagging (delay-history) load signals.
    Bursts {
        /// Requests per burst.
        size: u32,
        /// Time between burst starts.
        interval: Duration,
    },
}

/// Static configuration of one client gateway.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// The group coordinator node.
    pub coordinator: NodeId,
    /// Group cadence parameters.
    pub group: FailureDetectorConfig,
    /// The client's QoS specification.
    pub qos: QosSpec,
    /// Sliding-window size `l` for the information repository.
    pub window: usize,
    /// Request pacing discipline.
    pub arrivals: ArrivalModel,
    /// Delay between receiving a response and the next request (paper: 1 s;
    /// used by [`ArrivalModel::ClosedLoop`]).
    pub think_time: Duration,
    /// Stop after this many requests (paper: 50 per run); `None` = endless.
    pub num_requests: Option<u64>,
    /// Delay before the first request (lets the group form).
    pub start_after: Duration,
    /// Request payload size in bytes.
    pub request_size: u32,
    /// Give up on a request this long after sending it (handles the case
    /// where every selected replica crashed before replying).
    pub give_up_after: Duration,
    /// Method ids cycled across requests (multi-interface extension; a
    /// single-entry vector reproduces the paper's single-method service).
    pub methods: Vec<MethodId>,
    /// If set, actively probe replicas whose performance data is older
    /// than this (§8, extension 3), checking at the same interval.
    pub probe_stale_after: Option<Duration>,
    /// If set, renegotiate to this spec when the QoS callback fires (§4).
    pub renegotiate_to: Option<QosSpec>,
    /// If set, a request that is still unanswered this long after being
    /// issued is retried: Algorithm 1 re-runs over the remaining replicas
    /// and a sibling attempt is multicast (the original stays live; the
    /// earliest reply of either wins). Should be shorter than
    /// `give_up_after` to be useful.
    pub retry_after: Option<Duration>,
    /// The dependability manager's node, when an elastic supervisor runs:
    /// the client forwards its watchdog's calibration alerts there and
    /// honors the fleet-level [`AquaMsg::Directive`]s it sends back
    /// (renegotiate `Pc`, shed load). Requires
    /// [`ClientGateway::with_obs`] — alerts come from the watchdog.
    pub manager: Option<NodeId>,
    /// Watchdog tunables override; supervisor deployments enable
    /// `replica_alerts` here so the manager sees per-replica drift. The
    /// default watchdog config applies when `None`.
    pub calibration: Option<aqua_trace::CalibrationConfig>,
}

impl ClientConfig {
    /// The paper's client loop: think 1 s, 50 requests, minimal payload.
    pub fn paper(coordinator: NodeId, qos: QosSpec) -> Self {
        ClientConfig {
            coordinator,
            group: FailureDetectorConfig::default(),
            qos,
            window: 5,
            arrivals: ArrivalModel::ClosedLoop,
            think_time: Duration::from_secs(1),
            num_requests: Some(50),
            start_after: Duration::from_millis(500),
            request_size: 16,
            give_up_after: Duration::from_secs(5),
            methods: vec![MethodId::DEFAULT],
            probe_stale_after: None,
            renegotiate_to: None,
            retry_after: None,
            manager: None,
            calibration: None,
        }
    }
}

/// Outcome of one request, as observed by the client gateway.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestRecord {
    /// Client-local sequence number.
    pub seq: u64,
    /// When the request was intercepted/sent (`t0` = `t1`).
    pub sent_at: Instant,
    /// How many replicas were selected (the redundancy level).
    pub redundancy: usize,
    /// When the first reply arrived (`t4`), if any.
    pub first_reply_at: Option<Instant>,
    /// End-to-end response time `tr`, if a reply arrived.
    pub response_time: Option<Duration>,
    /// Whether the deadline was met (`false` for give-ups).
    pub timely: bool,
    /// Whether the QoS-violation callback fired on this request.
    pub callback: bool,
}

/// Outcome of trying to issue a single request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IssueResult {
    /// Request multicast; a give-up timer is armed.
    Issued,
    /// No servers in the view (or a view-change race emptied the targets).
    NoServers,
    /// The configured request budget is exhausted.
    Finished,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TimerKind {
    /// Fire the next request (start or think-time expiry).
    IssueRequest,
    /// Give up on request `seq`.
    GiveUp(u64),
    /// Check for stale replica entries and probe them (§8 ext. 3).
    ProbeCheck,
    /// Intermediate retry deadline for request `seq` (the root attempt).
    Retry(u64),
}

/// One buffered calibration alert: `(replica scope, method, observed,
/// promised)`, the fields an [`AquaMsg::AlertReport`] carries.
type BufferedAlert = (Option<u64>, u32, f64, f64);

/// The simulated client gateway node. See the module docs.
pub struct ClientGateway {
    config: ClientConfig,
    handler: Option<TimingFaultHandler>,
    strategy: Option<Box<dyn SelectionStrategy>>,
    agent: Option<MembershipAgent>,
    timers: HashMap<TimerToken, TimerKind>,
    records: Vec<RequestRecord>,
    issued: u64,
    subscribed: Vec<NodeId>,
    finished: bool,
    obs: Option<(aqua_obs::Obs, u64)>,
    /// The run's fault timeline, installed on the handler's observer at
    /// start so emitted spans carry stable fault-window ids.
    fault_windows: Vec<aqua_faults::FaultWindow>,
    /// Root seq → (method, attempt seqs in issue order). Tracked only when
    /// retries are enabled; resolving any attempt retires its siblings.
    retry_state: HashMap<u64, (MethodId, Vec<u64>)>,
    /// Sibling attempt seq → root seq.
    root_of: HashMap<u64, u64>,
    /// Calibration alerts the watchdog hook buffered during the current
    /// event, drained into [`AquaMsg::AlertReport`]s afterwards (hooks
    /// run inside handler calls and cannot send messages themselves).
    alert_buffer: Option<Arc<Mutex<Vec<BufferedAlert>>>>,
    /// Issue no new requests before this instant (escalation directive).
    shed_until: Option<Instant>,
    /// Arrivals suppressed by load shedding so far.
    shed_requests: u64,
}

impl std::fmt::Debug for ClientGateway {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientGateway")
            .field("issued", &self.issued)
            .field("records", &self.records.len())
            .field("finished", &self.finished)
            .finish()
    }
}

impl ClientGateway {
    /// Creates a client gateway with the given selection strategy.
    pub fn new(config: ClientConfig, strategy: Box<dyn SelectionStrategy>) -> Self {
        ClientGateway {
            config,
            handler: None,
            strategy: Some(strategy),
            agent: None,
            timers: HashMap::new(),
            records: Vec::new(),
            issued: 0,
            subscribed: Vec::new(),
            finished: false,
            obs: None,
            fault_windows: Vec::new(),
            retry_state: HashMap::new(),
            root_of: HashMap::new(),
            alert_buffer: None,
            shed_until: None,
            shed_requests: 0,
        }
    }

    /// Enables observability: the handler will record metrics into `obs`
    /// labelled with `client`, and journal one span per request.
    #[must_use]
    pub fn with_obs(mut self, obs: &aqua_obs::Obs, client: u64) -> Self {
        self.obs = Some((obs.clone(), client));
        self
    }

    /// Installs the run's fault timeline: every journalled span is tagged
    /// with the stable ids of the fault windows that overlapped it, giving
    /// the forensics analyzer exact fault joins. No-op without
    /// [`ClientGateway::with_obs`].
    #[must_use]
    pub fn with_fault_windows(mut self, windows: Vec<aqua_faults::FaultWindow>) -> Self {
        self.fault_windows = windows;
        self
    }

    /// Emits the handler's remaining journal spans and flushes the sink.
    /// Call once at the end of a run; no-op without
    /// [`ClientGateway::with_obs`].
    pub fn finish_observability(&mut self) {
        if let Some(handler) = self.handler.as_mut() {
            handler.flush_observability();
        }
    }

    /// The per-request records collected so far (in issue order).
    pub fn records(&self) -> &[RequestRecord] {
        &self.records
    }

    /// The handler, once the node has started.
    pub fn handler(&self) -> Option<&TimingFaultHandler> {
        self.handler.as_ref()
    }

    /// Whether the configured number of requests has completed.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Arrivals suppressed by an escalation's load-shed directive.
    pub fn shed_requests(&self) -> u64 {
        self.shed_requests
    }

    fn handler_mut(&mut self) -> &mut TimingFaultHandler {
        self.handler.as_mut().expect("started")
    }

    fn schedule(&mut self, ctx: &mut Context<'_, Wire>, after: Duration, kind: TimerKind) {
        let token = ctx.set_timer(after);
        self.timers.insert(token, kind);
    }

    fn subscribe_to_new_servers(&mut self, ctx: &mut Context<'_, Wire>) {
        let Some(agent) = self.agent.as_ref() else {
            return;
        };
        let me = ctx.self_id();
        let new_servers: Vec<NodeId> = agent
            .view()
            .servers()
            .map(|m| m.node)
            .filter(|n| !self.subscribed.contains(n))
            .collect();
        if !new_servers.is_empty() {
            ctx.multicast(
                &new_servers,
                GroupMsg::App(AquaMsg::Subscribe { client: me }),
            );
            self.subscribed.extend(new_servers);
        }
    }

    /// Tries to issue exactly one request. All arrival pacing lives in
    /// [`ClientGateway::on_arrival`].
    fn issue_one(&mut self, ctx: &mut Context<'_, Wire>) -> IssueResult {
        if self.finished {
            return IssueResult::Finished;
        }
        // Load shedding (escalation directive): drop the arrival. Pacing
        // continues — closed-loop retries shortly, open-loop arrivals are
        // simply lost for the shed window.
        if self.shed_until.is_some_and(|until| ctx.now() < until) {
            self.shed_requests += 1;
            return IssueResult::NoServers;
        }
        if self
            .config
            .num_requests
            .is_some_and(|limit| self.issued >= limit)
        {
            self.finished = true;
            return IssueResult::Finished;
        }
        let has_servers = self
            .agent
            .as_ref()
            .is_some_and(|a| a.view().servers().count() > 0);
        if !has_servers {
            return IssueResult::NoServers;
        }

        let now = ctx.now();
        let method = if self.config.methods.is_empty() {
            MethodId::DEFAULT
        } else {
            self.config.methods[(self.issued as usize) % self.config.methods.len()]
        };
        let plan = self.handler_mut().plan_request_for(now, Some(method));
        // Map replica ids to their hosts via the current view.
        let view = self.agent.as_ref().expect("started").view();
        let targets: Vec<NodeId> = plan
            .replicas
            .iter()
            .filter_map(|r| view.node_of(*r))
            .collect();
        if targets.is_empty() {
            // Selection raced a view change; drop the pending entry as an
            // immediate give-up.
            self.handler_mut().on_give_up(now, plan.seq);
            return IssueResult::NoServers;
        }

        self.issued += 1;
        let id = RequestId {
            client: ctx.self_id(),
            seq: plan.seq,
        };
        ctx.multicast(
            &targets,
            GroupMsg::App(AquaMsg::Request {
                id,
                method,
                payload_size: self.config.request_size,
            }),
        );
        self.records.push(RequestRecord {
            seq: plan.seq,
            sent_at: now,
            redundancy: targets.len(),
            first_reply_at: None,
            response_time: None,
            timely: false,
            callback: false,
        });
        let give_up_after = self.config.give_up_after;
        self.schedule(ctx, give_up_after, TimerKind::GiveUp(plan.seq));
        if let Some(retry_after) = self.config.retry_after {
            if retry_after < give_up_after {
                self.retry_state.insert(plan.seq, (method, vec![plan.seq]));
                self.schedule(ctx, retry_after, TimerKind::Retry(plan.seq));
            }
        }
        IssueResult::Issued
    }

    /// The intermediate retry deadline passed without a reply: re-run
    /// Algorithm 1 over the remaining replicas and multicast a sibling
    /// attempt for the same logical request.
    fn retry(&mut self, root: u64, ctx: &mut Context<'_, Wire>) {
        let Some((method, _)) = self.retry_state.get(&root).cloned() else {
            return;
        };
        let Some(pending) = self.handler_mut().pending(root).cloned() else {
            return; // already resolved
        };
        if pending.answered {
            return;
        }
        let now = ctx.now();
        let plan = self.handler_mut().plan_retry(
            now,
            Some(method),
            pending.intercepted_at,
            root,
            &pending.selected,
        );
        let Some(plan) = plan else {
            return; // nobody left beyond the original selection
        };
        let view = self.agent.as_ref().expect("started").view();
        let targets: Vec<NodeId> = plan
            .replicas
            .iter()
            .filter_map(|r| view.node_of(*r))
            .collect();
        if targets.is_empty() {
            self.handler_mut().on_abandon(now, plan.seq);
            return;
        }
        ctx.multicast(
            &targets,
            GroupMsg::App(AquaMsg::Request {
                id: RequestId {
                    client: ctx.self_id(),
                    seq: plan.seq,
                },
                method,
                payload_size: self.config.request_size,
            }),
        );
        if let Some((_, attempts)) = self.retry_state.get_mut(&root) {
            attempts.push(plan.seq);
        }
        self.root_of.insert(plan.seq, root);
        if let Some(rec) = self.records.iter_mut().find(|r| r.seq == root) {
            rec.redundancy += targets.len();
        }
    }

    /// Resolves an attempt seq to the root request it belongs to and
    /// retires its sibling attempts.
    fn settle_attempts(&mut self, delivered: u64, now: Instant) -> u64 {
        let root = self.root_of.get(&delivered).copied().unwrap_or(delivered);
        if let Some((_, attempts)) = self.retry_state.remove(&root) {
            for attempt in attempts {
                self.root_of.remove(&attempt);
                if attempt != delivered {
                    self.handler_mut().on_abandon(now, attempt);
                }
            }
        }
        root
    }

    /// Handles one arrival tick according to the pacing discipline.
    fn issue_request(&mut self, ctx: &mut Context<'_, Wire>) {
        const RETRY: Duration = Duration::from_millis(50);
        match self.config.arrivals {
            ArrivalModel::ClosedLoop => match self.issue_one(ctx) {
                IssueResult::Issued | IssueResult::Finished => {}
                // Group still forming: retry shortly.
                IssueResult::NoServers => self.schedule(ctx, RETRY, TimerKind::IssueRequest),
            },
            ArrivalModel::OpenLoopPoisson { mean_interarrival } => {
                // Open-loop clients pace themselves at issue time,
                // independent of when (or whether) replies arrive; a
                // no-server arrival is simply lost.
                let outcome = self.issue_one(ctx);
                if !matches!(outcome, IssueResult::Finished) {
                    let u: f64 = rand::Rng::gen_range(ctx.rng(), 0.0..1.0f64);
                    let gap = mean_interarrival.mul_f64(-(1.0 - u).ln());
                    self.schedule(
                        ctx,
                        gap.max(Duration::from_nanos(1)),
                        TimerKind::IssueRequest,
                    );
                }
            }
            ArrivalModel::Bursts { size, interval } => {
                let mut outcome = IssueResult::Issued;
                for _ in 0..size.max(1) {
                    outcome = self.issue_one(ctx);
                    if !matches!(outcome, IssueResult::Issued) {
                        break;
                    }
                }
                match outcome {
                    IssueResult::Finished => {}
                    IssueResult::NoServers => self.schedule(ctx, RETRY, TimerKind::IssueRequest),
                    IssueResult::Issued => self.schedule(ctx, interval, TimerKind::IssueRequest),
                }
            }
        }
    }

    /// Probes every replica whose repository entry has gone stale (§8,
    /// extension 3), then re-arms the check timer.
    fn probe_stale(&mut self, ctx: &mut Context<'_, Wire>) {
        let Some(staleness) = self.config.probe_stale_after else {
            return;
        };
        if !self.finished {
            let now = ctx.now();
            let stale = self.handler_mut().stale_replicas(now, staleness);
            for replica in stale {
                let plan = self.handler_mut().plan_probe(now, replica);
                let Some(node) = self.agent.as_ref().and_then(|a| a.view().node_of(replica)) else {
                    self.handler_mut().on_give_up(now, plan.seq);
                    continue;
                };
                ctx.send(
                    node,
                    GroupMsg::App(AquaMsg::Request {
                        id: RequestId {
                            client: ctx.self_id(),
                            seq: plan.seq,
                        },
                        method: MethodId::DEFAULT,
                        payload_size: 0,
                    }),
                );
                let give_up = self.config.give_up_after;
                self.schedule(ctx, give_up, TimerKind::GiveUp(plan.seq));
            }
            self.schedule(ctx, staleness, TimerKind::ProbeCheck);
        }
    }

    /// The give-up timer fired; if the request is still outstanding, record
    /// the timing failure and move on. With retries in play the newest
    /// attempt carries the single give-up; earlier attempts retire.
    fn give_up(&mut self, seq: u64, ctx: &mut Context<'_, Wire>) {
        let now = ctx.now();
        let resolved = if let Some((_, attempts)) = self.retry_state.remove(&seq) {
            let last = *attempts.last().expect("at least the root attempt");
            for attempt in &attempts {
                self.root_of.remove(attempt);
                if *attempt != last {
                    self.handler_mut().on_abandon(now, *attempt);
                }
            }
            self.handler_mut().on_give_up(now, last)
        } else {
            self.handler_mut().on_give_up(now, seq)
        };
        if resolved {
            if let Some(rec) = self.records.iter_mut().find(|r| r.seq == seq) {
                rec.timely = false;
            }
            self.finish_request(ctx);
        }
    }

    /// Called when a request resolves (first reply or give-up); closed-loop
    /// clients schedule their next request from here.
    fn finish_request(&mut self, ctx: &mut Context<'_, Wire>) {
        if self
            .config
            .num_requests
            .is_some_and(|limit| self.issued >= limit)
        {
            self.finished = true;
            return;
        }
        if self.config.arrivals == ArrivalModel::ClosedLoop {
            let think = self.config.think_time;
            self.schedule(ctx, think, TimerKind::IssueRequest);
        }
    }

    fn on_app(&mut self, msg: AquaMsg, ctx: &mut Context<'_, Wire>) {
        match msg {
            AquaMsg::Reply {
                id,
                replica,
                perf,
                payload_size: _,
            } => {
                let now = ctx.now();
                let outcome = self.handler_mut().on_reply(now, id.seq, replica, perf);
                if let ReplyOutcome::Deliver {
                    response_time,
                    verdict,
                } = outcome
                {
                    let root = self.settle_attempts(id.seq, now);
                    if let Some(rec) = self.records.iter_mut().find(|r| r.seq == root) {
                        rec.first_reply_at = Some(now);
                        rec.response_time = Some(response_time);
                        rec.timely = verdict.is_timely();
                        rec.callback = verdict.should_notify();
                    }
                    if verdict.should_notify() {
                        if let Some(new_qos) = self.config.renegotiate_to {
                            self.handler_mut().renegotiate(new_qos);
                        }
                    }
                    self.finish_request(ctx);
                }
            }
            AquaMsg::PerfUpdate { replica, perf } => {
                let now = ctx.now();
                self.handler_mut().on_perf_update(now, replica, perf);
            }
            AquaMsg::Directive {
                renegotiate_pc,
                shed_for,
            } => {
                // A fleet-level escalation from the supervisor: adapt the
                // promise instead of the fleet. Only honored when a
                // manager is configured — a stray directive from an
                // unknown sender must not move our QoS.
                if self.config.manager.is_none() {
                    return;
                }
                if let Some(pc) = renegotiate_pc {
                    let current = self.handler_mut().qos();
                    // Only ever renegotiate the promise downward.
                    if pc < current.min_probability() {
                        if let Ok(relaxed) = QosSpec::new(current.deadline(), pc) {
                            self.handler_mut().renegotiate(relaxed);
                        }
                    }
                }
                if let Some(shed) = shed_for {
                    let until = ctx.now().saturating_add(shed);
                    self.shed_until = Some(match self.shed_until {
                        Some(existing) => existing.max(until),
                        None => until,
                    });
                }
            }
            // Requests/subscriptions are not addressed to clients.
            _ => {}
        }
    }

    /// Forwards calibration alerts the watchdog hook buffered during this
    /// event to the dependability manager.
    fn forward_alerts(&mut self, ctx: &mut Context<'_, Wire>) {
        let Some(manager) = self.config.manager else {
            return;
        };
        let Some(buffer) = self.alert_buffer.as_ref() else {
            return;
        };
        // The guard lives only for this statement: the buffered alerts
        // are moved out before any message goes on the wire.
        let pending: Vec<BufferedAlert> = buffer
            .lock()
            .map(|mut pending| pending.drain(..).collect())
            .unwrap_or_default();
        for (replica, method, observed, promised) in pending {
            ctx.send(
                manager,
                GroupMsg::App(AquaMsg::AlertReport {
                    replica,
                    method,
                    observed,
                    promised,
                }),
            );
        }
    }
}

impl Node<Wire> for ClientGateway {
    fn on_event(&mut self, event: Event<Wire>, ctx: &mut Context<'_, Wire>) {
        match event {
            Event::Started => {
                let strategy = self.strategy.take().expect("strategy set at construction");
                let mut handler =
                    TimingFaultHandler::new(self.config.qos, self.config.window, strategy);
                if let Some((obs, client)) = self.obs.as_ref() {
                    handler.attach_obs(obs, Some(*client));
                    if !self.fault_windows.is_empty() {
                        handler.set_fault_windows(self.fault_windows.clone());
                    }
                    if let Some(observer) = handler.observer_mut() {
                        // Reconfigure before hooking: configure_watchdog
                        // replaces the watchdog, hooks and all.
                        if let Some(calibration) = self.config.calibration {
                            observer.configure_watchdog(calibration);
                        }
                        if self.config.manager.is_some() {
                            let buffer = Arc::new(Mutex::new(Vec::new()));
                            let sink = Arc::clone(&buffer);
                            observer.watchdog_mut().add_hook(move |alert| {
                                if let Ok(mut pending) = sink.lock() {
                                    pending.push((
                                        alert.replica,
                                        alert.method,
                                        alert.observed,
                                        alert.promised,
                                    ));
                                }
                            });
                            self.alert_buffer = Some(buffer);
                        }
                    }
                }
                self.handler = Some(handler);
                self.finished = false;
                let me = Member::client(ctx.self_id());
                let mut agent =
                    MembershipAgent::new(self.config.coordinator, me, self.config.group);
                agent.on_started(ctx);
                self.agent = Some(agent);
                let start_after = self.config.start_after;
                self.schedule(ctx, start_after, TimerKind::IssueRequest);
                if let Some(interval) = self.config.probe_stale_after {
                    self.schedule(ctx, interval, TimerKind::ProbeCheck);
                }
            }
            Event::Timer { token } => {
                if let Some(agent) = self.agent.as_mut() {
                    if agent.on_timer(token, ctx) {
                        return;
                    }
                }
                match self.timers.remove(&token) {
                    Some(TimerKind::IssueRequest) => self.issue_request(ctx),
                    Some(TimerKind::ProbeCheck) => self.probe_stale(ctx),
                    Some(TimerKind::GiveUp(seq)) => self.give_up(seq, ctx),
                    Some(TimerKind::Retry(seq)) => self.retry(seq, ctx),
                    None => {}
                }
            }
            Event::Message { payload, .. } => match payload {
                GroupMsg::App(msg) => self.on_app(msg, ctx),
                GroupMsg::ViewChange(view) => {
                    let installed = self
                        .agent
                        .as_mut()
                        .expect("started")
                        .on_view_change(view)
                        .map(|v| v.replica_ids().collect::<Vec<_>>());
                    if let Some(servers) = installed {
                        let now = ctx.now();
                        self.handler_mut().on_view(now, servers);
                        self.subscribe_to_new_servers(ctx);
                    }
                }
                _ => {}
            },
        }
        // Alerts the watchdog raised while handling this event go out to
        // the manager now, from event-loop context.
        self.forward_alerts(ctx);
    }
}
