//! The application-level wire protocol between AQuA gateways (§5.4.1).
//!
//! Requests flow client → selected replicas; replies carry the piggybacked
//! performance data (`ts`, `tq`, queue length); replicas additionally push
//! [`AquaMsg::PerfUpdate`]s to every subscriber after servicing a request.

use aqua_core::qos::ReplicaId;
use aqua_core::repository::{MethodId, PerfReport};
use lan_sim::{NodeId, Payload};

/// Globally unique request identity: issuing client + per-client sequence
/// number (the "sequence number of the message" the handler records).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId {
    /// The client gateway's node.
    pub client: NodeId,
    /// Client-local sequence number.
    pub seq: u64,
}

/// Application messages exchanged through the multicast group.
#[derive(Debug, Clone)]
pub enum AquaMsg {
    /// A client request, multicast to the selected replica subset.
    Request {
        /// Request identity.
        id: RequestId,
        /// Invoked method (single-interface services use the default).
        method: MethodId,
        /// Marshalled argument size in bytes (drives the bandwidth term).
        payload_size: u32,
    },
    /// A replica's reply, carrying the performance data the client uses to
    /// update its repository and measure the gateway-to-gateway delay.
    Reply {
        /// Request identity this reply answers.
        id: RequestId,
        /// The servicing replica.
        replica: ReplicaId,
        /// Piggybacked measurements (`ts`, `tq`, queue length).
        perf: PerfReport,
        /// Reply payload size in bytes.
        payload_size: u32,
    },
    /// A client subscribes to a replica group's performance updates.
    Subscribe {
        /// The subscribing client gateway.
        client: NodeId,
    },
    /// A replica pushes fresh performance data to a subscriber.
    PerfUpdate {
        /// The publishing replica.
        replica: ReplicaId,
        /// The measurements of the request it just serviced.
        perf: PerfReport,
    },
    /// The dependability manager activates a standby replica (Proteus,
    /// §2): the target joins the service group and starts serving.
    Activate,
    /// The elastic supervisor drains a replica for a rolling restart:
    /// the target leaves the group gracefully, finishes its queued work,
    /// and goes dormant — back in the standby pool until re-activated.
    Drain,
    /// A client gateway forwards one QoS-calibration alert from its
    /// watchdog to the dependability manager — the supervisor's
    /// observation plane.
    AlertReport {
        /// The sick replica for replica-scoped alerts; `None` for
        /// set-scoped (whole-selection) drift, the overload signal.
        replica: Option<u64>,
        /// Method whose calibration degraded.
        method: u32,
        /// Rolling observed success rate at alert time.
        observed: f64,
        /// Rolling promised (set scope) or predicted (replica scope)
        /// rate the observation fell short of.
        promised: f64,
    },
    /// A fleet-level escalation directive from the supervisor to every
    /// client: correlated degradation detected, adapt the promise rather
    /// than the fleet.
    Directive {
        /// Renegotiate to this `Pc` (same deadline) when set.
        renegotiate_pc: Option<f64>,
        /// Issue no new requests for this long (shed load), when set.
        shed_for: Option<aqua_core::time::Duration>,
    },
}

impl Payload for AquaMsg {
    fn wire_size(&self) -> usize {
        match self {
            AquaMsg::Request { payload_size, .. } => 40 + *payload_size as usize,
            AquaMsg::Reply { payload_size, .. } => 72 + *payload_size as usize,
            AquaMsg::Subscribe { .. } => 24,
            AquaMsg::PerfUpdate { .. } => 56,
            AquaMsg::Activate => 16,
            AquaMsg::Drain => 16,
            AquaMsg::AlertReport { .. } => 48,
            AquaMsg::Directive { .. } => 32,
        }
    }
}

/// The concrete simulation payload: group control + application messages.
pub type Wire = aqua_group::GroupMsg<AquaMsg>;

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_core::time::Duration;

    #[test]
    fn wire_sizes_reflect_payloads() {
        let small = AquaMsg::Request {
            id: RequestId {
                client: NodeId::new(0),
                seq: 1,
            },
            method: MethodId::DEFAULT,
            payload_size: 0,
        };
        let big = AquaMsg::Request {
            id: RequestId {
                client: NodeId::new(0),
                seq: 2,
            },
            method: MethodId::DEFAULT,
            payload_size: 4_096,
        };
        assert!(big.wire_size() > small.wire_size());
        let reply = AquaMsg::Reply {
            id: RequestId {
                client: NodeId::new(0),
                seq: 1,
            },
            replica: ReplicaId::new(0),
            perf: PerfReport::new(Duration::from_millis(1), Duration::ZERO, 0),
            payload_size: 8,
        };
        assert!(reply.wire_size() > small.wire_size());
    }

    #[test]
    fn request_ids_order_by_client_then_seq() {
        let a = RequestId {
            client: NodeId::new(0),
            seq: 5,
        };
        let b = RequestId {
            client: NodeId::new(1),
            seq: 0,
        };
        assert!(a < b);
    }
}
