//! Property tests for the timing fault handler as a state machine: random
//! sequences of replies, perf updates, view changes, and give-ups must
//! never break its accounting invariants.

use aqua_core::qos::{QosSpec, ReplicaId};
use aqua_core::repository::PerfReport;
use aqua_core::time::{Duration, Instant};
use aqua_gateway::{ReplyOutcome, TimingFaultHandler};
use aqua_strategies::ModelBased;
use proptest::prelude::*;

fn ms(v: u64) -> Duration {
    Duration::from_millis(v)
}

/// An abstract action to drive the handler with.
#[derive(Debug, Clone)]
enum Action {
    PlanRequest,
    /// Reply to the `nth` most recent plan from its `k`-th selected
    /// replica, after `latency_ms`.
    Reply {
        nth: usize,
        k: usize,
        latency_ms: u64,
        service_ms: u64,
        queue_ms: u64,
    },
    /// Push a perf update from replica `r % pool`.
    PerfUpdate {
        r: u64,
        service_ms: u64,
    },
    /// Give up on the `nth` most recent plan.
    GiveUp {
        nth: usize,
    },
    /// Install a view containing replicas with index bitmask `mask`.
    View {
        mask: u8,
    },
}

fn action() -> impl Strategy<Value = Action> {
    prop_oneof![
        3 => Just(Action::PlanRequest),
        4 => (0usize..4, 0usize..6, 1u64..600, 1u64..300, 0u64..100).prop_map(
            |(nth, k, latency_ms, service_ms, queue_ms)| Action::Reply {
                nth,
                k,
                latency_ms,
                service_ms,
                queue_ms,
            }
        ),
        2 => (0u64..6, 1u64..300).prop_map(|(r, service_ms)| Action::PerfUpdate { r, service_ms }),
        1 => (0usize..4).prop_map(|nth| Action::GiveUp { nth }),
        1 => (1u8..63).prop_map(|mask| Action::View { mask }),
    ]
}

/// An abstract action for the probation-flapping state machine.
#[derive(Debug, Clone)]
enum FlapAction {
    /// Toggle replica `r % pool` out of / back into the view.
    Flap { r: u64 },
    /// Socket-reconnect path: `on_rejoin` for replica `r % pool`.
    Reconnect { r: u64 },
    /// A perf sample from replica `r % pool`.
    Perf { r: u64, service_ms: u64 },
    /// Plan a request (probation members may only shadow).
    Plan,
}

fn flap_action() -> impl Strategy<Value = FlapAction> {
    prop_oneof![
        3 => (0u64..5).prop_map(|r| FlapAction::Flap { r }),
        1 => (0u64..5).prop_map(|r| FlapAction::Reconnect { r }),
        4 => (0u64..5, 1u64..300).prop_map(|(r, service_ms)| FlapAction::Perf { r, service_ms }),
        2 => Just(FlapAction::Plan),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn handler_accounting_never_breaks(actions in prop::collection::vec(action(), 1..80)) {
        let pool = 5u64;
        let qos = QosSpec::new(ms(200), 0.9).unwrap();
        let mut handler = TimingFaultHandler::new(qos, 5, Box::new(ModelBased::default()));
        for i in 0..pool {
            handler.repository_mut().insert_replica(ReplicaId::new(i));
        }

        let mut now = Instant::EPOCH;
        let mut plans: Vec<(u64, Vec<ReplicaId>, Instant)> = Vec::new();
        let mut delivered = 0u64;
        let mut gave_up = 0u64;

        for act in actions {
            now += ms(1);
            match act {
                Action::PlanRequest => {
                    let plan = handler.plan_request(now);
                    prop_assert!(
                        plan.replicas.len() <= handler.repository().len().max(1),
                        "never selects more than the pool"
                    );
                    // Selected replicas are all known.
                    for r in plan.replicas.iter() {
                        prop_assert!(handler.repository().contains(*r));
                    }
                    plans.push((plan.seq, plan.replicas.to_vec(), now));
                }
                Action::Reply { nth, k, latency_ms, service_ms, queue_ms } => {
                    let Some((seq, replicas, sent_at)) =
                        plans.iter().rev().nth(nth).cloned() else { continue };
                    let Some(replica) = replicas.get(k % replicas.len().max(1)).copied()
                        else { continue };
                    let at = sent_at + ms(latency_ms);
                    now = now.max(at);
                    let perf = PerfReport::new(ms(service_ms), ms(queue_ms), 0);
                    match handler.on_reply(now, seq, replica, perf) {
                        ReplyOutcome::Deliver { response_time, .. } => {
                            delivered += 1;
                            prop_assert!(response_time >= Duration::ZERO);
                        }
                        ReplyOutcome::Redundant | ReplyOutcome::Unknown => {}
                    }
                }
                Action::PerfUpdate { r, service_ms } => {
                    handler.on_perf_update(
                        now,
                        ReplicaId::new(r % pool),
                        PerfReport::new(ms(service_ms), ms(0), 0),
                    );
                }
                Action::GiveUp { nth } => {
                    if let Some((seq, _, _)) = plans.iter().rev().nth(nth).cloned() {
                        if handler.on_give_up(now, seq) {
                            gave_up += 1;
                            // Idempotent.
                            prop_assert!(!handler.on_give_up(now, seq));
                        }
                    }
                }
                Action::View { mask } => {
                    let servers: Vec<ReplicaId> = (0..pool)
                        .filter(|i| mask & (1 << i) != 0)
                        .map(ReplicaId::new)
                        .collect();
                    handler.on_view(Instant::EPOCH, servers.clone());
                    prop_assert_eq!(handler.repository().len(), servers.len());
                }
            }

            // Invariants that must hold after every action:
            let stats = handler.stats();
            prop_assert_eq!(stats.delivered, delivered);
            prop_assert_eq!(stats.gave_up, gave_up);
            prop_assert_eq!(stats.requests, plans.len() as u64);
            // The detector never counts more outcomes than finalized
            // requests (each request is finalized at most once).
            prop_assert!(handler.detector().total() <= stats.requests);
            prop_assert_eq!(handler.detector().total(), delivered + gave_up);
            // Pending requests are exactly the unfinalized ones.
            prop_assert!(handler.pending_count() as u64 <= stats.requests);
            // Rates are probabilities.
            let rate = handler.detector().failure_rate();
            prop_assert!((0.0..=1.0).contains(&rate));
        }
    }

    /// Crash-recover flapping can never escape probation early: however a
    /// replica's leaves and rejoins interleave with perf samples and
    /// plans, every rejoin re-arms a full `l`-sample probation, exactly
    /// `l` fresh samples clear it, and while it lasts the replica is
    /// never a trusted candidate — only a shadow at the tail of a plan.
    #[test]
    fn flapping_replicas_never_escape_probation_early(
        actions in prop::collection::vec(flap_action(), 1..100),
    ) {
        let pool = 5u64;
        let l = 5u32; // repository window == probation length
        let qos = QosSpec::new(ms(200), 0.9).unwrap();
        let mut handler = TimingFaultHandler::new(qos, l as usize, Box::new(ModelBased::default()));
        let mut now = Instant::EPOCH;
        // Everyone starts in the view, so every later reappearance is a
        // rejoin (first joins are warmed by cold-start, not probation).
        handler.on_view(now, (0..pool).map(ReplicaId::new));

        // The shadow model: view membership and probation samples left.
        let mut in_view = [true; 5];
        let mut remaining = [0u32; 5];

        for act in actions {
            now += ms(1);
            match act {
                FlapAction::Flap { r } => {
                    let r = (r % pool) as usize;
                    in_view[r] = !in_view[r];
                    if in_view[r] {
                        remaining[r] = l; // rejoin re-arms a full window
                    }
                    let view: Vec<ReplicaId> = (0..pool)
                        .filter(|i| in_view[*i as usize])
                        .map(ReplicaId::new)
                        .collect();
                    handler.on_view(now, view);
                }
                FlapAction::Reconnect { r } => {
                    let r = r % pool;
                    handler.on_rejoin(now, ReplicaId::new(r));
                    // A no-op for present members; a rejoin otherwise.
                    if !in_view[r as usize] {
                        in_view[r as usize] = true;
                        remaining[r as usize] = l;
                    }
                }
                FlapAction::Perf { r, service_ms } => {
                    let r = r % pool;
                    handler.on_perf_update(
                        now,
                        ReplicaId::new(r),
                        PerfReport::new(ms(service_ms), ms(0), 0),
                    );
                    // Samples for departed replicas are dropped, fresh
                    // ones pay down the probation debt.
                    if in_view[r as usize] {
                        remaining[r as usize] = remaining[r as usize].saturating_sub(1);
                    }
                }
                FlapAction::Plan => {
                    let plan = handler.plan_request(now);
                    let mut seen_shadow = false;
                    for r in plan.replicas.iter() {
                        let on_probation = handler
                            .repository()
                            .stats(*r)
                            .is_some_and(|s| s.is_on_probation());
                        if seen_shadow {
                            prop_assert!(
                                on_probation,
                                "trusted member {r:?} after a probation shadow"
                            );
                        }
                        seen_shadow |= on_probation;
                    }
                }
            }

            // The handler must agree with the shadow model exactly.
            for i in 0..pool as usize {
                let id = ReplicaId::new(i as u64);
                let stats = handler.repository().stats(id);
                prop_assert_eq!(stats.is_some(), in_view[i]);
                if let Some(stats) = stats {
                    prop_assert_eq!(
                        stats.probation_remaining(), remaining[i],
                        "replica {} probation debt diverged", i
                    );
                    prop_assert_eq!(stats.is_on_probation(), remaining[i] > 0);
                }
            }
            // Strategies may only trust replicas that are off probation.
            for (_, stats) in handler.repository().selectable() {
                prop_assert!(!stats.is_on_probation());
            }
        }
    }

    #[test]
    fn handler_is_deterministic(actions in prop::collection::vec(action(), 1..40)) {
        fn run(actions: &[Action]) -> (u64, u64, u64, usize) {
            let qos = QosSpec::new(ms(200), 0.5).unwrap();
            let mut handler =
                TimingFaultHandler::new(qos, 5, Box::new(ModelBased::default()));
            for i in 0..4u64 {
                handler.repository_mut().insert_replica(ReplicaId::new(i));
            }
            let mut now = Instant::EPOCH;
            let mut plans = Vec::new();
            for act in actions {
                now += ms(1);
                match act {
                    Action::PlanRequest => {
                        let p = handler.plan_request(now);
                        plans.push((p.seq, p.replicas));
                    }
                    Action::Reply { nth, k, latency_ms, service_ms, queue_ms } => {
                        if let Some((seq, replicas)) = plans.iter().rev().nth(*nth) {
                            if let Some(r) = replicas.get(k % replicas.len().max(1)) {
                                let _ = handler.on_reply(
                                    now + ms(*latency_ms),
                                    *seq,
                                    *r,
                                    PerfReport::new(ms(*service_ms), ms(*queue_ms), 0),
                                );
                            }
                        }
                    }
                    Action::PerfUpdate { r, service_ms } => handler.on_perf_update(
                        now,
                        ReplicaId::new(r % 4),
                        PerfReport::new(ms(*service_ms), ms(0), 0),
                    ),
                    Action::GiveUp { nth } => {
                        if let Some((seq, _)) = plans.iter().rev().nth(*nth) {
                            let _ = handler.on_give_up(now, *seq);
                        }
                    }
                    Action::View { mask } => handler.on_view(
                        Instant::EPOCH,
                        (0..4u64)
                            .filter(|i| mask & (1 << i) != 0)
                            .map(ReplicaId::new)
                            .collect::<Vec<_>>(),
                    ),
                }
            }
            let s = handler.stats();
            (s.delivered, s.gave_up, s.replicas_selected, handler.pending_count())
        }
        prop_assert_eq!(run(&actions), run(&actions));
    }
}
