//! Criterion bench for Algorithm 1 in isolation (the ~10% of Figure 3's
//! overhead), scaled far beyond the paper's 8 replicas to show the
//! algorithm itself is O(n log n) and never the bottleneck.

use aqua_core::qos::ReplicaId;
use aqua_core::select::{select_replicas, Candidate};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn candidates(n: usize, seed: u64) -> Vec<Candidate> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|i| Candidate::new(ReplicaId::new(i as u64), rng.gen::<f64>()))
        .collect()
}

fn bench_algorithm_1(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm1_scaling");
    for n in [8usize, 64, 512, 4096] {
        let cands = candidates(n, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &cands, |b, cands| {
            b.iter(|| std::hint::black_box(select_replicas(cands, 0.999)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_algorithm_1);
criterion_main!(benches);
