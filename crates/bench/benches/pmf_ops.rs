//! Criterion bench for the pmf algebra underlying the model: relative-
//! frequency estimation, convolution (the ~90% of Figure 3's overhead),
//! and CDF evaluation.

use aqua_core::pmf::{ConvScratch, Pmf};
use aqua_core::time::Duration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn samples(n: usize, spread_ms: u64, seed: u64) -> Vec<Duration> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Duration::from_millis(100 + rng.gen_range(0..spread_ms.max(1))))
        .collect()
}

fn bench_from_samples(c: &mut Criterion) {
    let mut group = c.benchmark_group("pmf_from_samples");
    for n in [5usize, 20, 100] {
        let data = samples(n, 150, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, data| {
            b.iter(|| {
                Pmf::from_samples(data.iter().copied(), Duration::from_millis(1))
                    .expect("non-empty")
            });
        });
    }
    group.finish();
}

fn bench_convolve(c: &mut Criterion) {
    let mut group = c.benchmark_group("pmf_convolve");
    for spread in [20u64, 100, 300] {
        let a = Pmf::from_samples(samples(20, spread, 2), Duration::from_millis(1)).unwrap();
        let b_pmf = Pmf::from_samples(samples(20, spread, 3), Duration::from_millis(1)).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("spread_{spread}ms")),
            &(a, b_pmf),
            |bench, (a, b_pmf)| {
                bench.iter(|| a.convolve(b_pmf).expect("same bucket width"));
            },
        );
    }
    group.finish();
}

fn bench_cdf(c: &mut Criterion) {
    let pmf = Pmf::from_samples(samples(20, 300, 4), Duration::from_millis(1)).unwrap();
    c.bench_function("pmf_cdf", |b| {
        b.iter(|| std::hint::black_box(pmf.cdf(Duration::from_millis(180))));
    });
}

/// The cache's steady-state lookup: a prefix-sum table built once, then
/// O(1) point lookups — versus the per-query prefix sum of `Pmf::cdf`.
fn bench_cached_cdf(c: &mut Criterion) {
    let pmf = Pmf::from_samples(samples(20, 300, 4), Duration::from_millis(1)).unwrap();
    let table = pmf.cumulative();
    c.bench_function("pmf_cached_cdf_lookup", |b| {
        b.iter(|| std::hint::black_box(table.value_at(Duration::from_millis(180))));
    });
    c.bench_function("pmf_cumulative_build", |b| {
        b.iter(|| std::hint::black_box(pmf.cumulative()));
    });
}

/// The q-fold QueueScaled convolution: exponentiation-by-squaring with
/// reused scratch versus the sequential fold it replaced.
fn bench_q_fold_convolution(c: &mut Criterion) {
    let mut group = c.benchmark_group("pmf_q_fold");
    let service = Pmf::from_samples(samples(20, 100, 5), Duration::from_millis(1)).unwrap();
    for q in [4u32, 16, 32] {
        group.bench_with_input(
            BenchmarkId::new("self_convolve", q),
            &service,
            |bench, service| {
                let mut scratch = ConvScratch::new();
                bench.iter(|| service.self_convolve(q, 1e-12, &mut scratch));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sequential", q),
            &service,
            |bench, service| {
                bench.iter(|| {
                    let mut wait = Pmf::point(Duration::ZERO, Duration::from_millis(1)).unwrap();
                    for _ in 0..q {
                        wait = wait.convolve(service).unwrap();
                    }
                    wait
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_from_samples,
    bench_convolve,
    bench_cdf,
    bench_cached_cdf,
    bench_q_fold_convolution
);
criterion_main!(benches);
