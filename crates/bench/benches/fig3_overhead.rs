//! Criterion bench for **Figure 3**: per-request overhead of the selection
//! algorithm (distribution computation + Algorithm 1) as a function of the
//! number of replicas and the sliding-window size.

use aqua_bench::synthetic::synthetic_selector;
use aqua_core::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_selection_overhead(c: &mut Criterion) {
    let qos = QosSpec::new(Duration::from_millis(150), 0.9).expect("valid spec");
    let mut group = c.benchmark_group("fig3_selection_overhead");
    for l in [5usize, 10, 20] {
        for n in [2usize, 3, 4, 5, 6, 7, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("window_{l}"), n),
                &(n, l),
                |b, &(n, l)| {
                    let mut selector = synthetic_selector(n, l, 42);
                    b.iter(|| std::hint::black_box(selector.select(&qos)));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_selection_overhead);
criterion_main!(benches);
