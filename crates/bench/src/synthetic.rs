//! Synthetic repositories for micro-benchmarking the selection algorithm
//! (Figure 3) without running a full simulation.

use aqua_core::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Builds a warmed-up repository with `n` replicas and a full sliding
/// window of `l` samples each, drawn to resemble the paper's workload
/// (service ≈ N(100 ms, 50 ms), small queue delays, ms-scale gateway
/// delays).
pub fn synthetic_repository(n: usize, l: usize, seed: u64) -> InfoRepository {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut repo = InfoRepository::new(l);
    for i in 0..n {
        let id = ReplicaId::new(i as u64);
        repo.insert_replica(id);
        for _ in 0..l {
            let service_ms: f64 = 100.0 + 50.0 * (rng.gen::<f64>() - 0.5) * 3.46; // ~uniform matching σ≈50
            let queue_ms: f64 = rng.gen::<f64>() * 20.0;
            repo.record_perf(
                id,
                PerfReport::new(
                    Duration::from_millis_f64(service_ms.max(0.0)),
                    Duration::from_millis_f64(queue_ms),
                    rng.gen_range(0..3),
                ),
                Instant::EPOCH,
            );
        }
        repo.record_gateway_delay(
            id,
            Duration::from_micros(rng.gen_range(1_000..6_000)),
            Instant::EPOCH,
        );
    }
    repo
}

/// A ready-to-run selector over a synthetic repository.
pub fn synthetic_selector(n: usize, l: usize, seed: u64) -> ReplicaSelector {
    let mut selector = ReplicaSelector::new(l, SelectorConfig::default());
    *selector.repository_mut() = synthetic_repository(n, l, seed);
    selector
}

/// Measures the mean per-decision overhead δ (and its model/selection
/// split) over `iters` scheduling decisions.
pub fn measure_overhead(n: usize, l: usize, qos: &QosSpec, iters: u32) -> OverheadMeasurement {
    let mut selector = synthetic_selector(n, l, 42);
    // Warm up caches and the δ tracker.
    for _ in 0..16 {
        let _ = selector.select(qos);
    }
    let mut total = Duration::ZERO;
    let mut model = Duration::ZERO;
    let mut select = Duration::ZERO;
    for _ in 0..iters {
        let decision = selector.select(qos);
        total = total.saturating_add(decision.overhead());
        model = model.saturating_add(decision.model_time);
        select = select.saturating_add(decision.select_time);
    }
    OverheadMeasurement {
        n,
        l,
        mean_total: total / iters as u64,
        mean_model: model / iters as u64,
        mean_select: select / iters as u64,
    }
}

/// The result of [`measure_overhead`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverheadMeasurement {
    /// Number of replicas.
    pub n: usize,
    /// Sliding-window size.
    pub l: usize,
    /// Mean total δ per decision.
    pub mean_total: Duration,
    /// Mean time computing distribution functions.
    pub mean_model: Duration,
    /// Mean time in Algorithm 1 proper.
    pub mean_select: Duration,
}

impl OverheadMeasurement {
    /// Fraction of the overhead spent computing distributions (the paper
    /// reports ≈90%).
    pub fn model_fraction(&self) -> f64 {
        let t = self.mean_total.as_nanos();
        if t == 0 {
            return 0.0;
        }
        self.mean_model.as_nanos() as f64 / t as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_repository_is_warm() {
        let repo = synthetic_repository(7, 5, 1);
        assert_eq!(repo.len(), 7);
        assert!(repo.all_warm());
        for (_, stats) in repo.iter() {
            let h = stats.history(MethodId::DEFAULT).unwrap();
            assert_eq!(h.len(), 5, "window filled");
        }
    }

    #[test]
    fn selector_selects_over_synthetic_data() {
        let mut selector = synthetic_selector(7, 5, 2);
        let qos = QosSpec::new(Duration::from_millis(200), 0.9).unwrap();
        let d = selector.select(&qos);
        assert_eq!(d.reason, SelectionReason::Model);
        assert!(d.selection.redundancy() >= 2);
    }

    #[test]
    fn overhead_measurement_is_positive_and_split() {
        let qos = QosSpec::new(Duration::from_millis(150), 0.9).unwrap();
        let m = measure_overhead(7, 5, &qos, 50);
        assert!(m.mean_total > Duration::ZERO);
        assert!(m.mean_model <= m.mean_total);
        let f = m.model_fraction();
        assert!((0.0..=1.0).contains(&f));
    }

    #[test]
    fn overhead_grows_with_window_size() {
        let qos = QosSpec::new(Duration::from_millis(150), 0.9).unwrap();
        let small = measure_overhead(7, 5, &qos, 200);
        let large = measure_overhead(7, 20, &qos, 200);
        assert!(
            large.mean_total >= small.mean_total,
            "l=20 ({}) should cost at least l=5 ({})",
            large.mean_total,
            small.mean_total
        );
    }
}
