//! # aqua-bench — benchmarks and figure regeneration
//!
//! Shared harness code for the criterion benches (`benches/`) and the
//! experiment binaries (`src/bin/`) that regenerate every figure of the
//! paper's evaluation (§6). See DESIGN.md's experiment index for the
//! mapping from paper figure to binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod paper_eval;
pub mod synthetic;

/// Opens the observability sink requested via the `AQUA_OBS` environment
/// variable (see [`aqua_obs::dir_from_env`]): returns the handle plus the
/// output directory, or `None` when observability is off. Setting
/// `AQUA_OBS_ROTATE_BYTES` to a positive value rotates the journal once
/// the active file passes that size, so long soaks stay bounded. Exits on
/// I/O errors — this is binary-startup code.
pub fn obs_from_env() -> Option<(aqua_obs::Obs, String)> {
    let dir = aqua_obs::dir_from_env()?;
    let rotate_bytes: u64 = std::env::var("AQUA_OBS_ROTATE_BYTES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let opened = if rotate_bytes > 0 {
        aqua_obs::Obs::to_dir_rotating(&dir, rotate_bytes)
    } else {
        aqua_obs::Obs::to_dir(&dir)
    };
    match opened {
        Ok(obs) => Some((obs, dir)),
        Err(e) => {
            eprintln!("cannot open observability directory {dir:?}: {e}");
            std::process::exit(2);
        }
    }
}

/// Opens a rotating observability sink in `base/<slug>` where the slug is
/// `label` reduced to `[a-z0-9-]`. Used by multi-scenario harnesses that
/// must keep each run's journal separate (gateway sequence numbers
/// restart per run, so a shared journal would alias spans during
/// forensics replay). Honors `AQUA_OBS_ROTATE_BYTES` like
/// [`obs_from_env`]; exits on I/O errors.
pub fn obs_into_subdir(base: &str, label: &str) -> (aqua_obs::Obs, String) {
    let slug: String = label
        .to_lowercase()
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect::<String>()
        .split('-')
        .filter(|s| !s.is_empty())
        .collect::<Vec<_>>()
        .join("-");
    let dir = format!("{base}/{slug}");
    let rotate_bytes: u64 = std::env::var("AQUA_OBS_ROTATE_BYTES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    match aqua_obs::Obs::to_dir_rotating(&dir, rotate_bytes) {
        Ok(obs) => (obs, dir),
        Err(e) => {
            eprintln!("cannot open observability directory {dir:?}: {e}");
            std::process::exit(2);
        }
    }
}

/// Flushes `obs` into `dir` (journal + both metric snapshots), reporting
/// the location on stderr. Exits on I/O errors.
pub fn obs_dump(obs: &aqua_obs::Obs, dir: &str) {
    if let Err(e) = obs.dump(dir) {
        eprintln!("cannot write metric snapshots into {dir:?}: {e}");
        std::process::exit(2);
    }
    eprintln!("observability written to {dir}/{{journal.jsonl,metrics.prom,metrics.json}}");
}
