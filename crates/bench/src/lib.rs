//! # aqua-bench — benchmarks and figure regeneration
//!
//! Shared harness code for the criterion benches (`benches/`) and the
//! experiment binaries (`src/bin/`) that regenerate every figure of the
//! paper's evaluation (§6). See DESIGN.md's experiment index for the
//! mapping from paper figure to binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod paper_eval;
pub mod synthetic;
