//! # aqua-bench — benchmarks and figure regeneration
//!
//! Shared harness code for the criterion benches (`benches/`) and the
//! experiment binaries (`src/bin/`) that regenerate every figure of the
//! paper's evaluation (§6). See DESIGN.md's experiment index for the
//! mapping from paper figure to binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod paper_eval;
pub mod synthetic;

/// Opens the observability sink requested via the `AQUA_OBS` environment
/// variable (see [`aqua_obs::dir_from_env`]): returns the handle plus the
/// output directory, or `None` when observability is off. Exits on I/O
/// errors — this is binary-startup code.
pub fn obs_from_env() -> Option<(aqua_obs::Obs, String)> {
    let dir = aqua_obs::dir_from_env()?;
    match aqua_obs::Obs::to_dir(&dir) {
        Ok(obs) => Some((obs, dir)),
        Err(e) => {
            eprintln!("cannot open observability directory {dir:?}: {e}");
            std::process::exit(2);
        }
    }
}

/// Flushes `obs` into `dir` (journal + both metric snapshots), reporting
/// the location on stderr. Exits on I/O errors.
pub fn obs_dump(obs: &aqua_obs::Obs, dir: &str) {
    if let Err(e) = obs.dump(dir) {
        eprintln!("cannot write metric snapshots into {dir:?}: {e}");
        std::process::exit(2);
    }
    eprintln!("observability written to {dir}/{{journal.jsonl,metrics.prom,metrics.json}}");
}
