//! **Ablation A6** — overload, QoS callbacks, and renegotiation (§4,
//! §5.4.2).
//!
//! Twelve aggressive clients share three replicas, so queues build and the
//! service cannot hold a tight spec. The client under test requests
//! (150 ms, Pc ≥ 0.9); when the callback fires it either keeps retrying the
//! same spec or renegotiates to (400 ms, Pc ≥ 0.9), as §5.4.2 suggests
//! ("the client can then either choose to renegotiate its QoS specification
//! or issue its requests to the service at a later time").
//!
//! Usage: `overload_experiment [seeds]`.

use aqua_core::qos::QosSpec;
use aqua_core::time::Duration;
use aqua_workload::{run_experiment, ClientSpec, ExperimentConfig, NetworkSpec, ServerSpec};

fn ms(v: u64) -> Duration {
    Duration::from_millis(v)
}

fn scenario(renegotiate: bool, seed: u64) -> ExperimentConfig {
    let tight = QosSpec::new(ms(150), 0.9).expect("valid spec");
    let relaxed = QosSpec::new(ms(400), 0.9).expect("valid spec");

    // Background load: 11 clients hammering with 50 ms think time.
    let mut clients: Vec<ClientSpec> = (0..11)
        .map(|_| {
            let mut c = ClientSpec::paper(QosSpec::new(ms(300), 0.0).expect("valid"));
            c.think_time = ms(50);
            c.num_requests = 200;
            c
        })
        .collect();

    let mut under_test = ClientSpec::paper(tight);
    under_test.num_requests = 100;
    under_test.think_time = ms(100);
    under_test.renegotiate_to = renegotiate.then_some(relaxed);
    clients.push(under_test);

    ExperimentConfig {
        seed,
        network: NetworkSpec::paper(),
        servers: (0..3)
            .map(|_| ServerSpec {
                service: aqua_replica::ServiceTimeModel::Normal {
                    mean: ms(60),
                    std_dev: ms(20),
                    min: Duration::ZERO,
                },
                ..ServerSpec::paper()
            })
            .collect(),
        standby_servers: Vec::new(),
        manager: None,
        clients,
        faults: aqua_workload::FaultPlan::new(),
        max_virtual_time: Duration::from_secs(120),
    }
}

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    println!("scenario: 12 clients on 3 replicas (queues build up); client");
    println!("under test starts at (150 ms, Pc = 0.9); {seeds} seed(s).\n");
    println!("| policy | P(failure) | callbacks | mean latency (ms) | mean redundancy |");
    println!("|---|---|---|---|---|");
    for (name, renegotiate) in [("keep tight spec", false), ("renegotiate to 400 ms", true)] {
        let mut fail = 0.0;
        let mut callbacks = 0u64;
        let mut lat = 0.0;
        let mut red = 0.0;
        for seed in 1..=seeds {
            let report = run_experiment(&scenario(renegotiate, seed));
            let c = report.client_under_test();
            fail += c.failure_probability;
            callbacks += c.callbacks;
            lat += c
                .mean_latency()
                .map(|d| d.as_millis_f64())
                .unwrap_or(f64::NAN);
            red += c.mean_redundancy();
        }
        let n = seeds as f64;
        println!(
            "| {} | {:.3} | {} | {:.1} | {:.2} |",
            name,
            fail / n,
            callbacks,
            lat / n,
            red / n
        );
    }
    println!();
    println!("expected: under overload the tight spec is unholdable and the");
    println!("callback fires; renegotiating restores a holdable contract and");
    println!("the failure probability (w.r.t. the new spec) drops.");
}
