//! **Chaos harness** — Fig. 5's setup under injected faults.
//!
//! Runs the paper's seven-replica configuration (Normal(100 ms, σ50 ms)
//! synthetic service load, (200 ms, Pc = 0.9) client) through a set of
//! fault scenarios from `aqua-faults` — scheduled crash-and-recover, a
//! pause/stall, a network-wide delay spike, and probabilistic message
//! drops — with deadline-driven retries armed, and reports how far each
//! scenario pushes the observed timing-failure probability from the
//! fault-free baseline.
//!
//! Usage: `chaos_experiment [--seed N] [--check]`
//!
//! * `--seed N` — run a single reproducible history (default 7).
//! * `--check` — CI soak mode: exit non-zero unless every scenario
//!   completes all requests with a bounded failure rate.
//!
//! With `AQUA_OBS=dir` each scenario writes its own journal under
//! `dir/<scenario-slug>/` (gateway sequence numbers restart per scenario,
//! so the runs must not share one journal); every injected fault window
//! appears as `{"type":"fault","phase":"active"|"cleared",...}` lines
//! that correlate with the request spans around them, and each directory
//! can be replayed with `aqua_forensics` (see EXPERIMENTS.md § Chaos).
//! `AQUA_OBS_ROTATE_BYTES` bounds individual journal files.

use aqua_core::qos::QosSpec;
use aqua_core::time::{Duration, Instant};
use aqua_workload::{
    run_experiment_observed, ClientSpec, ExperimentConfig, FaultPlan, NetworkSpec, ServerSpec,
};

fn ms(v: u64) -> Duration {
    Duration::from_millis(v)
}

fn config(seed: u64, faults: FaultPlan) -> ExperimentConfig {
    let qos = QosSpec::new(ms(200), 0.9).expect("valid spec");
    let mut client = ClientSpec::paper(qos);
    client.num_requests = 50;
    client.think_time = ms(500);
    client.retry_after = Some(ms(250));
    ExperimentConfig {
        seed,
        network: NetworkSpec::paper(),
        servers: (0..7).map(|_| ServerSpec::paper()).collect(),
        standby_servers: Vec::new(),
        manager: None,
        clients: vec![client],
        faults,
        max_virtual_time: Duration::from_secs(120),
    }
}

/// One chaos scenario: a fault plan plus the failure-probability ceiling
/// enforced in `--check` mode.
struct Scenario {
    label: &'static str,
    faults: FaultPlan,
    budget: f64,
}

fn scenarios() -> Vec<Scenario> {
    let at = Instant::from_secs;
    vec![
        Scenario {
            label: "baseline (no faults)",
            faults: FaultPlan::new(),
            budget: 0.20,
        },
        Scenario {
            label: "crash-recover r0 [5 s, 15 s)",
            faults: FaultPlan::new().crash_recover(0, at(5), Duration::from_secs(10)),
            budget: 0.30,
        },
        Scenario {
            label: "pause r1 [5 s, 12 s)",
            faults: FaultPlan::new().pause(1, at(5), Duration::from_secs(7)),
            budget: 0.30,
        },
        Scenario {
            label: "delay spike 4x [5 s, 15 s)",
            faults: FaultPlan::new().delay_spike_all(at(5), Duration::from_secs(10), 4.0),
            budget: 0.40,
        },
        Scenario {
            label: "drop 30% at r2 [5 s, 20 s)",
            faults: FaultPlan::new().drop_messages(2, at(5), Duration::from_secs(15), 0.3),
            budget: 0.30,
        },
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let seed: u64 = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);

    let obs_dir = aqua_obs::dir_from_env();
    println!("chaos harness: 7 replicas Normal(100 ms, σ50 ms), client");
    println!("(200 ms, Pc = 0.9), 50 requests, retry after 250 ms, seed {seed}.\n");
    println!("| scenario | P(failure) | gave up | retries | mean redundancy |");
    println!("|---|---|---|---|---|");

    let mut violations = Vec::new();
    for scenario in scenarios() {
        // One journal per scenario: gateway seqs restart for each run, so
        // sharing a journal would alias distinct requests during replay.
        let obs = obs_dir
            .as_ref()
            .map(|dir| aqua_bench::obs_into_subdir(dir, scenario.label));
        let report =
            run_experiment_observed(&config(seed, scenario.faults), obs.as_ref().map(|(o, _)| o));
        let c = report.client_under_test();
        println!(
            "| {} | {:.3} | {} | {} | {:.2} |",
            scenario.label,
            c.failure_probability,
            c.stats.gave_up,
            c.stats.retries,
            c.mean_redundancy()
        );
        if c.records.len() != 50 {
            violations.push(format!(
                "{}: only {}/50 requests completed",
                scenario.label,
                c.records.len()
            ));
        }
        if c.failure_probability > scenario.budget {
            violations.push(format!(
                "{}: P(failure) {:.3} over budget {:.2}",
                scenario.label, c.failure_probability, scenario.budget
            ));
        }
        if let Some((obs, dir)) = obs {
            aqua_bench::obs_dump(&obs, &dir);
        }
    }
    println!();
    println!("expected: every fault window is masked — the crash by the");
    println!("redundant selection plus reconnect-with-probation, the pause");
    println!("and the drops by the deadline-driven retry — so no scenario");
    println!("strays far above the fault-free baseline.");
    if check {
        if violations.is_empty() {
            println!("\ncheck: all scenarios within budget.");
        } else {
            eprintln!("\ncheck FAILED:");
            for v in &violations {
                eprintln!("  - {v}");
            }
            std::process::exit(1);
        }
    }
}
