//! Reproduces the §6 scalar claim: "Computing the distribution function
//! contributes to 90% of these overheads while selecting the replica subset
//! using Algorithm 1 contributes to the remaining 10%."
//!
//! Usage: `overhead_breakdown [iters]`.

use aqua_bench::synthetic::measure_overhead;
use aqua_core::prelude::*;

fn main() {
    let iters: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5_000);
    let qos = QosSpec::new(Duration::from_millis(150), 0.9).expect("valid spec");

    println!("| replicas | window | total (us) | model (us) | select (us) | model % |");
    println!("|---|---|---|---|---|---|");
    for l in [5usize, 10, 20] {
        for n in [2usize, 4, 8] {
            let m = measure_overhead(n, l, &qos, iters);
            println!(
                "| {} | {} | {:.2} | {:.2} | {:.2} | {:.0}% |",
                n,
                l,
                m.mean_total.as_nanos() as f64 / 1_000.0,
                m.mean_model.as_nanos() as f64 / 1_000.0,
                m.mean_select.as_nanos() as f64 / 1_000.0,
                100.0 * m.model_fraction(),
            );
        }
    }
    println!();
    println!("paper claim: ~90% distribution computation / ~10% Algorithm 1.");
}
