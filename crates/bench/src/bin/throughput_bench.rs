//! Multi-threaded throughput A/B of the gateway hot path: the concurrent
//! snapshot/shard architecture ([`ConcurrentHandler`] / [`AquaClient`])
//! against the retained single-lock baseline ([`TimingFaultHandler`]
//! behind one mutex / [`SerializedClient`]), on identical workloads.
//!
//! Two workload modes, both closed-loop with N caller threads:
//!
//! * **`gateway` mode (the headline and the `--check` gate)** drives the
//!   two handler architectures directly, with M in-process replicas that
//!   reply as soon as the request is planned. The old architecture is
//!   reproduced faithfully from the serialized client's data flow: one
//!   mutex over handler + pending waiters, callers plan and multicast
//!   under the lock, and every reply hops through a single dispatcher
//!   thread that re-takes the lock to classify it. The new architecture
//!   plans lock-free on the caller's thread and applies replies on
//!   whatever thread holds them (in the socket runtime that is the
//!   per-replica reader; here it is the caller). This isolates exactly
//!   what the refactor changed — planning, reply classification, pending
//!   bookkeeping — from loopback-TCP costs that both paths share.
//!   With the PR 3 model cache making warm plans sub-microsecond, the
//!   serialization points (lock + dispatcher hop) dominate this path.
//!
//! * **`socket` mode (supplementary)** drives the full TCP runtime —
//!   [`SerializedClient`] vs [`AquaClient`] against real replica servers
//!   on loopback. Reported in the JSON for end-to-end context, but not
//!   gated: on loopback both paths spend most of each call in kernel
//!   round trips they share, so the curve compresses toward 1× on small
//!   machines regardless of how the client is architected.
//!
//! The timed cells carry no observability (neither path pays span
//! bookkeeping); one extra instrumented cell per path harvests the
//! `aqua_lock_wait_ns_total` counters that show where the serialized
//! path burns its time.
//!
//! * **`e2e` mode (gated)** A/Bs the two *socket transports* at scale:
//!   L logical clients against R replicas with a fixed 2-way multicast
//!   per call. The `threaded` path is the retained thread-per-connection
//!   client — L independent [`ThreadedClient`]s, so `L x R` sockets and
//!   `2 x L x R` OS threads, every connection subscribed to the server's
//!   `PerfUpdate` broadcast. The `mux` path multiplexes the same L
//!   logical clients as [`MuxHandle`]s over a single [`MuxPool`] — R
//!   sockets total, one reactor thread, batched vectored writes. This is
//!   the workload the reactor rework targets: few sockets, many logical
//!   clients, coalesced syscalls.
//!
//! Usage: `throughput_bench [--check] [--out PATH] [--duration-ms D]
//!         [--threads N,N,...] [--no-socket] [--no-e2e]`
//!
//! `--check` exits non-zero unless gateway mode clears the CI perf-smoke
//! gate: >= 3x the serialized throughput at N = 8, and N = 1 p99 latency
//! no worse than the baseline's (within a noise allowance). It also runs
//! the tracing-overhead probe — the socket runtime with causal spans
//! journalled to disk vs no observability, on replicas with a realistic
//! service time — and fails unless the traced path retains >= 90% of the
//! untraced req/s. The e2e gate demands the mux transport reach >= 2x the
//! threaded baseline's req/s at L = 64 logical clients, with a mean
//! writev batch above 1.5 frames per syscall.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration as StdDuration, Instant as StdInstant};

use aqua_core::qos::{QosSpec, ReplicaId};
use aqua_core::repository::{MethodId, PerfReport};
use aqua_core::time::{Duration, Instant};
use aqua_gateway::{ConcurrentHandler, ReplyOutcome, TimingFaultHandler};
use aqua_obs::contention::LockContention;
use aqua_obs::json::JsonValue;
use aqua_runtime::{
    AquaClient, AquaClientConfig, CallError, CallOutcome, MuxPool, MuxPoolConfig, ReplicaServer,
    ReplicaServerConfig, SerializedClient, ThreadedClient,
};
use aqua_strategies::{ModelBased, StaticK};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};

/// The throughput multiple the CI perf-smoke gate demands at the checked N.
const CHECK_MIN_SPEEDUP: f64 = 3.0;
const CHECK_N: usize = 8;
/// Noise allowance on the single-thread p99 comparison: tail latency
/// jitters run-to-run, so "no worse" means within this factor.
const CHECK_P99_TOLERANCE: f64 = 1.25;
/// Tracing-overhead gate: with spans journalled the end-to-end socket
/// path must retain at least this fraction of its spans-off throughput
/// (i.e. tracing may cost at most 10% of req/s).
const CHECK_TRACE_RETENTION: f64 = 0.90;
/// Thread count for the tracing-overhead probe: enough concurrency to
/// stress the journal lock without saturating small CI machines.
const TRACE_PROBE_N: usize = 4;

const REPLICAS: u64 = 3;
/// Sliding-window size `l` (paper default, same as `AquaClientConfig`).
const WINDOW: usize = 5;

/// e2e mode: replica count (one socket per replica on the mux path).
const E2E_REPLICAS: u64 = 4;
/// e2e mode: fixed multicast fan-out per call (`StaticK`), so both
/// transports do deterministic 2-way redundancy on every request.
const E2E_FANOUT: usize = 2;
/// e2e mode: logical-client grid.
const E2E_LOGICAL: [usize; 2] = [8, 64];
/// e2e gate: checked logical-client count.
const E2E_CHECK_L: usize = 64;
/// e2e gate: the mux transport must reach this multiple of the threaded
/// baseline's req/s at [`E2E_CHECK_L`].
const CHECK_E2E_MIN_SPEEDUP: f64 = 2.0;
/// e2e gate: mean frames per `writev` on the mux path must exceed this
/// (proof that multicast batching actually coalesces syscalls).
const CHECK_E2E_MIN_BATCH: f64 = 1.5;

fn qos() -> QosSpec {
    QosSpec::new(Duration::from_millis(200), 0.9).unwrap()
}

/// One measured cell: N closed-loop threads on one shared gateway path.
struct Cell {
    mode: &'static str,
    path: &'static str,
    threads: usize,
    calls: u64,
    req_per_sec: f64,
    p50_ns: u64,
    p99_ns: u64,
    p999_ns: u64,
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Drives `threads` closed-loop callers through `call` for `duration`,
/// after a warm-up that takes the planner out of cold start.
fn drive<F>(
    mode: &'static str,
    path: &'static str,
    threads: usize,
    duration: StdDuration,
    call: F,
) -> Cell
where
    F: Fn(&[u8]) + Sync,
{
    for _ in 0..20 {
        call(b"warm");
    }
    let stop = AtomicBool::new(false);
    let started = StdInstant::now();
    let mut per_thread: Vec<Vec<u64>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..threads {
            let stop = &stop;
            let call = &call;
            handles.push(scope.spawn(move || {
                let mut lat: Vec<u64> = Vec::with_capacity(4096);
                while !stop.load(Ordering::Relaxed) {
                    let t = StdInstant::now();
                    call(b"bench");
                    lat.push(t.elapsed().as_nanos() as u64);
                }
                lat
            }));
        }
        std::thread::sleep(duration);
        // aqua-lint: allow(atomics-ordering) pure termination latch; `join` below synchronizes the latency buffers
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            per_thread.push(h.join().expect("caller thread"));
        }
    });
    let elapsed = started.elapsed().as_secs_f64();
    let mut lat: Vec<u64> = per_thread.into_iter().flatten().collect();
    lat.sort_unstable();
    Cell {
        mode,
        path,
        threads,
        calls: lat.len() as u64,
        req_per_sec: lat.len() as f64 / elapsed,
        p50_ns: percentile(&lat, 0.50),
        p99_ns: percentile(&lat, 0.99),
        p999_ns: percentile(&lat, 0.999),
    }
}

// ---------------------------------------------------------------------------
// Gateway mode: the two handler architectures with in-process replicas.
// ---------------------------------------------------------------------------

/// Synthesizes the per-reply performance report a replica would piggyback.
/// Varies service time by sequence number so the sliding-window model sees
/// a spread of samples, like a real replica under jitter.
fn perf_for(seq: u64) -> PerfReport {
    PerfReport {
        service_time: Duration::from_nanos(100_000 + (seq.wrapping_mul(37) % 900_000)),
        queuing_delay: Duration::from_nanos(0),
        queue_len: 0,
        method: MethodId::DEFAULT,
    }
}

/// A reply in flight from an in-process replica to the dispatcher.
struct GwEvent {
    seq: u64,
    replica: ReplicaId,
    perf: PerfReport,
}

struct GwState {
    handler: TimingFaultHandler,
    /// seq → channel delivering the first reply back to the caller.
    waiters: HashMap<u64, Sender<CallOutcome>>,
}

/// The old architecture, reproduced from the serialized client's data
/// flow: one mutex over handler + pending table, and a single dispatcher
/// thread that is the only place replies may touch the handler.
struct SerializedGateway {
    state: Arc<Mutex<GwState>>,
    contention: Arc<LockContention>,
    event_tx: Sender<GwEvent>,
    epoch: StdInstant,
}

impl SerializedGateway {
    fn new(obs: Option<&aqua_obs::Obs>) -> SerializedGateway {
        let mut handler = TimingFaultHandler::new(qos(), WINDOW, Box::new(ModelBased::default()));
        if let Some(obs) = obs {
            handler.attach_obs(obs, Some(0));
        }
        for i in 0..REPLICAS {
            handler.repository_mut().insert_replica(ReplicaId::new(i));
        }
        let contention = Arc::new(match obs {
            Some(obs) => LockContention::new(obs.registry(), "client-state"),
            None => LockContention::detached(),
        });
        let state = Arc::new(Mutex::new(GwState {
            handler,
            waiters: HashMap::new(),
        }));
        let (event_tx, event_rx): (Sender<GwEvent>, Receiver<GwEvent>) = unbounded();
        let epoch = StdInstant::now();
        {
            let state = Arc::clone(&state);
            let contention = Arc::clone(&contention);
            // aqua-lint: allow(spawn-join) faithful replica of the old dispatcher under test; exits when the last event_tx drops
            std::thread::spawn(move || {
                // The dispatcher: sole reply path, re-taking the global
                // lock for every classification, exactly as the old
                // client's dispatcher_loop did.
                while let Ok(ev) = event_rx.recv() {
                    let now = Instant::from_nanos(epoch.elapsed().as_nanos() as u64);
                    let mut state =
                        contention.acquire(|| state.lock().unwrap_or_else(|p| p.into_inner()));
                    let outcome = state.handler.on_reply(now, ev.seq, ev.replica, ev.perf);
                    if let ReplyOutcome::Deliver {
                        response_time,
                        verdict,
                    } = outcome
                    {
                        if let Some(tx) = state.waiters.remove(&ev.seq) {
                            let _ = tx.send(CallOutcome {
                                response_time,
                                timely: verdict.is_timely(),
                                callback: verdict.should_notify(),
                                redundancy: 0,
                                replica: ev.replica,
                                payload: bytes::Bytes::new(),
                            });
                        }
                    }
                }
            });
        }
        SerializedGateway {
            state,
            contention,
            event_tx,
            epoch,
        }
    }

    fn now(&self) -> Instant {
        Instant::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }

    fn call(&self) -> CallOutcome {
        let (tx, rx) = bounded(2);
        {
            // Plan + multicast + waiter registration all under the one
            // lock, as in the old client's call().
            let mut state = self
                .contention
                .acquire(|| self.state.lock().unwrap_or_else(|p| p.into_inner()));
            let plan = state.handler.plan_request_for(self.now(), None);
            state.waiters.insert(plan.seq, tx);
            for id in plan.replicas.iter() {
                // The in-process replica answers immediately; its reply
                // still must travel through the dispatcher.
                self.event_tx
                    .send(GwEvent {
                        seq: plan.seq,
                        replica: *id,
                        perf: perf_for(plan.seq),
                    })
                    .expect("dispatcher alive");
            }
        }
        rx.recv().expect("first reply delivered")
    }
}

/// The new architecture: lock-free planning on the caller's thread,
/// replies applied by whatever thread holds them — here the caller, in
/// the socket runtime the per-replica reader. No dispatcher, no global
/// lock.
struct ConcurrentGateway {
    handler: ConcurrentHandler,
    epoch: StdInstant,
}

impl ConcurrentGateway {
    fn new(obs: Option<&aqua_obs::Obs>) -> ConcurrentGateway {
        let mut handler = ConcurrentHandler::new(qos(), WINDOW, Box::new(ModelBased::default()));
        if let Some(obs) = obs {
            handler.attach_obs(obs, Some(0));
        }
        let epoch = StdInstant::now();
        for i in 0..REPLICAS {
            handler.insert_replica(Instant::from_nanos(0), ReplicaId::new(i));
        }
        ConcurrentGateway { handler, epoch }
    }

    fn now(&self) -> Instant {
        Instant::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }

    fn call(&self) -> CallOutcome {
        let plan = self.handler.plan_request_for(self.now(), None);
        let mut delivered: Option<CallOutcome> = None;
        for id in plan.replicas.iter() {
            let outcome = self
                .handler
                .on_reply(self.now(), plan.seq, *id, perf_for(plan.seq));
            if let ReplyOutcome::Deliver {
                response_time,
                verdict,
            } = outcome
            {
                delivered = Some(CallOutcome {
                    response_time,
                    timely: verdict.is_timely(),
                    callback: verdict.should_notify(),
                    redundancy: plan.replicas.len(),
                    replica: *id,
                    payload: bytes::Bytes::new(),
                });
            }
        }
        delivered.expect("first reply delivered")
    }
}

fn run_gateway_serialized(threads: usize, duration: StdDuration) -> Cell {
    let gw = SerializedGateway::new(None);
    drive("gateway", "serialized", threads, duration, |_| {
        gw.call();
    })
}

fn run_gateway_concurrent(threads: usize, duration: StdDuration) -> Cell {
    let gw = ConcurrentGateway::new(None);
    drive("gateway", "concurrent", threads, duration, |_| {
        gw.call();
    })
}

// ---------------------------------------------------------------------------
// Socket mode: the full TCP runtime against real replica servers.
// ---------------------------------------------------------------------------

fn spawn_servers() -> Vec<ReplicaServer> {
    spawn_servers_with(0)
}

fn spawn_servers_with(service_ms: u64) -> Vec<ReplicaServer> {
    (0..REPLICAS)
        .map(|i| {
            ReplicaServer::spawn(ReplicaServerConfig::quick(ReplicaId::new(i), service_ms))
                .expect("spawn")
        })
        .collect()
}

fn replicas_of(servers: &[ReplicaServer]) -> Vec<(ReplicaId, SocketAddr)> {
    servers.iter().map(|s| (s.replica(), s.addr())).collect()
}

fn client_config(obs: Option<aqua_obs::Obs>) -> AquaClientConfig {
    let mut config = AquaClientConfig::new(qos());
    config.give_up_after = Duration::from_secs(5);
    config.obs = obs;
    config
}

fn expect_call(r: Result<CallOutcome, CallError>) {
    r.expect("bench call");
}

fn run_socket_serialized(threads: usize, duration: StdDuration) -> Cell {
    let servers = spawn_servers();
    let client = SerializedClient::connect(
        &replicas_of(&servers),
        client_config(None),
        Box::new(ModelBased::default()),
    )
    .expect("connect serialized");
    drive("socket", "serialized", threads, duration, |p| {
        expect_call(client.call(MethodId::DEFAULT, p));
    })
}

fn run_socket_concurrent(threads: usize, duration: StdDuration) -> Cell {
    let servers = spawn_servers();
    let client = AquaClient::connect(
        &replicas_of(&servers),
        client_config(None),
        Box::new(ModelBased::default()),
    )
    .expect("connect concurrent");
    drive("socket", "concurrent", threads, duration, |p| {
        expect_call(client.call(MethodId::DEFAULT, p));
    })
}

// ---------------------------------------------------------------------------
// e2e mode: the reactor/mux transport vs the thread-per-connection
// baseline, L logical clients with fixed 2-way multicast per call.
// ---------------------------------------------------------------------------

/// An e2e grid cell: the measured throughput plus the transport's
/// resource footprint and (mux only) the writev batching it achieved.
struct E2eCell {
    cell: Cell,
    connections: usize,
    os_threads: usize,
    frames_per_writev: Option<f64>,
}

/// Like [`drive`], but each caller thread owns its *own* client object —
/// a `MuxHandle` or a whole `ThreadedClient` — instead of sharing one.
/// Callers warm up, rendezvous on a barrier, then run closed-loop.
fn drive_fleet<T, F>(
    mode: &'static str,
    path: &'static str,
    clients: Vec<T>,
    duration: StdDuration,
    call: F,
) -> Cell
where
    T: Send,
    F: Fn(&T, &[u8]) + Sync,
{
    let threads = clients.len();
    let stop = AtomicBool::new(false);
    let barrier = std::sync::Barrier::new(threads + 1);
    let mut per_thread: Vec<Vec<u64>> = Vec::new();
    let mut elapsed = 0.0f64;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for client in clients {
            let stop = &stop;
            let call = &call;
            let barrier = &barrier;
            handles.push(scope.spawn(move || {
                for _ in 0..5 {
                    call(&client, b"warm");
                }
                barrier.wait();
                let mut lat: Vec<u64> = Vec::with_capacity(4096);
                while !stop.load(Ordering::Relaxed) {
                    let t = StdInstant::now();
                    call(&client, b"bench");
                    lat.push(t.elapsed().as_nanos() as u64);
                }
                lat
            }));
        }
        barrier.wait();
        let started = StdInstant::now();
        std::thread::sleep(duration);
        // aqua-lint: allow(atomics-ordering) pure termination latch; `join` below synchronizes the latency buffers
        stop.store(true, Ordering::Relaxed);
        elapsed = started.elapsed().as_secs_f64();
        for h in handles {
            per_thread.push(h.join().expect("caller thread"));
        }
    });
    let mut lat: Vec<u64> = per_thread.into_iter().flatten().collect();
    lat.sort_unstable();
    Cell {
        mode,
        path,
        threads,
        calls: lat.len() as u64,
        req_per_sec: lat.len() as f64 / elapsed.max(1e-9),
        p50_ns: percentile(&lat, 0.50),
        p99_ns: percentile(&lat, 0.99),
        p999_ns: percentile(&lat, 0.999),
    }
}

fn e2e_servers() -> Vec<ReplicaServer> {
    (0..E2E_REPLICAS)
        .map(|i| {
            ReplicaServer::spawn(ReplicaServerConfig::quick(ReplicaId::new(i), 0)).expect("spawn")
        })
        .collect()
}

fn run_e2e_threaded(logical: usize, duration: StdDuration) -> E2eCell {
    let servers = e2e_servers();
    let replicas = replicas_of(&servers);
    let clients: Vec<ThreadedClient> = (0..logical)
        .map(|i| {
            let mut config = client_config(None);
            config.id = i as u64;
            ThreadedClient::connect(&replicas, config, Box::new(StaticK { k: E2E_FANOUT }))
                .expect("connect threaded")
        })
        .collect();
    let cell = drive_fleet("e2e", "threaded", clients, duration, |c, p| {
        expect_call(c.call(MethodId::DEFAULT, p));
    });
    E2eCell {
        cell,
        connections: logical * E2E_REPLICAS as usize,
        // Writer + reader per connection, plus the callers themselves.
        os_threads: 2 * logical * E2E_REPLICAS as usize + logical,
        frames_per_writev: None,
    }
}

fn run_e2e_mux(logical: usize, duration: StdDuration) -> E2eCell {
    let servers = e2e_servers();
    let obs = aqua_obs::Obs::metrics_only();
    let mut config = MuxPoolConfig::new(qos());
    config.give_up_after = Duration::from_secs(5);
    // Only the mux cell carries obs: the syscall counters it pays for
    // are what prove the batching claim, and the cost lands on the path
    // being gated, not the baseline.
    config.obs = Some(obs.clone());
    let pool = MuxPool::connect(&replicas_of(&servers), config).expect("connect mux pool");
    let handles: Vec<_> = (0..logical)
        .map(|_| pool.handle(Box::new(StaticK { k: E2E_FANOUT })))
        .collect();
    let cell = drive_fleet("e2e", "mux", handles, duration, |h, p| {
        expect_call(h.call(MethodId::DEFAULT, p));
    });
    let frames_per_writev = obs
        .registry()
        .histogram("aqua_net_writev_batch_frames", &[])
        .mean();
    E2eCell {
        cell,
        connections: E2E_REPLICAS as usize,
        // One reactor thread plus the callers.
        os_threads: logical + 1,
        frames_per_writev,
    }
}

fn e2e_json(c: &E2eCell) -> JsonValue {
    let mut b = JsonValue::object()
        .field("path", c.cell.path)
        .field("logical_clients", c.cell.threads)
        .field("connections", c.connections)
        .field("os_threads", c.os_threads)
        .field("calls", c.cell.calls)
        .field("req_per_sec", c.cell.req_per_sec)
        .field("p50_ns", c.cell.p50_ns)
        .field("p99_ns", c.cell.p99_ns);
    if let Some(m) = c.frames_per_writev {
        b = b.field("frames_per_writev", m);
    }
    b.build()
}

// ---------------------------------------------------------------------------
// Tracing-overhead probe: the full socket runtime A/B'd with causal spans
// journalled to disk vs no observability at all. The gateway
// microbenchmark would be the wrong place to measure this — its warm
// plans are sub-microsecond, so any journal write dwarfs them. The probe
// servers take [`TRACE_PROBE_SERVICE_MS`] per request (the paper's
// replicas take ~100 ms), so span emission competes with a realistic
// request cost, which is what the ≤10% budget is a claim about; a
// zero-work loopback cell would gate the observer's lock against a
// workload that cannot occur.
// ---------------------------------------------------------------------------

/// Deterministic service time for the tracing-overhead probe's replicas.
const TRACE_PROBE_SERVICE_MS: u64 = 1;

fn run_socket_trace_cell(
    path: &'static str,
    threads: usize,
    duration: StdDuration,
    obs: Option<aqua_obs::Obs>,
) -> Cell {
    let servers = spawn_servers_with(TRACE_PROBE_SERVICE_MS);
    let client = AquaClient::connect(
        &replicas_of(&servers),
        client_config(obs),
        Box::new(ModelBased::default()),
    )
    .expect("connect trace probe");
    drive("socket", path, threads, duration, |p| {
        expect_call(client.call(MethodId::DEFAULT, p));
    })
}

/// Back-to-back spans-off / spans-on cells on the socket runtime.
fn trace_overhead_probe(duration: StdDuration) -> (Cell, Cell) {
    let off = run_socket_trace_cell("untraced", TRACE_PROBE_N, duration, None);
    let dir = std::env::temp_dir().join(format!("aqua-trace-overhead-{}", std::process::id()));
    let obs = aqua_obs::Obs::to_dir_rotating(&dir, 64 * 1024 * 1024).expect("trace journal dir");
    let on = run_socket_trace_cell("traced", TRACE_PROBE_N, duration, Some(obs));
    let _ = std::fs::remove_dir_all(&dir);
    (off, on)
}

// ---------------------------------------------------------------------------
// Lock-wait probe: short instrumented gateway cells harvesting the
// `aqua_lock_wait_ns_total` counters.
// ---------------------------------------------------------------------------

fn lock_waits(obs: &aqua_obs::Obs, locks: &[&str]) -> JsonValue {
    let mut b = JsonValue::object();
    for lock in locks {
        let wait = obs
            .registry()
            .counter("aqua_lock_wait_ns_total", &[("lock", lock)])
            .get();
        b = b.field(*lock, wait);
    }
    b.build()
}

fn contention_probe(threads: usize, duration: StdDuration) -> (JsonValue, JsonValue) {
    let obs_s = aqua_obs::Obs::metrics_only();
    let calls_s = {
        let gw = SerializedGateway::new(Some(&obs_s));
        drive("gateway", "serialized+obs", threads, duration, |_| {
            gw.call();
        })
        .calls
    };
    let obs_c = aqua_obs::Obs::metrics_only();
    let calls_c = {
        let gw = ConcurrentGateway::new(Some(&obs_c));
        drive("gateway", "concurrent+obs", threads, duration, |_| {
            gw.call();
        })
        .calls
    };
    (
        JsonValue::object()
            .field("calls", calls_s)
            .field("waits", lock_waits(&obs_s, &["client-state"]))
            .build(),
        JsonValue::object()
            .field("calls", calls_c)
            .field(
                "waits",
                lock_waits(&obs_c, &["pending-shard", "ingest-shard", "publish"]),
            )
            .build(),
    )
}

// ---------------------------------------------------------------------------
// Driver.
// ---------------------------------------------------------------------------

fn print_cell(c: &Cell) {
    println!(
        "{:>8} {:>11} {:>3} {:>9} {:>10.0} {:>9.1} {:>9.1} {:>9.1}",
        c.mode,
        c.path,
        c.threads,
        c.calls,
        c.req_per_sec,
        c.p50_ns as f64 / 1_000.0,
        c.p99_ns as f64 / 1_000.0,
        c.p999_ns as f64 / 1_000.0,
    );
}

fn cell_json(c: &Cell) -> JsonValue {
    JsonValue::object()
        .field("path", c.path)
        .field("threads", c.threads)
        .field("calls", c.calls)
        .field("req_per_sec", c.req_per_sec)
        .field("p50_ns", c.p50_ns)
        .field("p99_ns", c.p99_ns)
        .field("p999_ns", c.p999_ns)
        .build()
}

fn usage(problem: &str) -> ! {
    eprintln!("{problem}");
    eprintln!(
        "usage: throughput_bench [--check] [--no-socket] [--no-e2e] [--out PATH] \
         [--duration-ms MS] [--threads N,N,...]"
    );
    std::process::exit(2);
}

fn main() {
    let mut check = false;
    let mut out = String::from("BENCH_THROUGHPUT.json");
    let mut duration = StdDuration::from_millis(500);
    let mut grid: Vec<usize> = vec![1, 2, 4, 8, 16];
    let mut socket = true;
    let mut e2e = true;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--no-socket" => socket = false,
            "--no-e2e" => e2e = false,
            "--out" => out = args.next().unwrap_or_else(|| usage("--out needs a path")),
            "--duration-ms" => {
                let ms: u64 = args
                    .next()
                    .unwrap_or_else(|| usage("--duration-ms needs a value"))
                    .parse()
                    .unwrap_or_else(|_| usage("--duration-ms must be an integer"));
                duration = StdDuration::from_millis(ms);
            }
            "--threads" => {
                grid = args
                    .next()
                    .unwrap_or_else(|| usage("--threads needs a list"))
                    .split(',')
                    .map(|t| {
                        t.parse()
                            .unwrap_or_else(|_| usage("--threads must be integers"))
                    })
                    .collect();
            }
            other => usage(&format!("unknown flag {other:?}")),
        }
    }
    if check && !grid.contains(&CHECK_N) {
        grid.push(CHECK_N);
    }
    if check && !grid.contains(&1) {
        grid.insert(0, 1);
    }
    if check {
        // The e2e transport comparison is part of the gate.
        e2e = true;
    }

    println!(
        "{:>8} {:>11} {:>3} {:>9} {:>10} {:>9} {:>9} {:>9}",
        "mode", "path", "N", "calls", "req/s", "p50 (us)", "p99 (us)", "p999 (us)"
    );
    let mut gateway_cells: Vec<Cell> = Vec::new();
    for &n in &grid {
        for run in [run_gateway_serialized, run_gateway_concurrent] {
            let cell = run(n, duration);
            print_cell(&cell);
            gateway_cells.push(cell);
        }
    }
    let mut socket_cells: Vec<Cell> = Vec::new();
    if socket {
        // End-to-end context only: a reduced grid keeps the run short.
        for n in [1usize, CHECK_N] {
            for run in [run_socket_serialized, run_socket_concurrent] {
                let cell = run(n, duration);
                print_cell(&cell);
                socket_cells.push(cell);
            }
        }
    }

    let mut e2e_cells: Vec<E2eCell> = Vec::new();
    if e2e {
        for &l in &E2E_LOGICAL {
            for run in [run_e2e_threaded, run_e2e_mux] {
                let c = run(l, duration);
                print_cell(&c.cell);
                e2e_cells.push(c);
            }
        }
    }

    // Always measured, even with --no-socket: two short cells on the real
    // runtime are what the ≤10% tracing budget is defined against.
    let (trace_off, trace_on) = trace_overhead_probe(duration);
    print_cell(&trace_off);
    print_cell(&trace_on);
    let trace_retention = trace_on.req_per_sec / trace_off.req_per_sec.max(1.0);

    let probe_n = CHECK_N.min(*grid.iter().max().unwrap_or(&CHECK_N));
    let (ser_locks, conc_locks) =
        contention_probe(probe_n, duration.min(StdDuration::from_millis(300)));

    let gw = |path: &str, n: usize| -> (f64, u64) {
        let c = gateway_cells
            .iter()
            .find(|c| c.path == path && c.threads == n)
            .expect("gateway cell measured");
        (c.req_per_sec, c.p99_ns)
    };
    let speedups: Vec<JsonValue> = grid
        .iter()
        .map(|&n| {
            let (s, _) = gw("serialized", n);
            let (c, _) = gw("concurrent", n);
            JsonValue::object()
                .field("threads", n)
                .field("throughput_ratio", c / s)
                .build()
        })
        .collect();
    let report = JsonValue::object()
        .field("bench", "throughput_bench")
        .field("replicas", REPLICAS)
        .field("duration_ms_per_cell", duration.as_millis() as u64)
        .field(
            "check_criterion",
            format!(
                "gateway mode: concurrent >= {CHECK_MIN_SPEEDUP}x serialized req/s at \
                 N={CHECK_N}; concurrent p99 <= {CHECK_P99_TOLERANCE}x serialized p99 at N=1; \
                 e2e mode: mux >= {CHECK_E2E_MIN_SPEEDUP}x threaded req/s at L={E2E_CHECK_L} \
                 with > {CHECK_E2E_MIN_BATCH} frames per writev"
            ),
        )
        .field(
            "gateway_hot_path",
            JsonValue::object()
                .field(
                    "description",
                    "planning + reply classification + pending bookkeeping with in-process \
                     replicas; the paths differ only in the concurrency architecture",
                )
                .field(
                    "curve",
                    JsonValue::Array(gateway_cells.iter().map(cell_json).collect()),
                )
                .field("speedup", JsonValue::Array(speedups))
                .build(),
        )
        .field(
            "socket_end_to_end",
            JsonValue::object()
                .field(
                    "description",
                    "full TCP runtime on loopback; both paths share the kernel round \
                     trips, so this curve compresses toward 1x on small machines",
                )
                .field(
                    "curve",
                    JsonValue::Array(socket_cells.iter().map(cell_json).collect()),
                )
                .build(),
        )
        .field(
            "end_to_end",
            JsonValue::object()
                .field(
                    "description",
                    "socket transports A/B'd at L logical clients with fixed 2-way \
                     multicast: mux = one reactor + R sockets shared by all handles, \
                     threaded = L independent thread-per-connection clients",
                )
                .field("replicas", E2E_REPLICAS)
                .field("fanout", E2E_FANOUT)
                .field(
                    "grid",
                    JsonValue::Array(e2e_cells.iter().map(e2e_json).collect()),
                )
                .build(),
        )
        .field(
            "tracing_overhead",
            JsonValue::object()
                .field(
                    "description",
                    "socket runtime at fixed N with causal spans journalled to disk vs no \
                     observability; retention = traced req/s over untraced req/s",
                )
                .field("threads", TRACE_PROBE_N)
                .field("untraced", cell_json(&trace_off))
                .field("traced", cell_json(&trace_on))
                .field("retention", trace_retention)
                .field("min_retention", CHECK_TRACE_RETENTION)
                .build(),
        )
        .field(
            "lock_wait_ns",
            JsonValue::object()
                .field("probe_threads", probe_n)
                .field("serialized", ser_locks)
                .field("concurrent", conc_locks)
                .build(),
        )
        .build();
    std::fs::write(&out, report.render_pretty() + "\n").expect("write BENCH_THROUGHPUT.json");
    println!("\nwrote {out}");

    if check {
        let (ser8, _) = gw("serialized", CHECK_N);
        let (conc8, _) = gw("concurrent", CHECK_N);
        let speedup = conc8 / ser8;
        let (_, ser1_p99) = gw("serialized", 1);
        let (_, conc1_p99) = gw("concurrent", 1);
        let p99_ratio = conc1_p99 as f64 / ser1_p99.max(1) as f64;
        let mut failed = false;
        if speedup < CHECK_MIN_SPEEDUP {
            eprintln!(
                "FAIL: concurrent gateway path is only {speedup:.2}x the serialized \
                 throughput at N={CHECK_N} (need >= {CHECK_MIN_SPEEDUP}x)"
            );
            failed = true;
        }
        if p99_ratio > CHECK_P99_TOLERANCE {
            eprintln!(
                "FAIL: concurrent gateway p99 at N=1 is {p99_ratio:.2}x the serialized \
                 baseline (allowed <= {CHECK_P99_TOLERANCE}x)"
            );
            failed = true;
        }
        if trace_retention < CHECK_TRACE_RETENTION {
            eprintln!(
                "FAIL: causal tracing keeps only {:.1}% of the untraced socket throughput \
                 at N={TRACE_PROBE_N} (need >= {:.0}%)",
                trace_retention * 100.0,
                CHECK_TRACE_RETENTION * 100.0
            );
            failed = true;
        }
        let e2e_at = |path: &str| -> &E2eCell {
            e2e_cells
                .iter()
                .find(|c| c.cell.path == path && c.cell.threads == E2E_CHECK_L)
                .expect("e2e cell measured")
        };
        let mux = e2e_at("mux");
        let threaded = e2e_at("threaded");
        let e2e_speedup = mux.cell.req_per_sec / threaded.cell.req_per_sec.max(1.0);
        let batch = mux.frames_per_writev.unwrap_or(0.0);
        if e2e_speedup < CHECK_E2E_MIN_SPEEDUP {
            eprintln!(
                "FAIL: mux transport is only {e2e_speedup:.2}x the threaded baseline at \
                 L={E2E_CHECK_L} logical clients (need >= {CHECK_E2E_MIN_SPEEDUP}x)"
            );
            failed = true;
        }
        if batch <= CHECK_E2E_MIN_BATCH {
            eprintln!(
                "FAIL: mux writev batches average {batch:.2} frames per syscall at \
                 L={E2E_CHECK_L} (need > {CHECK_E2E_MIN_BATCH})"
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "check passed: {speedup:.1}x throughput at N={CHECK_N}, p99 ratio {p99_ratio:.2} \
             at N=1, tracing retains {:.1}% of untraced req/s, e2e mux {e2e_speedup:.1}x \
             threaded at L={E2E_CHECK_L} with {batch:.1} frames/writev",
            trace_retention * 100.0
        );
    }
}
