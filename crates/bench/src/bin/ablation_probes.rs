//! **Ablation A13** — active probing of stale entries (paper §8,
//! extension 3: "our work can also be extended to use active probes \[5\]
//! when a replica's performance information is obsolete").
//!
//! The failure mode probing fixes is *stigma*: a replica sampled during a
//! transient slow phase gets a bad window, is never selected again, and
//! therefore never re-measured — even after it recovers. Here the fastest
//! replica (30 ms nominal) starts inside an 8× load burst that ends after
//! ~5 s; without probes the client keeps paying for 80 ms replicas
//! forever, with probes it rediscovers the 30 ms one.
//!
//! Usage: `ablation_probes [seeds]`.

use aqua_core::qos::QosSpec;
use aqua_core::time::Duration;
use aqua_replica::{LoadModel, LoadState, ServiceTimeModel};
use aqua_workload::{run_experiment, ClientSpec, ExperimentConfig, NetworkSpec, ServerSpec};

fn ms(v: u64) -> Duration {
    Duration::from_millis(v)
}

fn scenario(probe: bool, seed: u64) -> ExperimentConfig {
    let qos = QosSpec::new(ms(200), 0.9).expect("valid spec");
    let mut client = ClientSpec::paper(qos);
    client.num_requests = 100;
    client.think_time = ms(300);
    client.probe_stale_after = probe.then(|| Duration::from_secs(2));

    // r0: 30 ms replica, busy (8x) for the first ~5 s, then calm for the
    // rest of the run.
    let recovering = ServerSpec {
        service: ServiceTimeModel::Normal {
            mean: ms(30),
            std_dev: ms(8),
            min: Duration::ZERO,
        },
        load: LoadModel::MarkovModulated {
            states: vec![
                LoadState {
                    factor: 8.0,
                    mean_dwell: Duration::from_secs(5),
                },
                LoadState {
                    factor: 1.0,
                    mean_dwell: Duration::from_secs(100_000),
                },
            ],
        },
        ..ServerSpec::paper()
    };
    let steady = || ServerSpec {
        service: ServiceTimeModel::Normal {
            mean: ms(80),
            std_dev: ms(15),
            min: Duration::ZERO,
        },
        ..ServerSpec::paper()
    };

    ExperimentConfig {
        seed,
        network: NetworkSpec::paper(),
        servers: vec![recovering, steady(), steady()],
        standby_servers: Vec::new(),
        manager: None,
        clients: vec![client],
        faults: aqua_workload::FaultPlan::new(),
        max_virtual_time: Duration::from_secs(120),
    }
}

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    println!("scenario: r0 is a 30 ms replica stuck in an 8x burst for the");
    println!("first ~5 s (so its first samples look terrible); r1, r2 are");
    println!("steady 80 ms. client (200 ms, Pc = 0.9), 100 requests,");
    println!("{seeds} seed(s).\n");
    println!("| probing | P(failure) | mean latency (ms) | p50 tail (ms) | probes |");
    println!("|---|---|---|---|---|");
    for probe in [false, true] {
        let mut fail = 0.0;
        let mut lat = 0.0;
        let mut tail_p50 = 0.0;
        let mut probes = 0u64;
        for seed in 1..=seeds {
            let report = run_experiment(&scenario(probe, seed));
            let c = report.client_under_test();
            fail += c.failure_probability;
            lat += c
                .mean_latency()
                .map(|d| d.as_millis_f64())
                .unwrap_or(f64::NAN);
            // Median latency of the last 40 requests — long after the
            // burst ended.
            let mut tail: Vec<f64> = c.records[c.records.len() - 40..]
                .iter()
                .filter_map(|r| r.response_time.map(|d| d.as_millis_f64()))
                .collect();
            tail.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            tail_p50 += tail.get(tail.len() / 2).copied().unwrap_or(f64::NAN);
            probes += c.stats.probes;
        }
        let n = seeds as f64;
        println!(
            "| {} | {:.3} | {:.1} | {:.1} | {} |",
            if probe {
                "every 2 s (ext.)"
            } else {
                "off (paper)"
            },
            fail / n,
            lat / n,
            tail_p50 / n,
            probes
        );
    }
    println!();
    println!("expected: without probes the recovered 30 ms replica stays");
    println!("stigmatized by its burst-era window and the tail median sits at");
    println!("the 80 ms replicas' level; with probes it is re-measured and");
    println!("the tail median drops toward 30-40 ms.");
}
