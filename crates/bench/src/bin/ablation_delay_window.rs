//! **Ablation A4** — gateway-delay estimation under bursty LAN traffic.
//!
//! The paper keeps only the *last* measured gateway-to-gateway delay,
//! arguing LAN traffic is stable, and notes that recording a window over
//! `T_i` "would be simple" for environments where it is not (§5.3.1). This
//! experiment runs both estimators over a congested LAN with delay spikes.
//!
//! Usage: `ablation_delay_window [seeds]`.

use aqua_core::model::{DelayEstimator, ModelConfig};
use aqua_core::qos::QosSpec;
use aqua_core::time::Duration;
use aqua_workload::{
    run_experiment, ClientSpec, ExperimentConfig, NetworkSpec, ServerSpec, StrategySpec,
};
use lan_sim::UniformLan;

fn ms(v: u64) -> Duration {
    Duration::from_millis(v)
}

fn scenario(estimator: DelayEstimator, congested: bool, seed: u64) -> ExperimentConfig {
    let qos = QosSpec::new(ms(150), 0.9).expect("valid spec");
    let mut client = ClientSpec::paper(qos);
    client.strategy = StrategySpec::ModelBased(ModelConfig {
        delay_estimator: estimator,
        ..ModelConfig::default()
    });
    client.num_requests = 100;
    client.think_time = ms(250);
    let network = if congested {
        NetworkSpec::Congested {
            lan: UniformLan::aqua_testbed(),
            spike_prob: 0.02,
            spike_scale: 30.0,
            spike_duration: Duration::from_millis(400),
        }
    } else {
        NetworkSpec::paper()
    };
    ExperimentConfig {
        seed,
        network,
        servers: (0..5).map(|_| ServerSpec::paper()).collect(),
        standby_servers: Vec::new(),
        manager: None,
        clients: vec![client],
        faults: aqua_workload::FaultPlan::new(),
        max_virtual_time: Duration::from_secs(120),
    }
}

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    println!("scenario: 5 paper replicas; client (150 ms, Pc = 0.9), 100");
    println!("requests; calm LAN vs LAN with 30x delay spikes; {seeds} seed(s).\n");
    println!("| network | T_i estimator | P(failure) | mean redundancy |");
    println!("|---|---|---|---|");
    for congested in [false, true] {
        for (name, est) in [
            ("last-value (paper)", DelayEstimator::LastValue),
            ("window-pmf (ext.)", DelayEstimator::WindowPmf),
        ] {
            let mut fail = 0.0;
            let mut red = 0.0;
            for seed in 1..=seeds {
                let report = run_experiment(&scenario(est, congested, seed));
                let c = report.client_under_test();
                fail += c.failure_probability;
                red += c.mean_redundancy();
            }
            let n = seeds as f64;
            println!(
                "| {} | {} | {:.3} | {:.2} |",
                if congested { "congested" } else { "calm" },
                name,
                fail / n,
                red / n
            );
        }
    }
    println!();
    println!("expected: on a calm LAN the estimators agree (validating the");
    println!("paper's simplification); under spikes the windowed estimator");
    println!("hedges with more redundancy after observing a spike.");
}
