//! **Ablation A11** — model quantization: pmf bucket width vs. overhead
//! and selection quality.
//!
//! The model quantizes all measurements to a bucket width before
//! convolving. Coarser buckets shrink the pmf supports, making the
//! convolution (the ~90% of Figure 3's δ) cheaper — but past a point the
//! quantization error starts mispricing replicas near the deadline.
//!
//! Usage: `ablation_bucket [seeds]`.

use aqua_core::model::ModelConfig;
use aqua_core::qos::QosSpec;
use aqua_core::time::Duration;
use aqua_workload::{
    run_experiment, ClientSpec, ExperimentConfig, NetworkSpec, ServerSpec, StrategySpec,
};

fn ms(v: u64) -> Duration {
    Duration::from_millis(v)
}

fn scenario(bucket: Duration, seed: u64) -> ExperimentConfig {
    let qos = QosSpec::new(ms(140), 0.9).expect("valid spec");
    let mut client = ClientSpec::paper(qos);
    client.strategy = StrategySpec::ModelBased(ModelConfig {
        bucket,
        ..ModelConfig::default()
    });
    client.num_requests = 100;
    client.think_time = ms(200);
    ExperimentConfig {
        seed,
        network: NetworkSpec::paper(),
        servers: (0..5).map(|_| ServerSpec::paper()).collect(),
        standby_servers: Vec::new(),
        manager: None,
        clients: vec![client],
        faults: aqua_workload::FaultPlan::new(),
        max_virtual_time: Duration::from_secs(120),
    }
}

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let qos = QosSpec::new(ms(140), 0.9).expect("valid spec");
    println!("scenario: 5 paper replicas; client (140 ms, Pc = 0.9), 100");
    println!("requests, {seeds} seed(s). failure budget = 0.10. overhead column");
    println!("measured on a synthetic 7-replica/window-20 repository.\n");
    println!("| bucket | overhead (us) | P(failure) | mean redundancy |");
    println!("|---|---|---|---|");
    for bucket_us in [100u64, 1_000, 5_000, 20_000] {
        let bucket = Duration::from_micros(bucket_us);
        // Overhead, measured over a big synthetic repository. The
        // measure_overhead helper uses the default 1 ms bucket; here we
        // time the model directly for the chosen bucket.
        let overhead = {
            use aqua_core::prelude::*;
            let repo = aqua_bench::synthetic::synthetic_repository(7, 20, 42);
            let model = ResponseTimeModel::new(ModelConfig {
                bucket,
                ..ModelConfig::default()
            });
            let started = std::time::Instant::now();
            let iters = 2_000;
            for _ in 0..iters {
                for (_, stats) in repo.iter() {
                    std::hint::black_box(model.probability_by(stats, qos.deadline()));
                }
            }
            started.elapsed().as_nanos() as f64 / 1_000.0 / iters as f64
        };
        let mut fail = 0.0;
        let mut red = 0.0;
        for seed in 1..=seeds {
            let report = run_experiment(&scenario(bucket, seed));
            let c = report.client_under_test();
            fail += c.failure_probability;
            red += c.mean_redundancy();
        }
        let n = seeds as f64;
        println!(
            "| {} | {:.2} | {:.3} | {:.2} |",
            bucket,
            overhead,
            fail / n,
            red / n
        );
    }
    println!();
    println!("expected: overhead falls steeply with coarser buckets (smaller");
    println!("convolution supports); quality is flat until the bucket becomes");
    println!("a significant fraction of the deadline, where the floor-");
    println!("quantization optimism starts to bite (20 ms = 14% of 140 ms).");
}
