//! **Ablation A1** — selection strategies head-to-head.
//!
//! Scenario: 7 heterogeneous replicas (different mean service times, two
//! with bursty load, one crashing mid-run), one client with a 150 ms
//! deadline at Pc = 0.9. For each strategy we report the observed
//! timing-failure probability, the mean redundancy (the resource cost the
//! paper trades against), and the mean latency.
//!
//! Expected shape: `model-based` keeps the failure probability within the
//! 0.1 budget at a redundancy well below `all-replicas`; single-replica
//! baselines blow the budget when their chosen replica is slow, loaded, or
//! crashed.
//!
//! Usage: `ablation_strategies [seeds]`.

use aqua_core::model::ModelConfig;
use aqua_core::qos::QosSpec;
use aqua_core::time::{Duration, Instant};
use aqua_replica::{CrashPlan, LoadModel, ServiceTimeModel};
use aqua_workload::{
    run_experiment, ClientSpec, ExperimentConfig, NetworkSpec, ServerSpec, StrategySpec,
};

fn ms(v: u64) -> Duration {
    Duration::from_millis(v)
}

fn scenario(strategy: StrategySpec, seed: u64) -> ExperimentConfig {
    let qos = QosSpec::new(ms(150), 0.9).expect("valid spec");
    let mut client = ClientSpec::paper(qos);
    client.strategy = strategy;
    client.num_requests = 100;
    client.think_time = ms(250);

    let servers = (0..7)
        .map(|i| {
            let mean = 60 + 15 * i as u64; // 60..150 ms
            ServerSpec {
                service: ServiceTimeModel::Normal {
                    mean: ms(mean),
                    std_dev: ms(20),
                    min: Duration::ZERO,
                },
                method_services: Vec::new(),
                load: if i >= 5 {
                    LoadModel::bursty(Duration::from_secs(3), Duration::from_secs(1), 6.0)
                } else {
                    LoadModel::nominal()
                },
                crash: if i == 1 {
                    CrashPlan::AtTime(Instant::from_secs(8))
                } else {
                    CrashPlan::Never
                },
                recover_after: None,
            }
        })
        .collect();

    ExperimentConfig {
        seed,
        network: NetworkSpec::paper(),
        servers,
        standby_servers: Vec::new(),
        manager: None,
        clients: vec![client],
        faults: aqua_workload::FaultPlan::new(),
        max_virtual_time: Duration::from_secs(120),
    }
}

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let strategies = [
        StrategySpec::ModelBased(ModelConfig::default()),
        StrategySpec::FastestMean { k: 1 },
        StrategySpec::FastestMean { k: 2 },
        StrategySpec::LeastLoaded { k: 2 },
        StrategySpec::Nearest { k: 2 },
        StrategySpec::Random { k: 2 },
        StrategySpec::RoundRobin { k: 2 },
        StrategySpec::StaticK { k: 1 },
        StrategySpec::AllReplicas,
    ];

    println!("scenario: 7 heterogeneous replicas (60-150 ms), 2 bursty hosts,");
    println!("1 crash at t=8 s; client deadline 150 ms, Pc = 0.9, 100 requests;");
    println!("averaged over {seeds} seed(s). failure budget = 0.10.\n");
    println!("| strategy | variant | P(failure) | mean redundancy | mean latency (ms) |");
    println!("|---|---|---|---|---|");
    for strategy in strategies {
        let mut fail = 0.0;
        let mut red = 0.0;
        let mut lat = 0.0;
        for seed in 1..=seeds {
            let report = run_experiment(&scenario(strategy.clone(), seed));
            let c = report.client_under_test();
            fail += c.failure_probability;
            red += c.mean_redundancy();
            lat += c
                .mean_latency()
                .map(|d| d.as_millis_f64())
                .unwrap_or(f64::NAN);
        }
        let n = seeds as f64;
        let variant = match &strategy {
            StrategySpec::ModelBased(_) => "paper".to_string(),
            StrategySpec::ModelBasedTolerating { crashes, .. } => format!("f={crashes}"),
            StrategySpec::FastestMean { k }
            | StrategySpec::LeastLoaded { k }
            | StrategySpec::Nearest { k }
            | StrategySpec::Random { k }
            | StrategySpec::RoundRobin { k }
            | StrategySpec::StaticK { k } => format!("k={k}"),
            StrategySpec::AllReplicas => "n=7".to_string(),
        };
        println!(
            "| {} | {} | {:.3} | {:.2} | {:.1} |",
            strategy.name(),
            variant,
            fail / n,
            red / n,
            lat / n,
        );
    }
}
