//! **Ablation A9** — queuing-delay estimation: history window (the paper)
//! vs. current-queue-length prediction (`W ≈ S^{*q}`, à la the
//! queue-length-aware selectors of \[5\]).
//!
//! Scenario: an open-loop Poisson client drives three replicas near
//! saturation while the client under test tries to hold a deadline. Queue
//! lengths swing faster than the sliding window refreshes, so the
//! history-based `W` keeps recommending replicas whose queues just grew.
//!
//! Usage: `ablation_queue_estimator [seeds]`.

use aqua_core::model::{ModelConfig, QueueEstimator};
use aqua_core::qos::QosSpec;
use aqua_core::time::Duration;
use aqua_gateway::ArrivalModel;
use aqua_replica::ServiceTimeModel;
use aqua_workload::{
    run_experiment, ClientSpec, ExperimentConfig, NetworkSpec, ServerSpec, StrategySpec,
};

fn ms(v: u64) -> Duration {
    Duration::from_millis(v)
}

fn scenario(estimator: QueueEstimator, seed: u64) -> ExperimentConfig {
    // Background: bursts of 8 requests every 2 s, fixed on the first two
    // replicas. Right after a burst their queues are ~8 deep — the queue
    // length says so instantly, but the delay history still shows the
    // short waits of pre-burst requests (and, after the queue drains, the
    // reverse: history says "slow" while the queue is empty).
    let mut background = ClientSpec::paper(QosSpec::new(ms(5_000), 0.0).expect("valid"));
    background.arrivals = ArrivalModel::Bursts {
        size: 8,
        interval: ms(2_000),
    };
    background.num_requests = 400;
    background.strategy = StrategySpec::StaticK { k: 2 };
    background.window = 5;

    let qos = QosSpec::new(ms(250), 0.9).expect("valid spec");
    let mut under_test = ClientSpec::paper(qos);
    under_test.strategy = StrategySpec::ModelBased(ModelConfig {
        queue_estimator: estimator,
        ..ModelConfig::default()
    });
    under_test.num_requests = 120;
    under_test.think_time = ms(120);

    ExperimentConfig {
        seed,
        network: NetworkSpec::paper(),
        servers: (0..3)
            .map(|_| ServerSpec {
                service: ServiceTimeModel::Normal {
                    mean: ms(100),
                    std_dev: ms(20),
                    min: Duration::ZERO,
                },
                ..ServerSpec::paper()
            })
            .collect(),
        standby_servers: Vec::new(),
        manager: None,
        clients: vec![background, under_test],
        faults: aqua_workload::FaultPlan::new(),
        max_virtual_time: Duration::from_secs(120),
    }
}

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    println!("scenario: 3 replicas N(100 ms, 20 ms); a background client");
    println!("bursts 8 requests onto replicas 0-1 every 2 s; client under");
    println!("test (250 ms, Pc = 0.9), 120 requests, {seeds} seed(s). budget 0.10.\n");
    println!("| W estimator | P(failure) | mean redundancy | mean latency (ms) |");
    println!("|---|---|---|---|");
    for (name, est) in [
        ("history window (paper)", QueueEstimator::History),
        ("queue-scaled (ext.)", QueueEstimator::QueueScaled),
    ] {
        let mut fail = 0.0;
        let mut red = 0.0;
        let mut lat = 0.0;
        for seed in 1..=seeds {
            let report = run_experiment(&scenario(est, seed));
            let c = report.client_under_test();
            fail += c.failure_probability;
            red += c.mean_redundancy();
            lat += c
                .mean_latency()
                .map(|d| d.as_millis_f64())
                .unwrap_or(f64::NAN);
        }
        let n = seeds as f64;
        println!(
            "| {} | {:.3} | {:.2} | {:.1} |",
            name,
            fail / n,
            red / n,
            lat / n
        );
    }
    println!();
    println!("expected: the queue-scaled estimator reacts to queue growth the");
    println!("moment it is published, dodging momentarily-loaded replicas that");
    println!("the history window still rates as fast.");
}
