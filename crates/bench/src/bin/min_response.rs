//! Reproduces the §6 scalar claim: "For a minimum-sized request having
//! negligible service time, the minimum value we achieved for the response
//! time, tr, was about 3.5 milliseconds."
//!
//! The simulated LAN (`UniformLan::aqua_testbed`) is calibrated so the
//! two-way gateway path costs a few milliseconds; this binary measures the
//! floor end-to-end through the full simulated stack.
//!
//! Usage: `min_response [requests]`.

use aqua_core::qos::QosSpec;
use aqua_core::time::Duration;
use aqua_replica::ServiceTimeModel;
use aqua_workload::{run_experiment, ClientSpec, ExperimentConfig, NetworkSpec, ServerSpec};

fn main() {
    let requests: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let qos = QosSpec::new(Duration::from_millis(100), 0.0).expect("valid spec");
    let mut client = ClientSpec::paper(qos);
    client.num_requests = requests;
    client.think_time = Duration::from_millis(20);
    let config = ExperimentConfig {
        seed: 1,
        network: NetworkSpec::paper(),
        servers: vec![ServerSpec {
            service: ServiceTimeModel::Deterministic(Duration::ZERO),
            ..ServerSpec::paper()
        }],
        standby_servers: Vec::new(),
        manager: None,
        clients: vec![client],
        faults: aqua_workload::FaultPlan::new(),
        max_virtual_time: Duration::from_secs(120),
    };
    let report = run_experiment(&config);
    let c = report.client_under_test();
    let mut latencies: Vec<Duration> = c.records.iter().filter_map(|r| r.response_time).collect();
    latencies.sort_unstable();
    let min = latencies.first().copied().unwrap_or(Duration::ZERO);
    let p50 = latencies
        .get(latencies.len() / 2)
        .copied()
        .unwrap_or(Duration::ZERO);
    println!("requests measured : {}", latencies.len());
    println!("min response time : {:.3} ms", min.as_millis_f64());
    println!("median            : {:.3} ms", p50.as_millis_f64());
    println!();
    println!("paper: ~3.5 ms on the 2001 testbed (CORBA + Maestro/Ensemble).");
    println!("The simulated gateway path is calibrated to that order of");
    println!("magnitude; see also `examples/search_engine` for the floor of");
    println!("the real-socket runtime on this machine.");
}
