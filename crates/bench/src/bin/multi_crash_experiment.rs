//! **Ablation A7** — the multi-failure generalization (§5.3.2: "it should
//! be simple to extend the above algorithm to handle multiple failures").
//!
//! Two replicas crash at the *same instant* mid-run. The standard
//! Algorithm 1 (`f = 1`) only guarantees the spec through a single crash;
//! the `f = 2` generalization reserves the two best replicas and keeps the
//! spec through the double crash — at the cost of one extra replica per
//! request.
//!
//! Usage: `multi_crash_experiment [seeds]`.

use aqua_core::model::ModelConfig;
use aqua_core::qos::QosSpec;
use aqua_core::time::{Duration, Instant};
use aqua_replica::{CrashPlan, ServiceTimeModel};
use aqua_workload::{
    run_experiment, ClientSpec, ExperimentConfig, NetworkSpec, ServerSpec, StrategySpec,
};

fn ms(v: u64) -> Duration {
    Duration::from_millis(v)
}

fn scenario(crashes: usize, double_crash: bool, seed: u64) -> ExperimentConfig {
    let qos = QosSpec::new(ms(200), 0.9).expect("valid spec");
    let mut client = ClientSpec::paper(qos);
    client.strategy = StrategySpec::ModelBasedTolerating {
        model: ModelConfig::default(),
        crashes,
    };
    client.num_requests = 80;
    client.think_time = ms(250);
    // r0 and r1 are the two fastest replicas — the ones the selection
    // reserves — and both die at t = 10 s.
    let servers = (0..6)
        .map(|i| ServerSpec {
            service: ServiceTimeModel::Normal {
                mean: ms(if i < 2 { 40 } else { 90 }),
                std_dev: ms(15),
                min: Duration::ZERO,
            },
            method_services: Vec::new(),
            load: aqua_replica::LoadModel::nominal(),
            crash: if i < 2 && double_crash {
                CrashPlan::AtTime(Instant::from_secs(10))
            } else {
                CrashPlan::Never
            },
            recover_after: None,
        })
        .collect();
    ExperimentConfig {
        seed,
        network: NetworkSpec::paper(),
        servers,
        standby_servers: Vec::new(),
        manager: None,
        clients: vec![client],
        faults: aqua_workload::FaultPlan::new(),
        max_virtual_time: Duration::from_secs(120),
    }
}

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    println!("scenario: 6 replicas (r0, r1 at 40 ms; rest at 90 ms); client");
    println!("(200 ms, Pc = 0.9), 80 requests; r0 AND r1 crash simultaneously");
    println!("at t = 10 s; {seeds} seed(s). failure budget = 0.10.\n");
    println!("| tolerance f | crash? | P(failure) | gave up | mean redundancy |");
    println!("|---|---|---|---|---|");
    for f in [1usize, 2] {
        for double_crash in [false, true] {
            let mut fail = 0.0;
            let mut gave_up = 0u64;
            let mut red = 0.0;
            for seed in 1..=seeds {
                let report = run_experiment(&scenario(f, double_crash, seed));
                let c = report.client_under_test();
                fail += c.failure_probability;
                gave_up += c.stats.gave_up;
                red += c.mean_redundancy();
            }
            let n = seeds as f64;
            println!(
                "| {} | {} | {:.3} | {} | {:.2} |",
                f,
                if double_crash { "double" } else { "none" },
                fail / n,
                gave_up,
                red / n
            );
        }
    }
    println!();
    println!("expected: with f = 1, a request whose whole 2-member set was");
    println!("{{r0, r1}} loses both members and gives up; with f = 2 the set");
    println!("always holds a third member, so the double crash is masked.");
}
