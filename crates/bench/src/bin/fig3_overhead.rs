//! Regenerates **Figure 3**: overhead of the replica selection algorithm
//! (µs per request) vs. number of replicas, for sliding windows of 5, 10,
//! and 20.
//!
//! The overhead is the measured δ of §5.3.3: computing the per-replica
//! distribution functions plus running Algorithm 1. The paper reports
//! 100–900 µs on 2001-era hardware, ~90% of it spent on the distribution
//! computation; absolute numbers on modern hardware are smaller, but the
//! growth with `n` and `l` is the reproduced shape.
//!
//! Usage: `fig3_overhead [iters]` (default 2000 iterations per cell).

use aqua_bench::synthetic::measure_overhead;
use aqua_core::prelude::*;
use aqua_workload::{Figure, Series};

fn main() {
    let iters: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);
    let qos = QosSpec::new(Duration::from_millis(150), 0.9).expect("valid spec");

    let mut fig = Figure::new(
        "Figure 3: Overhead of replica selection algorithm",
        "replicas",
        "overhead (us)",
    );
    let mut model_fraction_sum = 0.0;
    let mut cells = 0u32;
    let obs = aqua_bench::obs_from_env();
    for l in [5usize, 10, 20] {
        let mut series = Series::new(format!("window = {l}"));
        for n in 2..=8 {
            let m = measure_overhead(n, l, &qos, iters);
            series.push(n as f64, m.mean_total.as_nanos() as f64 / 1_000.0);
            model_fraction_sum += m.model_fraction();
            cells += 1;
            if let Some((obs, _)) = &obs {
                let window = l.to_string();
                let replicas = n.to_string();
                let labels = [("window", window.as_str()), ("replicas", replicas.as_str())];
                let registry = obs.registry();
                registry
                    .histogram("aqua_selection_overhead_ns", &labels)
                    .record(m.mean_total.as_nanos());
                registry
                    .histogram("aqua_selection_model_ns", &labels)
                    .record(m.mean_model.as_nanos());
                registry
                    .histogram("aqua_selection_algorithm_ns", &labels)
                    .record(m.mean_select.as_nanos());
            }
        }
        fig.series.push(series);
    }
    if let Some((obs, dir)) = &obs {
        aqua_bench::obs_dump(obs, dir);
    }
    println!("{}", fig.to_ascii(60, 12));
    println!("{}", fig.to_markdown());
    println!("```csv\n{}```", fig.to_csv());
    println!();
    println!(
        "mean fraction of overhead spent computing distribution functions: {:.0}% (paper: ~90%)",
        100.0 * model_fraction_sum / cells as f64
    );
    println!("paper expectations: overhead grows with the number of replicas");
    println!("and with the sliding-window size (paper: 100-900 us in 2001).");
}
