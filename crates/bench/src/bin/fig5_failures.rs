//! Regenerates **Figure 5**: observed probability of timing failures vs.
//! the second client's deadline, for requested probabilities 0.9 / 0.5 / 0
//! (same runs as Figure 4).
//!
//! The paper's claim: the observed failure probability stays below the
//! budget `1 − Pc` in every cell — max 0.08 for Pc = 0.9, 0.32 for 0.5,
//! 0.36 for 0.
//!
//! Usage: `fig5_failures [seeds]` (default 5 seeds averaged).

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let seed_list: Vec<u64> = (1..=seeds).collect();
    eprintln!("running the §6 sweep over {seeds} seed(s)…");
    let obs = aqua_bench::obs_from_env();
    let (_, fig5) = aqua_bench::paper_eval::run_paper_sweep_observed(
        &seed_list,
        obs.as_ref().map(|(obs, _)| obs),
    );
    if let Some((obs, dir)) = &obs {
        aqua_bench::obs_dump(obs, dir);
    }
    println!("{}", fig5.to_ascii(60, 14));
    println!("{}", fig5.to_markdown());
    println!("```csv\n{}```", fig5.to_csv());
    println!();
    for (series, budget) in fig5.series.iter().zip([0.1, 0.5, 1.0]) {
        let max = series.max_y().unwrap_or(0.0);
        let ok = max <= budget;
        println!(
            "{}: max observed failure probability {:.3} vs budget {:.2} → {}",
            series.label,
            max,
            budget,
            if ok { "WITHIN SPEC" } else { "VIOLATED" }
        );
    }
}
