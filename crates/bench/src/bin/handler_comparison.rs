//! **Ablation A12** — AQuA's handler family under a primary crash: the
//! timing fault handler (this paper) vs. the passive handler (prior AQuA
//! work, §2).
//!
//! Passive replication masks a crash by *failover*: detection silence,
//! view change, retransmission — all of it added to the victim request's
//! latency. The timing fault handler masks the same crash by *redundancy*:
//! the backup's reply is already in flight (Eq. 3). This binary crashes
//! the primary mid-run and compares worst-case latencies.
//!
//! Usage: `handler_comparison [seeds] [--json]`.
//!
//! With `--json`, the comparison plus a full metrics snapshot of the
//! timing-fault runs (from `aqua-obs`) is emitted as one JSON document
//! instead of the markdown table.

use aqua_core::qos::{QosSpec, ReplicaId};
use aqua_core::time::{Duration, Instant};
use aqua_gateway::{
    AquaMsg, ClientConfig, ClientGateway, PassiveClientConfig, PassiveClientGateway, RequestRecord,
    ServerConfig, ServerGateway, Wire,
};
use aqua_group::{FailureDetectorConfig, GroupCoordinator};
use aqua_replica::{CrashPlan, ServiceTimeModel};
use aqua_strategies::ModelBased;
use lan_sim::Simulation;

fn ms(v: u64) -> Duration {
    Duration::from_millis(v)
}

fn build_sim(seed: u64) -> (Simulation<Wire>, lan_sim::NodeId) {
    // Zero-latency joins keep the primary deterministic (replica 0).
    let mut sim = Simulation::new(seed);
    let coordinator = sim.add_node(GroupCoordinator::<AquaMsg>::new(
        FailureDetectorConfig::default(),
    ));
    for i in 0..4u64 {
        let mut cfg = ServerConfig::paper(ReplicaId::new(i), coordinator);
        cfg.service = ServiceTimeModel::Normal {
            mean: ms(80),
            std_dev: ms(15),
            min: Duration::ZERO,
        };
        if i == 0 {
            cfg.crash = CrashPlan::AtTime(Instant::from_secs(6));
        }
        sim.add_node(ServerGateway::new(cfg));
    }
    (sim, coordinator)
}

fn summarize(records: &[RequestRecord], deadline: Duration) -> (f64, Duration, f64) {
    let latencies: Vec<Duration> = records.iter().filter_map(|r| r.response_time).collect();
    let worst = latencies.iter().copied().max().unwrap_or(Duration::ZERO);
    let late = records
        .iter()
        .filter(|r| r.response_time.is_none_or(|t| t > deadline))
        .count();
    let mean_red: f64 =
        records.iter().map(|r| r.redundancy).sum::<usize>() as f64 / records.len().max(1) as f64;
    (late as f64 / records.len().max(1) as f64, worst, mean_red)
}

struct HandlerSummary {
    failure_probability: f64,
    worst: Duration,
    mean_transmissions: f64,
}

fn main() {
    let mut seeds: u64 = 5;
    let mut json = false;
    for arg in std::env::args().skip(1) {
        if arg == "--json" {
            json = true;
        } else if let Ok(n) = arg.parse() {
            seeds = n;
        } else {
            eprintln!("usage: handler_comparison [seeds] [--json]");
            std::process::exit(2);
        }
    }
    let qos = QosSpec::new(ms(300), 0.9).expect("valid spec");
    let obs = aqua_obs::Obs::metrics_only();

    // --- timing fault handler ---
    let mut fail = 0.0;
    let mut worst = Duration::ZERO;
    let mut red = 0.0;
    for seed in 1..=seeds {
        let (mut sim, coordinator) = build_sim(seed);
        let mut cfg = ClientConfig::paper(coordinator, qos);
        cfg.num_requests = Some(60);
        cfg.think_time = ms(150);
        let gateway = ClientGateway::new(cfg, Box::new(ModelBased::default())).with_obs(&obs, seed);
        let client = sim.add_node(gateway);
        sim.run_until(Instant::from_secs(120));
        sim.node_mut::<ClientGateway>(client)
            .unwrap()
            .finish_observability();
        let records = sim.node::<ClientGateway>(client).unwrap().records();
        let (f, w, r) = summarize(records, qos.deadline());
        fail += f;
        worst = worst.max(w);
        red += r;
    }
    let timing = HandlerSummary {
        failure_probability: fail / seeds as f64,
        worst,
        mean_transmissions: red / seeds as f64,
    };

    // --- passive handler ---
    let mut fail = 0.0;
    let mut worst = Duration::ZERO;
    let mut red = 0.0;
    let mut failovers = 0u64;
    for seed in 1..=seeds {
        let (mut sim, coordinator) = build_sim(seed);
        let mut cfg = PassiveClientConfig::paper(coordinator, qos);
        cfg.num_requests = 60;
        cfg.think_time = ms(150);
        let client = sim.add_node(PassiveClientGateway::new(cfg));
        sim.run_until(Instant::from_secs(120));
        let gw = sim.node::<PassiveClientGateway>(client).unwrap();
        let (f, w, r) = summarize(gw.records(), qos.deadline());
        fail += f;
        worst = worst.max(w);
        red += r;
        failovers += gw.failovers();
    }
    let passive = HandlerSummary {
        failure_probability: fail / seeds as f64,
        worst,
        mean_transmissions: red / seeds as f64,
    };

    if json {
        let summary = |s: &HandlerSummary| {
            aqua_obs::json::JsonValue::object()
                .field("failure_probability", s.failure_probability)
                .field("worst_latency_ms", s.worst.as_millis_f64())
                .field("mean_transmissions", s.mean_transmissions)
        };
        let doc = aqua_obs::json::JsonValue::object()
            .field(
                "scenario",
                "4 replicas N(80 ms, 15 ms), primary crashes at 6 s",
            )
            .field("seeds", seeds)
            .field("deadline_ms", 300u64)
            .field("failure_budget", 0.1)
            .field("timing_fault", summary(&timing))
            .field("passive", summary(&passive).field("failovers", failovers))
            .field(
                "metrics",
                aqua_obs::export::to_json(&obs.registry().snapshot()),
            )
            .build();
        println!("{}", doc.render_pretty());
        return;
    }

    println!("scenario: 4 replicas N(80 ms, 15 ms); the primary (r0) crashes");
    println!("at t = 6 s; 60 requests, think 150 ms, deadline 300 ms,");
    println!("{seeds} seed(s). failure budget = 0.10.\n");
    println!("| handler | P(failure) | worst latency | mean transmissions |");
    println!("|---|---|---|---|");
    println!(
        "| timing-fault (paper) | {:.3} | {} | {:.2} |",
        timing.failure_probability, timing.worst, timing.mean_transmissions
    );
    println!(
        "| passive (prior AQuA) | {:.3} | {} | {:.2} |",
        passive.failure_probability, passive.worst, passive.mean_transmissions
    );
    println!();
    println!("({failovers} failovers across the passive runs.)");
    println!("expected: both mask the crash *eventually*, but the passive");
    println!("victim request pays detection (~200 ms timeout) + failover +");
    println!("retransmission — its worst latency blows the deadline — while");
    println!("the timing handler's redundant copy was already in flight.");
}
