//! **Ablation A10** — managed replication (Proteus, §2).
//!
//! The selection algorithm can only choose among live replicas; when the
//! pool shrinks, its room to manoeuvre shrinks with it. The dependability
//! manager restores the pool from a standby reserve after every crash.
//! This experiment kills two of three replicas mid-run and compares a
//! managed pool (2 standbys) against an unmanaged one.
//!
//! Usage: `manager_experiment [seeds]`.

use aqua_core::qos::QosSpec;
use aqua_core::time::{Duration, Instant};
use aqua_replica::{CrashPlan, ServiceTimeModel};
use aqua_workload::{
    run_experiment, ClientSpec, ExperimentConfig, ManagerSpec, NetworkSpec, ServerSpec,
};

fn ms(v: u64) -> Duration {
    Duration::from_millis(v)
}

fn scenario(managed: bool, seed: u64) -> ExperimentConfig {
    let qos = QosSpec::new(ms(250), 0.9).expect("valid spec");
    let mut client = ClientSpec::paper(qos);
    client.num_requests = 100;
    client.think_time = ms(250);
    let server = |mean_ms: u64, crash: CrashPlan| ServerSpec {
        service: ServiceTimeModel::Normal {
            mean: ms(mean_ms),
            std_dev: ms(mean_ms / 4),
            min: Duration::ZERO,
        },
        crash,
        ..ServerSpec::paper()
    };
    ExperimentConfig {
        seed,
        network: NetworkSpec::paper(),
        // The two fast replicas crash; the survivor alone only makes the
        // 250 ms deadline ~65% of the time.
        servers: vec![
            server(70, CrashPlan::AtTime(Instant::from_secs(5))),
            server(70, CrashPlan::AtTime(Instant::from_secs(12))),
            server(230, CrashPlan::Never),
        ],
        standby_servers: if managed {
            vec![server(70, CrashPlan::Never), server(70, CrashPlan::Never)]
        } else {
            Vec::new()
        },
        manager: managed.then_some(ManagerSpec {
            target_replication: 3,
            check_interval: ms(200),
            supervision: None,
        }),
        clients: vec![client],
        faults: aqua_workload::FaultPlan::new(),
        max_virtual_time: Duration::from_secs(120),
    }
}

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    println!("scenario: 2 fast replicas (70 ms) crash at 5 s and 12 s, leaving a");
    println!("slow one (230 ms) behind;");
    println!("client (250 ms, Pc = 0.9), 100 requests, {seeds} seed(s).\n");
    println!("| pool | P(failure) | mean redundancy (last 20 reqs) | gave up |");
    println!("|---|---|---|---|");
    for managed in [false, true] {
        let mut fail = 0.0;
        let mut tail_red = 0.0;
        let mut gave_up = 0u64;
        for seed in 1..=seeds {
            let report = run_experiment(&scenario(managed, seed));
            let c = report.client_under_test();
            fail += c.failure_probability;
            let tail = &c.records[c.records.len().saturating_sub(20)..];
            tail_red += tail.iter().map(|r| r.redundancy).sum::<usize>() as f64 / tail.len() as f64;
            gave_up += c.stats.gave_up;
        }
        let n = seeds as f64;
        println!(
            "| {} | {:.3} | {:.2} | {} |",
            if managed {
                "managed (2 standbys)"
            } else {
                "unmanaged"
            },
            fail / n,
            tail_red / n,
            gave_up
        );
    }
    println!();
    println!("expected: unmanaged, the pool ends at a single replica — no");
    println!("redundancy left, so any slowness is unmaskable; managed, the");
    println!("standbys restore the 3-replica pool and the spec holds.");
}
