//! `aqua-lab` — a configurable one-shot experiment runner.
//!
//! Builds a simulated cluster from command-line flags, runs it, and prints
//! a report (optionally JSON). Useful for exploring the design space
//! beyond the canned figure/ablation binaries.
//!
//! ```text
//! aqua_lab [flags]
//!   --replicas N          number of server replicas          (default 5)
//!   --service MS          mean service time                  (default 100)
//!   --std MS              service-time std deviation         (default 50)
//!   --deadline MS         client deadline t                  (default 150)
//!   --pc P                requested probability Pc           (default 0.9)
//!   --requests N          requests for the client under test (default 50)
//!   --think MS            closed-loop think time             (default 1000)
//!   --open-loop MS        open-loop Poisson mean inter-arrival instead
//!   --window L            sliding-window size l              (default 5)
//!   --crashes F           crash tolerance f of Algorithm 1   (default 1)
//!   --strategy NAME[:K]   model | random:K | fastest:K | loaded:K |
//!                         nearest:K | rr:K | static:K | all  (default model)
//!   --crash I@SECS        crash replica I at SECS (repeatable)
//!   --bursty I            give replica I 6x load bursts (repeatable)
//!   --background N        N extra (200 ms, Pc 0) clients     (default 1)
//!   --congested           add 20x network delay spikes
//!   --standbys N          N standby replicas + a dependability manager
//!                         holding the pool at --replicas
//!   --queue-scaled        predict W from current queue length (A9 ext.)
//!   --seed S              RNG seed                           (default 1)
//!   --json                emit a JSON report instead of text
//!   --obs DIR             write journal.jsonl + metrics.prom +
//!                         metrics.json into DIR (also honoured via the
//!                         AQUA_OBS environment variable)
//! ```

use aqua_core::model::ModelConfig;
use aqua_core::qos::QosSpec;
use aqua_core::time::{Duration, Instant};
use aqua_gateway::ArrivalModel;
use aqua_replica::{CrashPlan, LoadModel, ServiceTimeModel};
use aqua_workload::{
    run_experiment_observed, ClientSpec, ExperimentConfig, NetworkSpec, ServerSpec, StrategySpec,
};
use lan_sim::UniformLan;

#[derive(Debug)]
struct Options {
    replicas: usize,
    service_ms: u64,
    std_ms: u64,
    deadline_ms: u64,
    pc: f64,
    requests: u64,
    think_ms: u64,
    open_loop_ms: Option<u64>,
    window: usize,
    crashes: usize,
    strategy: StrategySpec,
    crash_at: Vec<(usize, u64)>,
    bursty: Vec<usize>,
    background: usize,
    congested: bool,
    standbys: usize,
    queue_scaled: bool,
    seed: u64,
    json: bool,
    obs: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            replicas: 5,
            service_ms: 100,
            std_ms: 50,
            deadline_ms: 150,
            pc: 0.9,
            requests: 50,
            think_ms: 1_000,
            open_loop_ms: None,
            window: 5,
            crashes: 1,
            strategy: StrategySpec::paper(),
            crash_at: Vec::new(),
            bursty: Vec::new(),
            background: 1,
            congested: false,
            standbys: 0,
            queue_scaled: false,
            seed: 1,
            json: false,
            obs: None,
        }
    }
}

fn usage() -> ! {
    eprintln!("see the module docs at the top of aqua_lab.rs (or run with defaults)");
    std::process::exit(2);
}

fn parse_strategy(spec: &str) -> StrategySpec {
    let (name, k) = match spec.split_once(':') {
        Some((n, k)) => (n, k.parse().unwrap_or(2)),
        None => (spec, 2),
    };
    match name {
        "model" => StrategySpec::paper(),
        "random" => StrategySpec::Random { k },
        "fastest" => StrategySpec::FastestMean { k },
        "loaded" => StrategySpec::LeastLoaded { k },
        "nearest" => StrategySpec::Nearest { k },
        "rr" => StrategySpec::RoundRobin { k },
        "static" => StrategySpec::StaticK { k },
        "all" => StrategySpec::AllReplicas,
        other => {
            eprintln!("unknown strategy {other:?}");
            usage()
        }
    }
}

fn parse_args() -> Options {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--replicas" => opts.replicas = value("--replicas").parse().unwrap_or_else(|_| usage()),
            "--service" => opts.service_ms = value("--service").parse().unwrap_or_else(|_| usage()),
            "--std" => opts.std_ms = value("--std").parse().unwrap_or_else(|_| usage()),
            "--deadline" => {
                opts.deadline_ms = value("--deadline").parse().unwrap_or_else(|_| usage())
            }
            "--pc" => opts.pc = value("--pc").parse().unwrap_or_else(|_| usage()),
            "--requests" => opts.requests = value("--requests").parse().unwrap_or_else(|_| usage()),
            "--think" => opts.think_ms = value("--think").parse().unwrap_or_else(|_| usage()),
            "--open-loop" => {
                opts.open_loop_ms = Some(value("--open-loop").parse().unwrap_or_else(|_| usage()))
            }
            "--window" => opts.window = value("--window").parse().unwrap_or_else(|_| usage()),
            "--crashes" => opts.crashes = value("--crashes").parse().unwrap_or_else(|_| usage()),
            "--strategy" => opts.strategy = parse_strategy(&value("--strategy")),
            "--crash" => {
                let v = value("--crash");
                let Some((i, s)) = v.split_once('@') else {
                    usage()
                };
                opts.crash_at.push((
                    i.parse().unwrap_or_else(|_| usage()),
                    s.parse().unwrap_or_else(|_| usage()),
                ));
            }
            "--bursty" => opts
                .bursty
                .push(value("--bursty").parse().unwrap_or_else(|_| usage())),
            "--background" => {
                opts.background = value("--background").parse().unwrap_or_else(|_| usage())
            }
            "--congested" => opts.congested = true,
            "--standbys" => opts.standbys = value("--standbys").parse().unwrap_or_else(|_| usage()),
            "--queue-scaled" => opts.queue_scaled = true,
            "--seed" => opts.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--json" => opts.json = true,
            "--obs" => opts.obs = Some(value("--obs")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }
    opts
}

fn build_config(opts: &Options) -> ExperimentConfig {
    let ms = Duration::from_millis;
    let servers = (0..opts.replicas)
        .map(|i| ServerSpec {
            service: ServiceTimeModel::Normal {
                mean: ms(opts.service_ms),
                std_dev: ms(opts.std_ms),
                min: Duration::ZERO,
            },
            method_services: Vec::new(),
            load: if opts.bursty.contains(&i) {
                LoadModel::bursty(Duration::from_secs(4), Duration::from_secs(2), 6.0)
            } else {
                LoadModel::nominal()
            },
            crash: opts
                .crash_at
                .iter()
                .find(|(idx, _)| *idx == i)
                .map(|(_, secs)| CrashPlan::AtTime(Instant::from_secs(*secs)))
                .unwrap_or(CrashPlan::Never),
            recover_after: None,
        })
        .collect();

    let mut clients: Vec<ClientSpec> = (0..opts.background)
        .map(|_| {
            let mut c = ClientSpec::paper(QosSpec::new(ms(200), 0.0).expect("constant spec valid"));
            c.num_requests = opts.requests;
            c.think_time = ms(opts.think_ms);
            c
        })
        .collect();

    let qos = QosSpec::new(ms(opts.deadline_ms), opts.pc).unwrap_or_else(|e| {
        eprintln!("invalid QoS: {e}");
        usage()
    });
    let model_config = ModelConfig {
        queue_estimator: if opts.queue_scaled {
            aqua_core::model::QueueEstimator::QueueScaled
        } else {
            aqua_core::model::QueueEstimator::History
        },
        ..ModelConfig::default()
    };
    let mut under_test = ClientSpec::paper(qos);
    under_test.strategy = match &opts.strategy {
        StrategySpec::ModelBased(_) if opts.crashes != 1 => StrategySpec::ModelBasedTolerating {
            model: model_config,
            crashes: opts.crashes,
        },
        StrategySpec::ModelBased(_) => StrategySpec::ModelBased(model_config),
        other => other.clone(),
    };
    under_test.num_requests = opts.requests;
    under_test.think_time = ms(opts.think_ms);
    under_test.window = opts.window;
    if let Some(gap) = opts.open_loop_ms {
        under_test.arrivals = ArrivalModel::OpenLoopPoisson {
            mean_interarrival: ms(gap),
        };
    }
    clients.push(under_test);

    ExperimentConfig {
        seed: opts.seed,
        network: if opts.congested {
            NetworkSpec::Congested {
                lan: UniformLan::aqua_testbed(),
                spike_prob: 0.02,
                spike_scale: 20.0,
                spike_duration: ms(300),
            }
        } else {
            NetworkSpec::paper()
        },
        servers,
        standby_servers: (0..opts.standbys)
            .map(|_| ServerSpec {
                service: ServiceTimeModel::Normal {
                    mean: ms(opts.service_ms),
                    std_dev: ms(opts.std_ms),
                    min: Duration::ZERO,
                },
                ..ServerSpec::paper()
            })
            .collect(),
        manager: (opts.standbys > 0).then_some(aqua_workload::ManagerSpec {
            target_replication: opts.replicas,
            check_interval: ms(200),
            supervision: None,
        }),
        clients,
        faults: aqua_workload::FaultPlan::new(),
        max_virtual_time: Duration::from_secs(600),
    }
}

fn main() {
    let opts = parse_args();
    let config = build_config(&opts);
    let obs_dir = opts.obs.clone().or_else(aqua_obs::dir_from_env);
    let obs = obs_dir.as_deref().map(|dir| {
        aqua_obs::Obs::to_dir(dir).unwrap_or_else(|e| {
            eprintln!("cannot open observability directory {dir:?}: {e}");
            std::process::exit(2);
        })
    });
    let report = run_experiment_observed(&config, obs.as_ref());
    if let (Some(obs), Some(dir)) = (&obs, &obs_dir) {
        if let Err(e) = obs.dump(dir) {
            eprintln!("cannot write metric snapshots into {dir:?}: {e}");
            std::process::exit(2);
        }
        eprintln!("observability written to {dir}/{{journal.jsonl,metrics.prom,metrics.json}}");
    }
    let client = report.client_under_test();

    if opts.json {
        let json = aqua_obs::json::JsonValue::object()
            .field("options", format!("{opts:?}"))
            .field("strategy", client.strategy)
            .field("requests", client.records.len())
            .field("failure_probability", client.failure_probability)
            .field("budget", 1.0 - opts.pc)
            .field(
                "within_budget",
                client.failure_probability <= 1.0 - opts.pc + 1e-9,
            )
            .field("mean_redundancy", client.mean_redundancy())
            .field(
                "mean_latency_ms",
                client.mean_latency().map(|d| d.as_millis_f64()),
            )
            .field(
                "p50_ms",
                client.latency_quantile(0.5).map(|d| d.as_millis_f64()),
            )
            .field(
                "p99_ms",
                client.latency_quantile(0.99).map(|d| d.as_millis_f64()),
            )
            .field("callbacks", client.callbacks)
            .field("gave_up", client.stats.gave_up)
            .field("virtual_seconds", report.ended_at.as_secs_f64())
            .field("network_messages", report.messages)
            .build();
        println!("{}", json.render_pretty());
        return;
    }

    println!(
        "aqua-lab: {} replica(s), strategy {}, seed {}",
        opts.replicas, client.strategy, opts.seed
    );
    println!(
        "QoS: deadline {} ms with Pc ≥ {}  (failure budget {:.2})",
        opts.deadline_ms,
        opts.pc,
        1.0 - opts.pc
    );
    println!();
    println!("requests            : {}", client.records.len());
    println!(
        "observed P(failure) : {:.3}  → {}",
        client.failure_probability,
        if client.failure_probability <= 1.0 - opts.pc + 1e-9 {
            "WITHIN SPEC"
        } else {
            "VIOLATED"
        }
    );
    println!("mean redundancy     : {:.2}", client.mean_redundancy());
    if let Some(mean) = client.mean_latency() {
        println!("mean latency        : {:.1} ms", mean.as_millis_f64());
    }
    for q in [0.5, 0.9, 0.99] {
        if let Some(l) = client.latency_quantile(q) {
            println!(
                "p{:<2.0}                 : {:.1} ms",
                q * 100.0,
                l.as_millis_f64()
            );
        }
    }
    println!("QoS callbacks       : {}", client.callbacks);
    println!("gave up (no reply)  : {}", client.stats.gave_up);
    println!(
        "simulated {:.1} s of virtual time, {} network messages, {} events",
        report.ended_at.as_secs_f64(),
        report.messages,
        report.events
    );
}
