//! Geo-scale DES benchmark: sequential vs. sharded engine on the
//! committed 10k-node WAN scenario.
//!
//! Runs the `geo_wan_10k` scenario (10 AWS regions, 200 replicas, 9 800
//! open-loop clients) on the classic sequential engine and on the sharded
//! engine at W ∈ {1, 2, 4, 8}, and writes `BENCH_SIM.json` with the
//! wall-clock grid, event totals, and the determinism gate (the W=1 and
//! W=8 history digests must be bit-identical).
//!
//! Usage: `sim_scale_bench [--check] [--out PATH] [--scenario PATH] [--fast]`
//!
//! `--check` (the CI perf-smoke criterion) exits non-zero unless:
//! * every run completes and the 10k-node scenario finishes in seconds
//!   (wall-clock budget per run: 120 s, far above the expected few
//!   seconds — this guards against quadratic blowups, not small noise);
//! * the W=1 and W=8 sharded digests are bit-identical;
//! * parallel W=8 is ≥ 2× faster than the sequential engine — enforced
//!   only when the host has ≥ 4 cores, since speedup from sharding is
//!   physically unobservable on fewer (the report records the core count
//!   either way).
//!
//! `--fast` shrinks the fleet (same topology, fewer clients) for quick
//! local iteration; the checked scenario in CI is the full one.

use aqua_obs::json::JsonValue;
use aqua_workload::Scenario;

const CHECK_MIN_SPEEDUP: f64 = 2.0;
const CHECK_MAX_RUN_SECS: f64 = 120.0;
const CHECK_MIN_CORES_FOR_SPEEDUP: usize = 4;
const SCENARIO: &str = include_str!("../../../../examples/scenarios/geo_wan_10k.json");

struct Row {
    engine: &'static str,
    workers: u64,
    effective: u64,
    wall_s: f64,
    events: u64,
    replies: u64,
    rounds: u64,
    digest: u64,
}

fn main() {
    let mut check = false;
    let mut fast = false;
    let mut out = String::from("BENCH_SIM.json");
    let mut scenario_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--fast" => fast = true,
            "--out" => out = args.next().expect("--out needs a path"),
            "--scenario" => scenario_path = Some(args.next().expect("--scenario needs a path")),
            other => panic!("unknown argument {other}"),
        }
    }

    let text = match &scenario_path {
        Some(path) => std::fs::read_to_string(path).expect("read scenario file"),
        None => SCENARIO.to_string(),
    };
    let mut scenario = Scenario::from_json(&text).expect("scenario parses");
    if fast {
        scenario.clients_per_region = scenario.clients_per_region.min(50);
        scenario.name += "_fast";
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "scenario {} — {} nodes, {} regions, {} ms virtual, host cores: {cores}",
        scenario.name,
        scenario.node_count(),
        scenario.topology.region_count(),
        scenario.duration.as_millis(),
    );

    let mut rows: Vec<Row> = Vec::new();

    // Classic sequential engine (global heap, global RNG) — the
    // wall-clock baseline the speedup is measured against.
    {
        let mut sim = scenario.build_classic();
        let started = std::time::Instant::now();
        sim.run_until(aqua_core::time::Instant::EPOCH.saturating_add(scenario.duration));
        let wall = started.elapsed().as_secs_f64();
        rows.push(Row {
            engine: "sequential",
            workers: 1,
            effective: 1,
            wall_s: wall,
            events: sim.events_processed(),
            replies: 0,
            rounds: 0,
            digest: 0,
        });
    }

    for workers in [1usize, 2, 4, 8] {
        let started = std::time::Instant::now();
        let stats = scenario.run(workers);
        let wall = started.elapsed().as_secs_f64();
        rows.push(Row {
            engine: "sharded",
            workers: workers as u64,
            effective: stats.workers_effective,
            wall_s: wall,
            events: stats.events,
            replies: stats.replies,
            rounds: stats.rounds,
            digest: stats.digest,
        });
    }

    println!(
        "{:>10} {:>3} {:>4} {:>9} {:>12} {:>10} {:>9} {:>18}",
        "engine", "W", "eff", "wall (s)", "events", "replies", "rounds", "digest"
    );
    for row in &rows {
        println!(
            "{:>10} {:>3} {:>4} {:>9.2} {:>12} {:>10} {:>9} {:>18x}",
            row.engine,
            row.workers,
            row.effective,
            row.wall_s,
            row.events,
            row.replies,
            row.rounds,
            row.digest
        );
    }

    let sequential_wall = rows[0].wall_s;
    let w8 = rows
        .iter()
        .find(|r| r.engine == "sharded" && r.workers == 8)
        .expect("W=8 always measured");
    let w1 = rows
        .iter()
        .find(|r| r.engine == "sharded" && r.workers == 1)
        .expect("W=1 always measured");
    let speedup_vs_sequential = if w8.wall_s > 0.0 {
        sequential_wall / w8.wall_s
    } else {
        f64::INFINITY
    };
    let digests_match = w1.digest == w8.digest;
    let speedup_gate_active = cores >= CHECK_MIN_CORES_FOR_SPEEDUP;

    let grid: Vec<JsonValue> = rows
        .iter()
        .map(|r| {
            JsonValue::object()
                .field("engine", r.engine)
                .field("workers", r.workers)
                .field("workers_effective", r.effective)
                .field("wall_seconds", r.wall_s)
                .field("events", r.events)
                .field("replies", r.replies)
                .field("barrier_rounds", r.rounds)
                .field("digest", format!("{:016x}", r.digest))
                .build()
        })
        .collect();
    let report = JsonValue::object()
        .field("bench", "sim_scale_bench")
        .field("scenario", scenario.name.clone())
        .field("nodes", scenario.node_count() as u64)
        .field("regions", scenario.topology.region_count() as u64)
        .field("virtual_ms", scenario.duration.as_millis())
        .field("host_cores", cores as u64)
        .field("grid", JsonValue::Array(grid))
        .field("w8_speedup_vs_sequential", speedup_vs_sequential)
        .field("w1_w8_digests_identical", digests_match)
        .field(
            "check_criterion",
            format!(
                "every run < {CHECK_MAX_RUN_SECS:.0}s; W=1/W=8 digests identical; \
                 W=8 >= {CHECK_MIN_SPEEDUP}x sequential when host_cores >= \
                 {CHECK_MIN_CORES_FOR_SPEEDUP} (speedup gate {} on this host)",
                if speedup_gate_active {
                    "ACTIVE"
                } else {
                    "skipped"
                }
            ),
        )
        .build();
    std::fs::write(&out, report.render_pretty() + "\n").expect("write BENCH_SIM.json");
    println!("\nwrote {out}");

    if check {
        let mut failed = false;
        for row in &rows {
            if row.wall_s > CHECK_MAX_RUN_SECS {
                eprintln!(
                    "FAIL: {} W={} took {:.1}s (budget {CHECK_MAX_RUN_SECS:.0}s)",
                    row.engine, row.workers, row.wall_s
                );
                failed = true;
            }
        }
        if !digests_match {
            eprintln!(
                "FAIL: W=1 digest {:016x} != W=8 digest {:016x}",
                w1.digest, w8.digest
            );
            failed = true;
        }
        if speedup_gate_active && speedup_vs_sequential < CHECK_MIN_SPEEDUP {
            eprintln!(
                "FAIL: W=8 is only {speedup_vs_sequential:.2}x sequential on {cores} cores \
                 (need >= {CHECK_MIN_SPEEDUP}x)"
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "check passed: determinism held, W=8 {speedup_vs_sequential:.2}x sequential \
             ({} speedup gate, {cores} cores)",
            if speedup_gate_active {
                "active"
            } else {
                "skipped"
            }
        );
    }
}
