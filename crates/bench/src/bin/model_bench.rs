//! Micro-benchmark for the generation-keyed model cache: cold vs warm
//! `plan_request` latency across window sizes `l` and replica counts `n`.
//!
//! * **cold** — every replica receives a fresh perf sample immediately
//!   before the timed plan, so each per-replica generation has moved and
//!   the cache must rebuild every response distribution (the pre-cache
//!   worst case, and the steady state of the old from-scratch pipeline);
//! * **warm** — the repository is untouched between plans, so every
//!   distribution is answered from the memoized cumulative table.
//!
//! Writes `BENCH_MODEL.json` (grid of median latencies plus the speedup
//! ratio) and prints a human-readable table.
//!
//! Usage: `model_bench [iters] [--check] [--out PATH]`
//!
//! `--check` exits non-zero unless the warm path is at least 3× faster
//! than the cold path at `l = 100, n = 8` — the CI perf-smoke criterion.

use aqua_core::prelude::*;
use aqua_gateway::TimingFaultHandler;
use aqua_obs::json::JsonValue;
use aqua_strategies::ModelBased;

/// The speedup the CI smoke test demands at the checked grid point.
const CHECK_MIN_SPEEDUP: f64 = 3.0;
const CHECK_L: usize = 100;
const CHECK_N: usize = 8;

fn ms(v: u64) -> Duration {
    Duration::from_millis(v)
}

struct Cell {
    l: usize,
    n: usize,
    cold_ns: u64,
    warm_ns: u64,
}

impl Cell {
    fn speedup(&self) -> f64 {
        if self.warm_ns == 0 {
            f64::INFINITY
        } else {
            self.cold_ns as f64 / self.warm_ns as f64
        }
    }
}

/// A handler with `n` replicas whose windows (size `l`) are completely
/// full, so every plan runs the whole model rather than the cold-start
/// multicast.
fn warmed_handler(l: usize, n: usize) -> TimingFaultHandler {
    let qos = QosSpec::new(ms(150), 0.9).expect("valid spec");
    let mut handler = TimingFaultHandler::new(qos, l, Box::new(ModelBased::default()));
    for i in 0..n {
        let r = ReplicaId::new(i as u64);
        handler.repository_mut().insert_replica(r);
        for k in 0..l {
            handler.repository_mut().record_perf(
                r,
                PerfReport::new(
                    ms(40 + ((i * 7 + k * 13) % 60) as u64),
                    ms((k % 9) as u64),
                    0,
                ),
                Instant::EPOCH,
            );
        }
        handler
            .repository_mut()
            .record_gateway_delay(r, ms(1 + (i % 5) as u64), Instant::EPOCH);
    }
    handler
}

fn median(mut samples: Vec<u64>) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// One timed `plan_request`; the pending-entry retirement happens outside
/// the timed region so only the selection path is measured.
fn timed_plan(handler: &mut TimingFaultHandler, now: Instant) -> u64 {
    let started = std::time::Instant::now();
    let plan = handler.plan_request(now);
    let elapsed = started.elapsed().as_nanos() as u64;
    assert!(!plan.replicas.is_empty(), "warm plans always select");
    handler.on_abandon(now, plan.seq);
    elapsed
}

fn measure(l: usize, n: usize, iters: u32) -> Cell {
    let mut handler = warmed_handler(l, n);
    let mut clock = 0u64;

    // Cold: move every replica's perf generation before each timed plan.
    let mut cold = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        clock += 1;
        let now = Instant::from_millis(clock);
        for i in 0..n {
            handler.repository_mut().record_perf(
                ReplicaId::new(i as u64),
                PerfReport::new(ms(40 + (clock % 60)), ms(0), 0),
                now,
            );
        }
        cold.push(timed_plan(&mut handler, now));
    }

    // Warm: one priming plan rebuilds the cache, then the repository is
    // left untouched so every subsequent plan is all hits.
    clock += 1;
    timed_plan(&mut handler, Instant::from_millis(clock));
    let mut warm = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        clock += 1;
        warm.push(timed_plan(&mut handler, Instant::from_millis(clock)));
    }

    Cell {
        l,
        n,
        cold_ns: median(cold),
        warm_ns: median(warm),
    }
}

fn main() {
    let mut iters: u32 = 200;
    let mut check = false;
    let mut out = String::from("BENCH_MODEL.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--out" => out = args.next().expect("--out needs a path"),
            other => iters = other.parse().expect("iters must be an integer"),
        }
    }

    let mut cells = Vec::new();
    println!(
        "{:>5} {:>4} {:>12} {:>12} {:>9}",
        "l", "n", "cold (ns)", "warm (ns)", "speedup"
    );
    for l in [5usize, 20, 100] {
        for n in [4usize, 8, 32] {
            let cell = measure(l, n, iters);
            println!(
                "{:>5} {:>4} {:>12} {:>12} {:>8.1}x",
                cell.l,
                cell.n,
                cell.cold_ns,
                cell.warm_ns,
                cell.speedup()
            );
            cells.push(cell);
        }
    }

    let grid: Vec<JsonValue> = cells
        .iter()
        .map(|c| {
            JsonValue::object()
                .field("window", c.l)
                .field("replicas", c.n)
                .field("cold_plan_ns_median", c.cold_ns)
                .field("warm_plan_ns_median", c.warm_ns)
                .field("warm_speedup", c.speedup())
                .build()
        })
        .collect();
    let report = JsonValue::object()
        .field("bench", "model_bench")
        .field("iters_per_cell", iters)
        .field(
            "check_criterion",
            format!("warm >= {CHECK_MIN_SPEEDUP}x faster than cold at l={CHECK_L}, n={CHECK_N}"),
        )
        .field("grid", JsonValue::Array(grid))
        .build();
    std::fs::write(&out, report.render_pretty() + "\n").expect("write BENCH_MODEL.json");
    println!("\nwrote {out}");

    if check {
        let cell = cells
            .iter()
            .find(|c| c.l == CHECK_L && c.n == CHECK_N)
            .expect("checked grid point is always measured");
        let speedup = cell.speedup();
        if speedup < CHECK_MIN_SPEEDUP {
            eprintln!(
                "FAIL: warm plan is only {speedup:.2}x faster than cold at l={CHECK_L}, \
                 n={CHECK_N} (need >= {CHECK_MIN_SPEEDUP}x)"
            );
            std::process::exit(1);
        }
        println!(
            "check passed: warm plan {speedup:.1}x faster than cold at l={CHECK_L}, n={CHECK_N}"
        );
    }
}
