//! **Supervisor soak** — the elastic dependability supervisor under
//! sustained stress.
//!
//! Three scenarios, one journal each, drive every loop of the supervisor
//! (see DESIGN.md §14):
//!
//! 1. **overload back-off** — an open-loop Poisson stream overwhelms four
//!    replicas; fleet queues stay deep, so the supervisor walks the
//!    effective replication target down to the floor and drains the
//!    surplus replicas back into the standby pool (Poloczek & Ciucu:
//!    under overload every extra copy of a request is more queued work).
//! 2. **sick-replica rolling restart** — a light closed loop first lets
//!    the target grow to the ceiling (underload), then one replica
//!    degrades 4×; the clients' per-replica calibration drifts, alerts
//!    reach the manager, and the replica is quarantined: drained
//!    gracefully, rested, returned to the pool, and re-activated into the
//!    deficit it left — rejoining through the clients' probation.
//! 3. **correlated-failure escalation** — three of four replicas degrade
//!    inside one correlation window; restarting members one by one would
//!    just thin the fleet, so the supervisor escalates: it journals the
//!    `escalation` and directs clients to renegotiate `Pc` downward and
//!    shed load.
//!
//! Usage: `supervisor_soak [--seed N] [--check]`
//!
//! * `--seed N` — run a single reproducible history (default 11).
//! * `--check` — CI soak mode: exit non-zero unless every scenario
//!   completes all requests, stays inside its intervention-count budget,
//!   and its journal replays with **zero un-callbacked deadline misses**
//!   (the same invariants `aqua_forensics --check` enforces).
//!
//! Journals land under `AQUA_OBS` (default `target/supervisor-obs`), one
//! sub-directory per scenario, each independently replayable with
//! `aqua_forensics` (see EXPERIMENTS.md § Supervisor soak).

use aqua_core::qos::QosSpec;
use aqua_core::time::{Duration, Instant};
use aqua_gateway::{ArrivalModel, CalibrationConfig, SupervisionConfig, SupervisorConfig};
use aqua_replica::ServiceTimeModel;
use aqua_trace::forensics::analyze;
use aqua_trace::replay::read_journal;
use aqua_workload::{
    run_experiment_observed, ClientSpec, ExperimentConfig, FaultPlan, ManagerSpec, NetworkSpec,
    ServerSpec,
};

fn ms(v: u64) -> Duration {
    Duration::from_millis(v)
}

/// A server with Normal(`mean_ms`, σ`mean_ms`/5) service time.
fn normal_server(mean_ms: u64) -> ServerSpec {
    ServerSpec {
        service: ServiceTimeModel::Normal {
            mean: ms(mean_ms),
            std_dev: ms(mean_ms / 5),
            min: Duration::ZERO,
        },
        ..ServerSpec::paper()
    }
}

/// Per-replica calibration tuned to drift fast enough for a soak run:
/// small rolling windows, replica-scoped alerts on.
fn soak_calibration() -> CalibrationConfig {
    CalibrationConfig {
        // Per-replica windows only gain samples on missed requests (a
        // delivered request retires the attempt before stragglers are
        // scored), so the thresholds sit low to alert within a soak
        // scenario's fault window.
        min_samples: 6,
        window: 24,
        cooldown: 2,
        replica_alerts: true,
        ..CalibrationConfig::default()
    }
}

/// Supervisor counters scraped from the run's metric registry.
#[derive(Debug, Default)]
struct Interventions {
    activations: u64,
    pool_exhausted: u64,
    shrink_drains: u64,
    quarantine_drains: u64,
    overload_steps: u64,
    underload_steps: u64,
    quarantines: u64,
    escalations: u64,
}

/// Sums every sample of `name` (across label sets) in a Prometheus
/// rendering, optionally keeping only series whose labels contain `sel`.
fn scrape(prom: &str, name: &str, sel: Option<&str>) -> u64 {
    prom.lines()
        .filter(|l| {
            let Some(rest) = l.strip_prefix(name) else {
                return false;
            };
            if !(rest.starts_with(' ') || rest.starts_with('{')) {
                return false;
            }
            sel.is_none_or(|sel| rest.contains(sel))
        })
        .filter_map(|l| l.rsplit(' ').next()?.parse::<f64>().ok())
        .map(|v| v as u64)
        .sum()
}

impl Interventions {
    fn scrape(prom: &str) -> Self {
        Interventions {
            activations: scrape(prom, "aqua_manager_activations_total", None),
            pool_exhausted: scrape(prom, "aqua_manager_pool_exhausted_total", None),
            shrink_drains: scrape(
                prom,
                "aqua_supervisor_drains_total",
                Some("action=\"shrink\""),
            ),
            quarantine_drains: scrape(
                prom,
                "aqua_supervisor_drains_total",
                Some("action=\"quarantine\""),
            ),
            overload_steps: scrape(
                prom,
                "aqua_supervisor_target_changes_total",
                Some("reason=\"overload\""),
            ),
            underload_steps: scrape(
                prom,
                "aqua_supervisor_target_changes_total",
                Some("reason=\"underload\""),
            ),
            quarantines: scrape(prom, "aqua_supervisor_quarantines_total", None),
            escalations: scrape(prom, "aqua_supervisor_escalations_total", None),
        }
    }
}

struct Scenario {
    label: &'static str,
    config: ExperimentConfig,
    requests: u64,
    /// Intervention-count budget; returns violation messages.
    budget: fn(&Interventions) -> Vec<String>,
}

/// 1. Overload back-off: Poisson arrivals every 30 ms against four
///    deterministic 120 ms replicas — far past the fleet's capacity once
///    redundant selection multiplies the load.
fn overload_backoff(seed: u64) -> Scenario {
    let mut client = ClientSpec::paper(QosSpec::new(ms(900), 0.9).expect("valid spec"));
    client.arrivals = ArrivalModel::OpenLoopPoisson {
        mean_interarrival: ms(30),
    };
    client.num_requests = 400;
    let requests = client.num_requests;
    Scenario {
        label: "overload back-off",
        config: ExperimentConfig {
            seed,
            network: NetworkSpec::paper(),
            servers: (0..4)
                .map(|_| ServerSpec {
                    service: ServiceTimeModel::Deterministic(ms(120)),
                    ..ServerSpec::paper()
                })
                .collect(),
            standby_servers: Vec::new(),
            manager: Some(ManagerSpec {
                target_replication: 4,
                check_interval: ms(200),
                supervision: Some(SupervisionConfig {
                    policy: SupervisorConfig {
                        min_replication: 2,
                        max_replication: 4,
                        overload_queue: 2.0,
                        underload_queue: 0.2,
                        decision_interval: ms(500),
                        seed,
                        ..SupervisorConfig::default()
                    },
                    ..SupervisionConfig::default()
                }),
            }),
            clients: vec![client],
            faults: FaultPlan::new(),
            max_virtual_time: Duration::from_secs(120),
        },
        requests,
        budget: |i| {
            let mut v = Vec::new();
            if i.overload_steps < 2 {
                v.push(format!(
                    "expected >= 2 overload target steps (4 -> 2), saw {}",
                    i.overload_steps
                ));
            }
            if i.shrink_drains < 2 {
                v.push(format!(
                    "expected >= 2 surplus drains, saw {}",
                    i.shrink_drains
                ));
            }
            if i.escalations != 0 {
                v.push(format!("expected no escalations, saw {}", i.escalations));
            }
            v
        },
    }
}

/// 2. Sick-replica rolling restart: light load grows the target to the
///    ceiling first, then r0 degrades 4x and is quarantined, drained,
///    rested, and re-activated into the deficit it left. The deadline is
///    deliberately tight, so the healthy-but-stressed partners may also
///    be cycled through a restart — the budget only demands that the
///    rolling machinery runs and that the fleet never dips below the
///    floor.
fn rolling_restart(seed: u64) -> Scenario {
    // A (100 ms, 0.9) promise over Normal(100 ms, σ50 ms) servers: every
    // selection needs all three replicas, so the degraded replica can
    // never be ranked out of the set — it keeps being sampled. The tight
    // deadline also keeps baseline misses frequent, which matters because
    // a replica's calibration window only gains samples on missed
    // requests (a delivered request retires the attempt before the
    // stragglers are scored).
    let mut client = ClientSpec::paper(QosSpec::new(ms(100), 0.9).expect("valid spec"));
    client.think_time = ms(150);
    client.num_requests = 150;
    // A sluggish model window keeps the client vouching for the degraded
    // replica long enough for the calibration drift to become visible.
    client.window = 40;
    client.calibration = Some(CalibrationConfig {
        window: 12,
        ..soak_calibration()
    });
    let requests = client.num_requests;
    Scenario {
        label: "sick-replica rolling restart",
        config: ExperimentConfig {
            seed,
            network: NetworkSpec::paper(),
            servers: vec![ServerSpec::paper(), ServerSpec::paper()],
            standby_servers: vec![ServerSpec::paper()],
            manager: Some(ManagerSpec {
                target_replication: 2,
                check_interval: ms(200),
                supervision: Some(SupervisionConfig {
                    policy: SupervisorConfig {
                        min_replication: 2,
                        max_replication: 3,
                        overload_queue: 8.0,
                        underload_queue: 0.6,
                        sick_alerts: 2,
                        sick_window: Duration::from_secs(20),
                        // High enough that one sick replica can never
                        // look like correlated degradation.
                        correlated_count: 99,
                        decision_interval: ms(500),
                        seed,
                        ..SupervisorConfig::default()
                    },
                    ..SupervisionConfig::default()
                }),
            }),
            clients: vec![client],
            faults: FaultPlan::new().degrade(
                0,
                Instant::from_secs(6),
                Duration::from_secs(20),
                4.0,
            ),
            max_virtual_time: Duration::from_secs(120),
        },
        requests,
        budget: |i| {
            let mut v = Vec::new();
            if i.underload_steps < 1 {
                v.push(format!(
                    "expected >= 1 underload growth step, saw {}",
                    i.underload_steps
                ));
            }
            if i.quarantines < 1 || i.quarantine_drains < 1 {
                v.push(format!(
                    "expected >= 1 quarantine drain, saw {} quarantines / {} drains",
                    i.quarantines, i.quarantine_drains
                ));
            }
            if i.activations < 2 {
                v.push(format!(
                    "expected >= 2 activations (growth + rejoin), saw {}",
                    i.activations
                ));
            }
            if i.escalations != 0 {
                v.push(format!("expected no escalations, saw {}", i.escalations));
            }
            v
        },
    }
}

/// 3. Correlated-failure escalation: three of four replicas degrade in
///    one window; per-replica restarts are disabled (sick threshold out
///    of reach), so the only move left is the fleet-level one.
fn correlated_escalation(seed: u64) -> Scenario {
    let mut client = ClientSpec::paper(QosSpec::new(ms(250), 0.9).expect("valid spec"));
    client.think_time = ms(100);
    client.num_requests = 200;
    client.window = 20;
    client.calibration = Some(soak_calibration());
    let requests = client.num_requests;
    let at = Instant::from_secs(5);
    let dur = Duration::from_secs(10);
    Scenario {
        label: "correlated-failure escalation",
        config: ExperimentConfig {
            seed,
            network: NetworkSpec::paper(),
            servers: (0..4).map(|_| normal_server(70)).collect(),
            standby_servers: Vec::new(),
            manager: Some(ManagerSpec {
                target_replication: 4,
                check_interval: ms(200),
                supervision: Some(SupervisionConfig {
                    policy: SupervisorConfig {
                        min_replication: 2,
                        max_replication: 4,
                        // Load adaptation idles: queues in a closed loop
                        // never reach 50, and the target is already at
                        // the ceiling.
                        overload_queue: 50.0,
                        // Quarantine idles too: the escalation path is
                        // the one under test.
                        sick_alerts: u32::MAX,
                        correlated_count: 3,
                        correlated_window: Duration::from_secs(10),
                        decision_interval: ms(1_000),
                        seed,
                        ..SupervisorConfig::default()
                    },
                    escalate_pc: 0.8,
                    shed_for: Duration::from_secs(1),
                    ..SupervisionConfig::default()
                }),
            }),
            clients: vec![client],
            faults: FaultPlan::new()
                .degrade(0, at, dur, 5.0)
                .degrade(1, at, dur, 5.0)
                .degrade(2, at, dur, 5.0),
            max_virtual_time: Duration::from_secs(120),
        },
        requests,
        budget: |i| {
            let mut v = Vec::new();
            if i.escalations < 1 {
                v.push(format!("expected >= 1 escalation, saw {}", i.escalations));
            }
            if i.quarantines != 0 {
                v.push(format!(
                    "expected escalation to pre-empt quarantines, saw {}",
                    i.quarantines
                ));
            }
            v
        },
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let seed: u64 = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(11);

    let base = aqua_obs::dir_from_env().unwrap_or_else(|| "target/supervisor-obs".to_owned());
    println!("supervisor soak: elastic dependability supervisor, seed {seed}.");
    println!("journals under {base}/<scenario>/ (replay with aqua_forensics).\n");
    println!(
        "| scenario | target steps (over/under) | drains (shrink/quar) | escalations | \
         activations | P(failure) | misses: supervisor_drain |"
    );
    println!("|---|---|---|---|---|---|---|");

    let mut violations = Vec::new();
    for scenario in [
        overload_backoff(seed),
        rolling_restart(seed),
        correlated_escalation(seed),
    ] {
        // One journal per scenario: gateway sequence numbers restart per
        // run, so sharing a journal would alias distinct requests.
        let (obs, dir) = aqua_bench::obs_into_subdir(&base, scenario.label);
        let report = run_experiment_observed(&scenario.config, Some(&obs));
        let interventions = Interventions::scrape(&obs.prometheus());
        aqua_bench::obs_dump(&obs, &dir);

        let c = report.client_under_test();
        if c.records.len() as u64 != scenario.requests {
            violations.push(format!(
                "{}: only {}/{} requests completed",
                scenario.label,
                c.records.len(),
                scenario.requests
            ));
        }
        for msg in (scenario.budget)(&interventions) {
            violations.push(format!("{}: {msg}", scenario.label));
        }

        // The forensics gate, in process: replay the journal and hold it
        // to the same invariants `aqua_forensics --check` enforces — no
        // orphan spans, no unparseable line, and above all no deadline
        // miss whose QoS violation went un-callbacked.
        let drain_misses = match read_journal(&dir) {
            Ok(journal) => {
                let forensics = analyze(&journal);
                for inv in &forensics.invariant_violations {
                    violations.push(format!("{}: journal invariant: {inv}", scenario.label));
                }
                if forensics.bad_lines > 0 {
                    violations.push(format!(
                        "{}: {} unparseable journal line(s)",
                        scenario.label, forensics.bad_lines
                    ));
                }
                forensics
                    .ranked_stages()
                    .into_iter()
                    .find(|(stage, _)| *stage == aqua_trace::forensics::MissStage::SupervisorDrain)
                    .map_or(0, |(_, n)| n)
            }
            Err(e) => {
                violations.push(format!("{}: cannot replay journal: {e}", scenario.label));
                0
            }
        };

        println!(
            "| {} | {}/{} | {}/{} | {} | {} | {:.3} | {} |",
            scenario.label,
            interventions.overload_steps,
            interventions.underload_steps,
            interventions.shrink_drains,
            interventions.quarantine_drains,
            interventions.escalations,
            interventions.activations,
            c.failure_probability,
            drain_misses,
        );
        if interventions.pool_exhausted > 0 {
            println!(
                "|   ^ standby pool exhausted {} time(s) while covering the deficit |",
                interventions.pool_exhausted
            );
        }
    }

    println!();
    println!("expected: the target walks down under overload and up under");
    println!("underload; a sick replica drains, rests, and rejoins through");
    println!("probation; correlated degradation escalates to a fleet-level");
    println!("Pc renegotiation instead of serial restarts — and every");
    println!("journal replays with zero un-callbacked deadline misses.");
    if check {
        if violations.is_empty() {
            println!("\ncheck: all scenarios within budget.");
        } else {
            eprintln!("\ncheck FAILED:");
            for v in &violations {
                eprintln!("  - {v}");
            }
            std::process::exit(1);
        }
    }
}
