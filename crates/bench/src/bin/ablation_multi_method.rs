//! **Ablation A5** — multi-interface servers (paper §8, extension 1).
//!
//! The paper's servers export a single method; §8 sketches classifying
//! performance data per method interface. Here the servers export a cheap
//! method (20 ms) and an expensive one (150 ms); the client alternates
//! between them. With per-method classification the model predicts each
//! request's cost correctly; with aggregated histories the mixture makes
//! the cheap method look risky (over-provisioning) and the expensive one
//! look safe (missed deadlines).
//!
//! Usage: `ablation_multi_method [seeds]`.

use aqua_core::model::{MethodScope, ModelConfig};
use aqua_core::qos::QosSpec;
use aqua_core::repository::MethodId;
use aqua_core::time::Duration;
use aqua_replica::ServiceTimeModel;
use aqua_workload::{
    run_experiment, ClientSpec, ExperimentConfig, NetworkSpec, ServerSpec, StrategySpec,
};

fn ms(v: u64) -> Duration {
    Duration::from_millis(v)
}

const CHEAP: MethodId = MethodId::new(1);
const COSTLY: MethodId = MethodId::new(2);

fn scenario(scope: MethodScope, seed: u64) -> ExperimentConfig {
    // Deadline 200 ms: the costly method (220 ms ± 40) only makes it when
    // the draw is lucky (F ≈ 0.3 per replica), the cheap one (20 ms ± 5)
    // is trivial. 4-of-5 requests are cheap, so the aggregated history is
    // dominated by cheap samples and badly mis-prices the costly method.
    let qos = QosSpec::new(ms(200), 0.9).expect("valid spec");
    let mut client = ClientSpec::paper(qos);
    client.strategy = StrategySpec::ModelBased(ModelConfig {
        method_scope: scope,
        ..ModelConfig::default()
    });
    client.methods = vec![CHEAP, CHEAP, CHEAP, CHEAP, COSTLY];
    client.num_requests = 100;
    client.think_time = ms(250);

    let servers = (0..5)
        .map(|_| ServerSpec {
            service: ServiceTimeModel::Deterministic(ms(50)), // unused fallback
            method_services: vec![
                (
                    CHEAP,
                    ServiceTimeModel::Normal {
                        mean: ms(20),
                        std_dev: ms(5),
                        min: Duration::ZERO,
                    },
                ),
                (
                    COSTLY,
                    ServiceTimeModel::Normal {
                        mean: ms(220),
                        std_dev: ms(40),
                        min: Duration::ZERO,
                    },
                ),
            ],
            load: aqua_replica::LoadModel::nominal(),
            crash: aqua_replica::CrashPlan::Never,
            recover_after: None,
        })
        .collect();

    ExperimentConfig {
        seed,
        network: NetworkSpec::paper(),
        servers,
        standby_servers: Vec::new(),
        manager: None,
        clients: vec![client],
        faults: aqua_workload::FaultPlan::new(),
        max_virtual_time: Duration::from_secs(120),
    }
}

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    println!("scenario: 5 replicas exporting a 20 ms and a 220 ms method; the");
    println!("client issues 4 cheap : 1 costly, deadline 200 ms, Pc = 0.9,");
    println!("100 requests, {seeds} seed(s). failure budget = 0.10.\n");
    println!("| history classification | P(failure) | mean redundancy |");
    println!("|---|---|---|");
    for (name, scope) in [
        ("per-method (§8 ext. 1)", MethodScope::PerMethod),
        ("aggregated (no classification)", MethodScope::Aggregate),
    ] {
        let mut fail = 0.0;
        let mut red = 0.0;
        for seed in 1..=seeds {
            let report = run_experiment(&scenario(scope, seed));
            let c = report.client_under_test();
            fail += c.failure_probability;
            red += c.mean_redundancy();
        }
        let n = seeds as f64;
        println!("| {} | {:.3} | {:.2} |", name, fail / n, red / n);
    }
    println!();
    println!("expected: per-method classification meets the budget with less");
    println!("redundancy; the aggregated model mis-prices both methods.");
}
