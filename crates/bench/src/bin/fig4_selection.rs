//! Regenerates **Figure 4**: average number of replicas selected by the
//! dynamic selection algorithm vs. the second client's deadline, for
//! requested probabilities 0.9 / 0.5 / 0.
//!
//! Setup (paper §6): 7 replicas, each on its own host, service time
//! Normal(100 ms, σ50 ms); two closed-loop clients (think 1 s, 50 requests
//! per run); client 1 fixed at (200 ms, Pc ≥ 0).
//!
//! Usage: `fig4_selection [seeds]` (default 5 seeds averaged).

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let seed_list: Vec<u64> = (1..=seeds).collect();
    eprintln!("running the §6 sweep over {seeds} seed(s)…");
    let obs = aqua_bench::obs_from_env();
    let (fig4, _) = aqua_bench::paper_eval::run_paper_sweep_observed(
        &seed_list,
        obs.as_ref().map(|(obs, _)| obs),
    );
    if let Some((obs, dir)) = &obs {
        aqua_bench::obs_dump(obs, dir);
    }
    println!("{}", fig4.to_ascii(60, 14));
    println!("{}", fig4.to_markdown());
    println!("```csv\n{}```", fig4.to_csv());
    println!();
    println!("paper expectations: redundancy falls with looser deadlines and");
    println!("lower Pc; Pc=0.9 reaches ~6 at 100 ms; Pc=0 stays at the");
    println!("minimum of 2; all curves converge toward 2 at 200 ms.");
}
