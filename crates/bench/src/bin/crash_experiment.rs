//! **Ablation A3** — the single-crash guarantee (Eq. 3).
//!
//! Algorithm 1 always reserves the most promising replica `m0` outside the
//! acceptance test, so a non-fallback selection keeps meeting `Pc` when any
//! one member crashes. This experiment kills the *fastest* replica (the one
//! most likely to be `m0`) mid-run and compares the observed failure
//! probability against a crash-free control and against the baseline that
//! does *not* reserve a backup (fastest-mean with k = 1).
//!
//! Usage: `crash_experiment [seeds]`.

use aqua_core::qos::QosSpec;
use aqua_core::time::{Duration, Instant};
use aqua_replica::{CrashPlan, ServiceTimeModel};
use aqua_workload::{
    run_experiment, ClientSpec, ExperimentConfig, NetworkSpec, ServerSpec, StrategySpec,
};

fn ms(v: u64) -> Duration {
    Duration::from_millis(v)
}

fn scenario(strategy: StrategySpec, crash_fastest: bool, seed: u64) -> ExperimentConfig {
    let qos = QosSpec::new(ms(200), 0.9).expect("valid spec");
    let mut client = ClientSpec::paper(qos);
    client.strategy = strategy;
    client.num_requests = 80;
    client.think_time = ms(250);
    // r0 is clearly the best replica; it crashes at t = 10 s if requested.
    let servers = (0..5)
        .map(|i| ServerSpec {
            service: ServiceTimeModel::Normal {
                mean: ms(if i == 0 { 40 } else { 90 }),
                std_dev: ms(15),
                min: Duration::ZERO,
            },
            method_services: Vec::new(),
            load: aqua_replica::LoadModel::nominal(),
            crash: if i == 0 && crash_fastest {
                CrashPlan::AtTime(Instant::from_secs(10))
            } else {
                CrashPlan::Never
            },
            recover_after: None,
        })
        .collect();
    ExperimentConfig {
        seed,
        network: NetworkSpec::paper(),
        servers,
        standby_servers: Vec::new(),
        manager: None,
        clients: vec![client],
        faults: aqua_workload::FaultPlan::new(),
        max_virtual_time: Duration::from_secs(120),
    }
}

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let cases: [(&str, StrategySpec, bool); 4] = [
        (
            "model-based, no crash (control)",
            StrategySpec::paper(),
            false,
        ),
        ("model-based, m0 crashes", StrategySpec::paper(), true),
        (
            "fastest-mean k=1, no crash",
            StrategySpec::FastestMean { k: 1 },
            false,
        ),
        (
            "fastest-mean k=1, m0 crashes",
            StrategySpec::FastestMean { k: 1 },
            true,
        ),
    ];
    println!("scenario: 5 replicas (r0 at 40 ms, rest at 90 ms); client");
    println!("(200 ms, Pc = 0.9), 80 requests; crash of r0 at t = 10 s;");
    println!("{seeds} seed(s). failure budget = 0.10.\n");
    println!("| case | P(failure) | gave up | mean redundancy |");
    println!("|---|---|---|---|");
    for (label, strategy, crash) in cases {
        let mut fail = 0.0;
        let mut gave_up = 0u64;
        let mut red = 0.0;
        for seed in 1..=seeds {
            let report = run_experiment(&scenario(strategy.clone(), crash, seed));
            let c = report.client_under_test();
            fail += c.failure_probability;
            gave_up += c.stats.gave_up;
            red += c.mean_redundancy();
        }
        let n = seeds as f64;
        println!(
            "| {} | {:.3} | {} | {:.2} |",
            label,
            fail / n,
            gave_up,
            red / n
        );
    }
    println!();
    println!("expected: the model-based selection masks the crash (Eq. 3) —");
    println!("its failure probability stays within budget — while the");
    println!("unreplicated baseline loses the requests in flight and stalls");
    println!("until its history ages out.");
}
