//! **Ablation A2** — sensitivity to the sliding-window size `l` (§5.2:
//! "its value is chosen so that it includes a reasonable number of recent
//! requests but eliminates obsolete measurements").
//!
//! Scenario: replicas with bursty load (so stale history actively hurts),
//! client at (150 ms, Pc = 0.9), sweeping l ∈ {2, 5, 10, 20, 50}.
//!
//! Usage: `ablation_window [seeds]`.

use aqua_core::qos::QosSpec;
use aqua_core::time::Duration;
use aqua_replica::{LoadModel, ServiceTimeModel};
use aqua_workload::{run_experiment, ClientSpec, ExperimentConfig, NetworkSpec, ServerSpec};

fn ms(v: u64) -> Duration {
    Duration::from_millis(v)
}

fn scenario(window: usize, seed: u64) -> ExperimentConfig {
    let qos = QosSpec::new(ms(150), 0.9).expect("valid spec");
    let mut client = ClientSpec::paper(qos);
    client.window = window;
    client.num_requests = 100;
    client.think_time = ms(250);
    let servers = (0..5)
        .map(|_| ServerSpec {
            service: ServiceTimeModel::Normal {
                mean: ms(80),
                std_dev: ms(25),
                min: Duration::ZERO,
            },
            method_services: Vec::new(),
            load: LoadModel::bursty(Duration::from_secs(4), Duration::from_secs(2), 5.0),
            crash: aqua_replica::CrashPlan::Never,
            recover_after: None,
        })
        .collect();
    ExperimentConfig {
        seed,
        network: NetworkSpec::paper(),
        servers,
        standby_servers: Vec::new(),
        manager: None,
        clients: vec![client],
        faults: aqua_workload::FaultPlan::new(),
        max_virtual_time: Duration::from_secs(120),
    }
}

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    println!("scenario: 5 replicas N(80 ms, 25 ms) with 5x load bursts;");
    println!("client (150 ms, Pc = 0.9), 100 requests, {seeds} seed(s).\n");
    println!("| window l | P(failure) | mean redundancy | mean latency (ms) |");
    println!("|---|---|---|---|");
    for window in [2usize, 5, 10, 20, 50] {
        let mut fail = 0.0;
        let mut red = 0.0;
        let mut lat = 0.0;
        for seed in 1..=seeds {
            let report = run_experiment(&scenario(window, seed));
            let c = report.client_under_test();
            fail += c.failure_probability;
            red += c.mean_redundancy();
            lat += c
                .mean_latency()
                .map(|d| d.as_millis_f64())
                .unwrap_or(f64::NAN);
        }
        let n = seeds as f64;
        println!(
            "| {} | {:.3} | {:.2} | {:.1} |",
            window,
            fail / n,
            red / n,
            lat / n
        );
    }
    println!();
    println!("expected: tiny windows react fast but estimate noisily; huge");
    println!("windows average over stale load states. The paper settles on 5.");
}
