//! Figures 4/5 **over real sockets**: a scaled-down deadline sweep against
//! live replica servers on localhost, validating that the shapes measured
//! in the simulator also hold with wall-clock time, real TCP, and real
//! thread scheduling.
//!
//! Scaled for wall-time: 5 replicas, service Normal(40 ms, σ20 ms),
//! deadlines 50–90 ms, 30 requests per cell.
//!
//! Usage: `runtime_sweep [requests_per_cell]` (default 30; the whole sweep
//! takes ~15 s of real time). Set `AQUA_OBS=DIR` to capture the socket
//! runtime's observability bundle (wire frame/byte counters, server
//! service/queue metrics, per-request spans).

use aqua_core::qos::{QosSpec, ReplicaId};
use aqua_core::repository::MethodId;
use aqua_core::time::Duration;
use aqua_replica::ServiceTimeModel;
use aqua_runtime::{AquaClient, AquaClientConfig, ReplicaServer, ReplicaServerConfig};
use aqua_strategies::ModelBased;

fn ms(v: u64) -> Duration {
    Duration::from_millis(v)
}

fn run_cell(
    servers: &[ReplicaServer],
    deadline_ms: u64,
    pc: f64,
    requests: u32,
    obs: Option<&aqua_obs::Obs>,
    cell: u64,
) -> (f64, f64) {
    let replicas: Vec<_> = servers.iter().map(|s| (s.replica(), s.addr())).collect();
    let mut config = AquaClientConfig::new(QosSpec::new(ms(deadline_ms), pc).expect("valid"));
    config.give_up_after = ms(2_000);
    config.obs = obs.cloned();
    config.id = cell;
    let client = AquaClient::connect(&replicas, config, Box::new(ModelBased::default()))
        .expect("connect to local replicas");
    let mut failures = 0u32;
    let mut redundancy_sum = 0usize;
    for _ in 0..requests {
        match client.call(MethodId::DEFAULT, b"sweep") {
            Ok(out) => {
                redundancy_sum += out.redundancy;
                if !out.timely {
                    failures += 1;
                }
            }
            Err(_) => {
                redundancy_sum += servers.len();
                failures += 1;
            }
        }
        // Closed-loop think time (the paper uses 1 s; scaled down): lets
        // the redundant copies drain so queues do not snowball.
        std::thread::sleep(std::time::Duration::from_millis(120));
    }
    client.finish_observability();
    (
        redundancy_sum as f64 / requests as f64,
        failures as f64 / requests as f64,
    )
}

fn main() {
    let requests: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);

    let obs = aqua_bench::obs_from_env();

    eprintln!("spawning 5 replica servers (Normal 40 ms, σ20 ms) on localhost…");
    let servers: Vec<ReplicaServer> = (0..5)
        .map(|i| {
            ReplicaServer::spawn(ReplicaServerConfig {
                replica: ReplicaId::new(i),
                service: ServiceTimeModel::Normal {
                    mean: ms(40),
                    std_dev: ms(20),
                    min: Duration::ZERO,
                },
                seed: 500 + i,
                crash_after: None,
                faults: None,
                obs: obs.as_ref().map(|(obs, _)| obs.clone()),
            })
            .expect("spawn replica server")
        })
        .collect();

    println!("| deadline (ms) | Pc | mean redundancy | observed P(failure) | budget | ok? |");
    println!("|---|---|---|---|---|---|");
    let mut all_ok = true;
    let mut cell = 0u64;
    for pc in [0.9, 0.0] {
        for deadline in [50u64, 70, 90] {
            let (redundancy, failures) = run_cell(
                &servers,
                deadline,
                pc,
                requests,
                obs.as_ref().map(|(obs, _)| obs),
                cell,
            );
            cell += 1;
            let budget = 1.0 - pc;
            let ok = failures <= budget + 1e-9;
            all_ok &= ok;
            println!(
                "| {} | {} | {:.2} | {:.3} | {:.2} | {} |",
                deadline,
                pc,
                redundancy,
                failures,
                budget,
                if ok { "✓" } else { "✗" }
            );
        }
    }
    println!();
    println!("expected (the Figure 4/5 shapes on real TCP): redundancy falls");
    println!("with the deadline and with Pc; every cell within its budget.");
    if !all_ok {
        println!("WARNING: a cell exceeded its budget — wall-clock noise on a");
        println!("loaded machine can do this; re-run with more requests.");
    }
    if let Some((obs, dir)) = &obs {
        aqua_bench::obs_dump(obs, dir);
    }
}
