//! **Ablation A8** — replica churn: crashes with recovery.
//!
//! Every replica fails randomly (exponential MTBF) and restarts after a
//! fixed downtime, so the membership view churns for the whole run. The
//! handler must keep tracking the view, re-explore recovered replicas
//! (cold-start multicast when a blank entry appears), and keep the spec.
//!
//! Usage: `churn_experiment [seeds]`.

use aqua_core::qos::QosSpec;
use aqua_core::time::Duration;
use aqua_replica::{CrashPlan, ServiceTimeModel};
use aqua_workload::{run_experiment, ClientSpec, ExperimentConfig, NetworkSpec, ServerSpec};

fn ms(v: u64) -> Duration {
    Duration::from_millis(v)
}

fn scenario(mtbf_secs: u64, seed: u64) -> ExperimentConfig {
    let qos = QosSpec::new(ms(250), 0.9).expect("valid spec");
    let mut client = ClientSpec::paper(qos);
    client.num_requests = 120;
    client.think_time = ms(250);
    let servers = (0..6)
        .map(|_| ServerSpec {
            service: ServiceTimeModel::Normal {
                mean: ms(70),
                std_dev: ms(20),
                min: Duration::ZERO,
            },
            crash: CrashPlan::Mtbf(Duration::from_secs(mtbf_secs)),
            recover_after: Some(Duration::from_secs(5)),
            ..ServerSpec::paper()
        })
        .collect();
    ExperimentConfig {
        seed,
        network: NetworkSpec::paper(),
        servers,
        standby_servers: Vec::new(),
        manager: None,
        clients: vec![client],
        faults: aqua_workload::FaultPlan::new(),
        max_virtual_time: Duration::from_secs(180),
    }
}

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    println!("scenario: 6 replicas N(70 ms, 20 ms), exponential MTBF crashes");
    println!("with 5 s restarts; client (250 ms, Pc = 0.9), 120 requests,");
    println!("{seeds} seed(s). failure budget = 0.10.\n");
    println!("| MTBF (s) | P(failure) | gave up | mean redundancy |");
    println!("|---|---|---|---|");
    for mtbf in [120u64, 60, 30, 15] {
        let mut fail = 0.0;
        let mut gave_up = 0u64;
        let mut red = 0.0;
        for seed in 1..=seeds {
            let report = run_experiment(&scenario(mtbf, seed));
            let c = report.client_under_test();
            fail += c.failure_probability;
            gave_up += c.stats.gave_up;
            red += c.mean_redundancy();
        }
        let n = seeds as f64;
        println!(
            "| {} | {:.3} | {} | {:.2} |",
            mtbf,
            fail / n,
            gave_up,
            red / n
        );
    }
    println!();
    println!("expected: the spec holds at moderate churn (single-crash");
    println!("masking + re-exploration); only when failures are so frequent");
    println!("that whole selected sets die between view changes do give-ups");
    println!("appear. redundancy rises because every recovery forces a");
    println!("cold-start multicast round.");
}
