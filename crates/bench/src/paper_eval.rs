//! The paper's §6 evaluation sweep, shared by the Figure 4 and Figure 5
//! regeneration binaries and the integration tests.

use aqua_core::qos::QosSpec;
use aqua_core::time::Duration;
use aqua_workload::{average_series, run_experiment_observed, ExperimentConfig, Figure, Series};

/// The probabilities the paper's second client requests.
pub const PAPER_PROBABILITIES: [f64; 3] = [0.9, 0.5, 0.0];

/// The deadline grid (ms) of Figures 4 and 5.
pub fn paper_deadlines() -> Vec<u64> {
    (100..=200).step_by(10).collect()
}

/// One cell of the sweep: deadline (ms), Pc, and the second client's
/// observed metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Client-2 deadline in milliseconds.
    pub deadline_ms: u64,
    /// Client-2 requested probability.
    pub probability: f64,
    /// Average number of replicas selected (Figure 4's y-axis).
    pub mean_redundancy: f64,
    /// Observed timing-failure probability (Figure 5's y-axis).
    pub failure_probability: f64,
}

/// Runs the paper's two-client experiment for one (deadline, Pc) cell and
/// one seed.
pub fn run_cell(deadline_ms: u64, probability: f64, seed: u64) -> SweepPoint {
    run_cell_observed(deadline_ms, probability, seed, None)
}

/// [`run_cell`] with optional observability — every cell of a sweep
/// accumulates into the same [`aqua_obs::Obs`] handle.
pub fn run_cell_observed(
    deadline_ms: u64,
    probability: f64,
    seed: u64,
    obs: Option<&aqua_obs::Obs>,
) -> SweepPoint {
    let qos = QosSpec::new(Duration::from_millis(deadline_ms), probability)
        .expect("sweep parameters are valid");
    let config = ExperimentConfig::paper(qos, seed);
    let report = run_experiment_observed(&config, obs);
    let client = report.client_under_test();
    SweepPoint {
        deadline_ms,
        probability,
        mean_redundancy: client.mean_redundancy(),
        failure_probability: client.failure_probability,
    }
}

/// Runs the full sweep, averaging each cell over `seeds`, and returns the
/// reproduction of Figure 4 (average replicas selected) and Figure 5
/// (observed timing-failure probability).
pub fn run_paper_sweep(seeds: &[u64]) -> (Figure, Figure) {
    run_paper_sweep_observed(seeds, None)
}

/// [`run_paper_sweep`] with optional observability: all cells of the sweep
/// feed one [`aqua_obs::Obs`] handle, so the resulting snapshot aggregates
/// the whole grid.
pub fn run_paper_sweep_observed(seeds: &[u64], obs: Option<&aqua_obs::Obs>) -> (Figure, Figure) {
    let mut fig4 = Figure::new(
        "Figure 4: Comparison of the number of selected replicas",
        "deadline_ms",
        "avg replicas selected",
    );
    let mut fig5 = Figure::new(
        "Figure 5: Validation of the probabilistic model",
        "deadline_ms",
        "observed P(timing failure)",
    );

    for pc in PAPER_PROBABILITIES {
        let label = format!("Pc = {pc}");
        let mut redundancy_runs: Vec<Series> = Vec::new();
        let mut failure_runs: Vec<Series> = Vec::new();
        for seed in seeds {
            let mut red = Series::new(label.clone());
            let mut fail = Series::new(label.clone());
            for deadline in paper_deadlines() {
                let point = run_cell_observed(deadline, pc, *seed, obs);
                red.push(deadline as f64, point.mean_redundancy);
                fail.push(deadline as f64, point.failure_probability);
            }
            redundancy_runs.push(red);
            failure_runs.push(fail);
        }
        fig4.series
            .push(average_series(label.clone(), &redundancy_runs));
        fig5.series.push(average_series(label, &failure_runs));
    }
    (fig4, fig5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_cell_produces_sane_metrics() {
        let p = run_cell(150, 0.5, 3);
        assert!(p.mean_redundancy >= 2.0, "minimum redundancy is 2");
        assert!(p.mean_redundancy <= 7.0, "never more than the pool");
        assert!((0.0..=1.0).contains(&p.failure_probability));
    }

    #[test]
    fn tighter_probability_selects_more_replicas() {
        // At a tight 110 ms deadline the Pc=0.9 client must fan out much
        // wider than the Pc=0 client.
        let strict = run_cell(110, 0.9, 5);
        let loose = run_cell(110, 0.0, 5);
        assert!(
            strict.mean_redundancy > loose.mean_redundancy,
            "strict {} vs loose {}",
            strict.mean_redundancy,
            loose.mean_redundancy
        );
    }
}
