//! Marker attributes for the AQuA workspace.
//!
//! The attributes expand to nothing: they exist so humans and tools
//! (`aqua-lint` in particular) can see which functions sit on latency-
//! critical paths. Apply them through the `aqua` re-export module of
//! `aqua-core` so call sites read `#[aqua::hot_path]`:
//!
//! ```ignore
//! use aqua_core::aqua;
//!
//! #[aqua::hot_path]
//! fn select(...) { ... }
//! ```
//!
//! `aqua-lint`'s `no-alloc-in-select` rule forbids allocating calls
//! (`Vec::new`, `vec!`, `to_vec`, `clone()`, `String::from`, `format!`)
//! inside any function carrying the marker, unless the line carries an
//! `// aqua-lint: allow(no-alloc-in-select) <justification>` annotation.

#![forbid(unsafe_code)]

use proc_macro::TokenStream;

/// Marks a function as part of the selection hot path (§5.3.3: the
/// selection overhead δ must stay small and bounded).
///
/// Expands to the unmodified item — the marker has no runtime effect.
#[proc_macro_attribute]
pub fn hot_path(_attr: TokenStream, item: TokenStream) -> TokenStream {
    item
}
