//! aqua-lint CLI.
//!
//! ```text
//! cargo run -p aqua-lint -- --check            # lint, exit 1 on findings
//! cargo run -p aqua-lint -- --json             # machine-readable findings
//! cargo run -p aqua-lint -- --interleave       # run the model checker
//! cargo run -p aqua-lint -- --root /some/tree  # lint another checkout
//! cargo run -p aqua-lint -- --check --baseline lint-baseline.json
//! ```

use aqua_lint::{find_workspace_root, interleave, parse_baseline, run_workspace};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    check: bool,
    json: bool,
    run_interleave: bool,
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        check: false,
        json: false,
        run_interleave: false,
        root: None,
        baseline: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => opts.check = true,
            "--json" => opts.json = true,
            "--interleave" => opts.run_interleave = true,
            "--root" => {
                let value = args.next().ok_or("--root requires a path")?;
                opts.root = Some(PathBuf::from(value));
            }
            "--baseline" => {
                let value = args.next().ok_or("--baseline requires a file")?;
                opts.baseline = Some(PathBuf::from(value));
            }
            "--help" | "-h" => {
                println!(
                    "aqua-lint: project-specific static analysis\n\n\
                     USAGE: aqua-lint [--check] [--json] [--interleave] [--root PATH] [--baseline FILE]\n\n\
                     --check          exit non-zero when findings exist (CI mode)\n\
                     --json           emit findings as JSON\n\
                     --interleave     run the bounded interleaving checker instead of lints\n\
                     --root PATH      workspace root (default: discovered from this binary's manifest)\n\
                     --baseline FILE  suppress findings recorded in a previous --json report;\n\
                                      only new findings count (and fail --check)"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("aqua-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if opts.run_interleave {
        return run_models(opts.json);
    }

    let root = opts
        .root
        .clone()
        .or_else(|| {
            // The manifest dir is crates/lint; the workspace root is above.
            find_workspace_root(&PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."))
        })
        .or_else(|| {
            std::env::current_dir()
                .ok()
                .and_then(|d| find_workspace_root(&d))
        });
    let Some(root) = root else {
        eprintln!("aqua-lint: could not locate the workspace root (try --root)");
        return ExitCode::from(2);
    };

    let mut report = match run_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("aqua-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let mut suppressed = 0usize;
    if let Some(path) = &opts.baseline {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("aqua-lint: reading baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        suppressed = report.apply_baseline(&parse_baseline(&text));
    }

    if opts.json {
        println!("{}", report.to_json());
    } else {
        for f in &report.findings {
            println!("{f}");
        }
        let counts = report.counts();
        let summary: Vec<String> = counts.iter().map(|(r, n)| format!("{r}={n}")).collect();
        let baselined = if suppressed > 0 {
            format!(", {suppressed} baselined")
        } else {
            String::new()
        };
        println!(
            "aqua-lint: {} finding(s) in {} file(s), {} manifest(s){baselined} [{}]",
            report.findings.len(),
            report.files_scanned,
            report.manifests_audited,
            summary.join(" ")
        );
    }

    if opts.check && !report.findings.is_empty() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn run_models(json: bool) -> ExitCode {
    let results = interleave::run_all();
    let mut ok = true;
    if json {
        let mut out = String::from("{\n  \"models\": [");
        for (i, (name, e)) in results.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"name\": \"{name}\", \"schedules\": {}, \"deadlocks\": {}, \"violations\": {}, \"passed\": {}}}",
                e.schedules,
                e.deadlocks,
                e.violations.len(),
                e.passed()
            ));
        }
        out.push_str("\n  ]\n}");
        println!("{out}");
    }
    for (name, e) in &results {
        if !json {
            println!(
                "model {name}: {} schedules, {} deadlocks, {} violations — {}",
                e.schedules,
                e.deadlocks,
                e.violations.len(),
                if e.passed() { "PASS" } else { "FAIL" }
            );
            for (trace, msg) in &e.violations {
                println!("  violation: {msg}");
                println!("    trace: {}", trace.join(" -> "));
            }
        }
        if !e.passed() || e.schedules < 1000 {
            ok = false;
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
