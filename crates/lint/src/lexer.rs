//! A hand-rolled Rust lexer, just deep enough for project lints.
//!
//! The lexer does **not** try to be a full Rust tokenizer. It needs to get
//! exactly four things right so the rules never fire inside non-code text:
//!
//! * line (`//`) and block (`/* */`, nested) comments are stripped into a
//!   side channel (the allowlist lives in comments);
//! * string literals — plain, raw (`r#"…"#` with any `#` count), byte, and
//!   char literals — become opaque [`TokenKind::Str`]/[`TokenKind::Char`]
//!   tokens, so `".unwrap()"` inside a string is never a finding;
//! * lifetimes (`'a`) are distinguished from char literals (`'a'`);
//! * every remaining token carries its 1-based source line for reporting.
//!
//! Everything else (numbers, identifiers, punctuation) is tokenized in the
//! most straightforward way possible.

/// Classification of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (the lexer does not distinguish).
    Ident,
    /// Numeric literal.
    Number,
    /// String literal of any flavor (plain, raw, byte).
    Str,
    /// Char or byte-char literal.
    Char,
    /// Lifetime (`'a`) — including the quote-less label form.
    Lifetime,
    /// Single punctuation character.
    Punct,
}

/// One token with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// The token text. For [`TokenKind::Str`] the quotes/prefix are kept.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
}

impl Token {
    /// True if this token is an identifier with exactly the given text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// True if this token is the given punctuation character.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.starts_with(ch)
    }
}

/// A comment captured out-of-band (allow annotations live here).
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: usize,
    /// Comment text including the `//` / `/*` introducer.
    pub text: String,
}

/// Result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens, in source order.
    pub tokens: Vec<Token>,
    /// Comments, in source order.
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// Lines of comments whose text contains `needle` (e.g. `"SAFETY:"`),
    /// for adjacency checks against token lines.
    pub fn comment_lines_containing(&self, needle: &str) -> std::collections::BTreeSet<usize> {
        self.comments
            .iter()
            .filter(|c| c.text.contains(needle))
            .map(|c| c.line)
            .collect()
    }
}

/// Tokenize `source`, splitting code tokens from comments.
pub fn lex(source: &str) -> Lexed {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let ch = self.peek(0)?;
        self.pos += 1;
        if ch == '\n' {
            self.line += 1;
        }
        Some(ch)
    }

    fn push(&mut self, kind: TokenKind, text: String, line: usize) {
        self.out.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(ch) = self.peek(0) {
            let line = self.line;
            match ch {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string(String::new(), line),
                '\'' => self.char_or_lifetime(line),
                c if c == '_' || c.is_alphabetic() => self.ident_or_prefixed(line),
                c if c.is_ascii_digit() => self.number(line),
                _ => {
                    let c = self.bump().unwrap_or_default();
                    self.push(TokenKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: usize) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment { line, text });
    }

    fn block_comment(&mut self, line: usize) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth = depth.saturating_sub(1);
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push(Comment { line, text });
    }

    /// Plain or byte string body, after any prefix. `text` holds the prefix.
    fn string(&mut self, mut text: String, line: usize) {
        text.push('"');
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            text.push(c);
            match c {
                '\\' => {
                    if let Some(esc) = self.bump() {
                        text.push(esc);
                    }
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokenKind::Str, text, line);
    }

    /// Raw string body after the `r`/`br` prefix: `#…#"…"#…#`.
    fn raw_string(&mut self, mut text: String, line: usize) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            text.push('#');
            self.bump();
        }
        text.push('"');
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            text.push(c);
            if c == '"' {
                let mut seen = 0usize;
                while seen < hashes && self.peek(0) == Some('#') {
                    seen += 1;
                    text.push('#');
                    self.bump();
                }
                if seen == hashes {
                    break;
                }
            }
        }
        self.push(TokenKind::Str, text, line);
    }

    fn char_or_lifetime(&mut self, line: usize) {
        // Lifetime: `'ident` not followed by a closing quote.
        let next = self.peek(1);
        let after = self.peek(2);
        let is_lifetime =
            matches!(next, Some(c) if c == '_' || c.is_alphabetic()) && after != Some('\'');
        if is_lifetime {
            let mut text = String::from('\'');
            self.bump();
            while let Some(c) = self.peek(0) {
                if c == '_' || c.is_alphanumeric() {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokenKind::Lifetime, text, line);
            return;
        }
        // Char literal: consume to the unescaped closing quote.
        let mut text = String::from('\'');
        self.bump();
        while let Some(c) = self.bump() {
            text.push(c);
            match c {
                '\\' => {
                    if let Some(esc) = self.bump() {
                        text.push(esc);
                    }
                }
                '\'' => break,
                _ => {}
            }
        }
        self.push(TokenKind::Char, text, line);
    }

    fn ident_or_prefixed(&mut self, line: usize) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // String/char prefixes: r"…", r#"…"#, b"…", b'…', br#"…"#, r#ident.
        match text.as_str() {
            "r" | "br" | "rb" => match self.peek(0) {
                Some('"') => return self.raw_string(text, line),
                Some('#') => {
                    // `r#ident` (raw identifier) vs `r#"…"#` (raw string).
                    let mut ahead = 0usize;
                    while self.peek(ahead) == Some('#') {
                        ahead += 1;
                    }
                    if self.peek(ahead) == Some('"') {
                        return self.raw_string(text, line);
                    }
                    if text == "r" && ahead == 1 {
                        self.bump(); // the `#`
                        let mut raw = String::from("r#");
                        while let Some(c) = self.peek(0) {
                            if c == '_' || c.is_alphanumeric() {
                                raw.push(c);
                                self.bump();
                            } else {
                                break;
                            }
                        }
                        return self.push(TokenKind::Ident, raw, line);
                    }
                }
                _ => {}
            },
            "b" => match self.peek(0) {
                Some('"') => return self.string(text, line),
                Some('\'') => {
                    // Byte char: b'x' — reuse char lexing, keep the prefix.
                    let start = self.out.tokens.len();
                    self.char_or_lifetime(line);
                    if let Some(tok) = self.out.tokens.get_mut(start) {
                        tok.text.insert(0, 'b');
                        tok.kind = TokenKind::Char;
                    }
                    return;
                }
                _ => {}
            },
            _ => {}
        }
        self.push(TokenKind::Ident, text, line);
    }

    fn number(&mut self, line: usize) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else if c == '.' && matches!(self.peek(1), Some(d) if d.is_ascii_digit()) {
                // `1.5` continues the number; `0..n` does not.
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Number, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_hide_their_contents() {
        let lexed = lex(r#"let x = "call .unwrap() here"; x.len()"#);
        assert!(lexed.tokens.iter().any(|t| t.kind == TokenKind::Str));
        assert!(!idents(r#"let x = "call .unwrap() here";"#).contains(&"unwrap".to_string()));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let lexed = lex(r##"let x = r#"embedded "quote" and .unwrap()"# ;"##);
        let strs: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].text.contains("unwrap"));
        assert!(!idents(r##"r#"x .unwrap()"# "##).contains(&"unwrap".to_string()));
    }

    #[test]
    fn comments_are_out_of_band() {
        let lexed = lex("// calls .unwrap() on purpose\nlet y = 1; /* .expect( */");
        assert_eq!(lexed.comments.len(), 2);
        assert!(!lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == "unwrap"));
    }

    #[test]
    fn nested_block_comments() {
        let lexed = lex("/* outer /* inner */ still comment */ fn f() {}");
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.tokens.iter().any(|t| t.is_ident("fn")));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str, c: char) { let y = 'b'; }");
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Char && t.text == "'b'"));
    }

    #[test]
    fn lines_are_tracked() {
        let lexed = lex("a\nb\n\nc");
        let lines: Vec<_> = lexed.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn float_vs_range() {
        let lexed = lex("let a = 1.5; for i in 0..10 {}");
        assert!(lexed.tokens.iter().any(|t| t.text == "1.5"));
        assert!(lexed.tokens.iter().any(|t| t.text == "0"));
        assert!(lexed.tokens.iter().any(|t| t.text == "10"));
    }
}
