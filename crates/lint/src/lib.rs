//! # aqua-lint — project-specific static analysis for the aqua workspace
//!
//! A self-contained lint tool: a hand-rolled lexer ([`lexer`]) feeds eight
//! token-level rules ([`rules`]), and a bounded model checker
//! ([`interleave`]) exhaustively explores the interleavings of six shadow
//! models ported from real synchronization hot spots.
//!
//! The tool takes no dependencies beyond the vendored `shadow` shim — it
//! must keep working in the air-gapped build environment, and it lints the
//! workspace that enforces that same property (`vendor-audit`).
//!
//! Run it as `cargo run -p aqua-lint -- --check` (CI mode) or with
//! `--json` for machine-readable findings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod interleave;
pub mod lexer;
pub mod rules;

use rules::{audit_manifest, detect_cycles, Finding, LockEdge, ALL_RULES};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Aggregate result of linting a workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, in (file, line) order.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of manifests audited.
    pub manifests_audited: usize,
}

impl Report {
    /// Finding count per rule (zero entries included, reporting order).
    pub fn counts(&self) -> Vec<(&'static str, usize)> {
        let mut by_rule: BTreeMap<&str, usize> = BTreeMap::new();
        for f in &self.findings {
            *by_rule.entry(f.rule).or_insert(0) += 1;
        }
        ALL_RULES
            .iter()
            .map(|r| (*r, by_rule.get(r).copied().unwrap_or(0)))
            .collect()
    }

    /// Render the report as JSON (hand-built; no serializer dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
                json_escape(f.rule),
                json_escape(&f.file),
                f.line,
                json_escape(&f.message)
            ));
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"by_rule\": {");
        for (ri, rule) in ALL_RULES.iter().enumerate() {
            if ri > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{rule}\": ["));
            let mut first = true;
            for f in self.findings.iter().filter(|f| f.rule == *rule) {
                if !first {
                    out.push_str(", ");
                }
                first = false;
                out.push_str(&format!(
                    "{{\"file\": \"{}\", \"line\": {}}}",
                    json_escape(&f.file),
                    f.line
                ));
            }
            out.push(']');
        }
        out.push_str("},\n  \"counts\": {");
        for (i, (rule, n)) in self.counts().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{rule}\": {n}"));
        }
        out.push_str(&format!(
            "}},\n  \"files_scanned\": {},\n  \"manifests_audited\": {},\n  \"total\": {}\n}}",
            self.files_scanned,
            self.manifests_audited,
            self.findings.len()
        ));
        out
    }
}

/// Suppression keys parsed from a baseline report: `(rule, file, message)`.
///
/// Line numbers drift as files are edited, so they are deliberately not
/// part of a finding's identity. (A message that itself embeds a line
/// reference — the atomics-ordering cross-reference — re-fires when that
/// referenced site moves; refresh the baseline after such edits.)
pub type Baseline = std::collections::BTreeSet<(String, String, String)>;

/// Parse a previous `--json` report into a [`Baseline`].
///
/// The parser is matched to [`Report::to_json`]'s own output — one finding
/// object per line with `rule`/`file`/`message` string fields — rather
/// than being a general JSON parser.
pub fn parse_baseline(text: &str) -> Baseline {
    let mut set = Baseline::new();
    for line in text.lines() {
        let fields = (
            json_field(line, "rule"),
            json_field(line, "file"),
            json_field(line, "message"),
        );
        if let (Some(r), Some(f), Some(m)) = fields {
            set.insert((r, f, m));
        }
    }
    set
}

/// Extract and unescape the string value of `"key": "…"` on one line.
fn json_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let at = line.find(&pat)? + pat.len();
    let mut out = String::new();
    let mut chars = line[at..].chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = (&mut chars).take(4).collect();
                    if let Some(v) = u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32) {
                        out.push(v);
                    }
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

impl Report {
    /// Drop findings present in `baseline`; returns how many were
    /// suppressed. CI uses this to fail only on *new* findings.
    pub fn apply_baseline(&mut self, baseline: &Baseline) -> usize {
        let before = self.findings.len();
        self.findings.retain(|f| {
            !baseline.contains(&(f.rule.to_string(), f.file.clone(), f.message.clone()))
        });
        before - self.findings.len()
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Lint every `.rs` file and manifest under `root` (a workspace checkout).
///
/// Scans `crates/` and `src/`; skips `target/`, hidden directories, and
/// the lint fixtures (which contain violations on purpose). Audits the
/// root, `crates/*`, and `vendor/*` manifests.
pub fn run_workspace(root: &Path) -> std::io::Result<Report> {
    let mut report = Report::default();
    let mut edges: Vec<LockEdge> = Vec::new();

    let mut files = Vec::new();
    for top in ["crates", "src"] {
        collect_rs_files(&root.join(top), &mut files)?;
    }
    files.sort();

    for file in &files {
        let rel = relative(root, file);
        if rel.contains("tests/fixtures") {
            continue;
        }
        let source = std::fs::read_to_string(file)?;
        let analysis = rules::analyze_file(&rel, &source);
        report.findings.extend(analysis.findings);
        edges.extend(analysis.lock_edges);
        report.files_scanned += 1;
    }

    report.findings.extend(detect_cycles(&edges));

    let mut manifests = vec![root.join("Cargo.toml")];
    for dir in ["crates", "vendor"] {
        let base = root.join(dir);
        if let Ok(entries) = std::fs::read_dir(&base) {
            for entry in entries.flatten() {
                let m = entry.path().join("Cargo.toml");
                if m.is_file() {
                    manifests.push(m);
                }
            }
        }
    }
    manifests.sort();
    for m in &manifests {
        let rel = relative(root, m);
        let source = std::fs::read_to_string(m)?;
        report.findings.extend(audit_manifest(&rel, &source));
        report.manifests_audited += 1;
    }

    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)?.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Locate the workspace root: walk up from `start` until a directory with
/// both `Cargo.toml` and `crates/` appears.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
