//! Bounded exhaustive interleaving checker (loom-style, but tiny).
//!
//! A [`Model`] is a fixed set of threads, each a straight-line sequence of
//! [`Step`]s over a `Clone`-able shadow state (built from the
//! [`shadow`] crate's [`ShadowLock`]/[`ShadowAtomicU64`] primitives). The
//! explorer enumerates **every** interleaving by depth-first search,
//! cloning the state at each branch point, and checks the model invariant
//! after every step. All-threads-blocked with work remaining is reported
//! as a deadlock.
//!
//! Two models port real synchronization hot spots from the workspace:
//!
//! * [`registry_scrape_model`] — `aqua-obs` metric registration racing a
//!   scrape: registration writes two parallel vectors under the registry
//!   mutex, and histogram recording bumps `count` before the bucket. A
//!   scrape must never observe torn vectors, and must read buckets before
//!   the count so the documented `count >= sum(buckets)` quantile fallback
//!   holds.
//! * [`repository_epoch_model`] — `aqua-core` repository `record_perf`
//!   racing a remove/re-insert: model-cache keys carry the replica
//!   `epoch`, so a generation counter that restarts after re-insert can
//!   never alias a stale cache entry (the ABA hazard the epoch exists
//!   for). [`repository_no_epoch_model`] is the deliberately buggy
//!   variant; tests use it to prove the checker actually catches the bug.

use shadow::{ShadowAtomicU64, ShadowLock};

/// One atomic action a thread can take.
pub struct Step<S> {
    /// Display name used in violation traces.
    pub name: &'static str,
    /// Whether the step can run in `state` (lock acquisition gates here).
    pub enabled: fn(&S, usize) -> bool,
    /// Execute the step.
    pub run: fn(&mut S, usize),
}

/// A complete model: initial state, per-thread step sequences, invariant.
pub struct Model<S> {
    /// Model name for reporting.
    pub name: &'static str,
    /// Build the initial state.
    pub init: fn() -> S,
    /// One straight-line step sequence per thread.
    pub threads: Vec<Vec<Step<S>>>,
    /// Checked after every step and at the end of every schedule.
    pub invariant: fn(&S) -> Result<(), String>,
}

/// Outcome of exhaustively exploring a model.
#[derive(Debug, Default)]
pub struct Exploration {
    /// Complete interleavings explored (leaves of the schedule tree).
    pub schedules: u64,
    /// Schedules that wedged with runnable work remaining.
    pub deadlocks: u64,
    /// Invariant violations: (trace of step names, message).
    pub violations: Vec<(Vec<String>, String)>,
}

impl Exploration {
    /// True when every schedule completed and the invariant always held.
    pub fn passed(&self) -> bool {
        self.deadlocks == 0 && self.violations.is_empty()
    }
}

/// Upper bound on recorded violations; exploration keeps counting past it.
const MAX_VIOLATIONS: usize = 16;

/// Exhaustively explore every interleaving of `model`'s threads.
pub fn explore<S: Clone>(model: &Model<S>) -> Exploration {
    let mut out = Exploration::default();
    let state = (model.init)();
    let pcs = vec![0usize; model.threads.len()];
    let mut trace = Vec::new();
    dfs(model, state, pcs, &mut trace, &mut out);
    out
}

fn dfs<S: Clone>(
    model: &Model<S>,
    state: S,
    pcs: Vec<usize>,
    trace: &mut Vec<String>,
    out: &mut Exploration,
) {
    let mut ran_any = false;
    let mut all_done = true;
    for tid in 0..model.threads.len() {
        let pc = pcs[tid];
        if pc >= model.threads[tid].len() {
            continue;
        }
        all_done = false;
        let step = &model.threads[tid][pc];
        if !(step.enabled)(&state, tid) {
            continue;
        }
        ran_any = true;
        let mut next = state.clone();
        (step.run)(&mut next, tid);
        trace.push(format!("t{tid}:{}", step.name));
        if let Err(msg) = (model.invariant)(&next) {
            if out.violations.len() < MAX_VIOLATIONS {
                out.violations.push((trace.clone(), msg));
            }
        }
        let mut next_pcs = pcs.clone();
        next_pcs[tid] += 1;
        dfs(model, next, next_pcs, trace, out);
        trace.pop();
    }
    if all_done {
        out.schedules += 1;
    } else if !ran_any {
        out.deadlocks += 1;
        if out.violations.len() < MAX_VIOLATIONS {
            out.violations
                .push((trace.clone(), "deadlock: all threads blocked".to_string()));
        }
    }
}

// ---------------------------------------------------------------------------
// Model 1: obs registry — register vs scrape.
// ---------------------------------------------------------------------------

/// Shadow of the `aqua-obs` registry hot spot.
#[derive(Clone)]
pub struct RegistryState {
    /// The registry mutex serializing registration against scrapes.
    lock: ShadowLock,
    /// `RegistryInner::names.len()` — first half of a registration.
    names: ShadowAtomicU64,
    /// `RegistryInner::values.len()` — second half of a registration.
    values: ShadowAtomicU64,
    /// Histogram observation count (bumped before the bucket, lock-free).
    hist_count: ShadowAtomicU64,
    /// Histogram bucket total (bumped after the count, lock-free).
    hist_bucket: ShadowAtomicU64,
    /// Scrape-side snapshots (`None` until read).
    snap_names: Option<u64>,
    snap_values: Option<u64>,
    snap_bucket: Option<u64>,
    snap_count: Option<u64>,
}

/// Register-vs-scrape model. Thread 0 registers a metric (two vector
/// pushes under the lock) then records two histogram samples (count, then
/// bucket, each time). Thread 1 scrapes: vector lengths under the lock,
/// then two read rounds of buckets-before-count. Invariants: the scrape
/// never sees torn vectors, and every observed `(bucket, count)` pair
/// satisfies `bucket <= count` so the quantile fallback holds.
pub fn registry_scrape_model() -> Model<RegistryState> {
    fn init() -> RegistryState {
        RegistryState {
            lock: ShadowLock::new(),
            names: ShadowAtomicU64::new(0),
            values: ShadowAtomicU64::new(0),
            hist_count: ShadowAtomicU64::new(0),
            hist_bucket: ShadowAtomicU64::new(0),
            snap_names: None,
            snap_values: None,
            snap_bucket: None,
            snap_count: None,
        }
    }
    fn can_lock(s: &RegistryState, tid: usize) -> bool {
        s.lock.can_acquire(tid)
    }
    fn always(_: &RegistryState, _: usize) -> bool {
        true
    }
    fn invariant(s: &RegistryState) -> Result<(), String> {
        if let (Some(n), Some(v)) = (s.snap_names, s.snap_values) {
            if n != v {
                return Err(format!("torn registration observed: names={n} values={v}"));
            }
        }
        if let (Some(b), Some(c)) = (s.snap_bucket, s.snap_count) {
            if b > c {
                return Err(format!(
                    "bucket sum {b} exceeds count {c}; quantile fallback breaks"
                ));
            }
        }
        Ok(())
    }

    let register: Vec<Step<RegistryState>> = vec![
        Step {
            name: "reg.lock",
            enabled: can_lock,
            run: |s, tid| s.lock.acquire(tid),
        },
        Step {
            name: "reg.push_name",
            enabled: always,
            run: |s, _| {
                s.names.fetch_add(1);
            },
        },
        Step {
            name: "reg.push_value",
            enabled: always,
            run: |s, _| {
                s.values.fetch_add(1);
            },
        },
        Step {
            name: "reg.unlock",
            enabled: always,
            run: |s, tid| s.lock.release(tid),
        },
        Step {
            name: "hist.count+=1",
            enabled: always,
            run: |s, _| {
                s.hist_count.fetch_add(1);
            },
        },
        Step {
            name: "hist.bucket+=1",
            enabled: always,
            run: |s, _| {
                s.hist_bucket.fetch_add(1);
            },
        },
        Step {
            name: "hist.count+=1 (2)",
            enabled: always,
            run: |s, _| {
                s.hist_count.fetch_add(1);
            },
        },
        Step {
            name: "hist.bucket+=1 (2)",
            enabled: always,
            run: |s, _| {
                s.hist_bucket.fetch_add(1);
            },
        },
    ];
    let scrape: Vec<Step<RegistryState>> = vec![
        Step {
            name: "scrape.lock",
            enabled: can_lock,
            run: |s, tid| s.lock.acquire(tid),
        },
        Step {
            name: "scrape.read_names",
            enabled: always,
            run: |s, _| s.snap_names = Some(s.names.load()),
        },
        Step {
            name: "scrape.read_values",
            enabled: always,
            run: |s, _| s.snap_values = Some(s.values.load()),
        },
        Step {
            name: "scrape.unlock",
            enabled: always,
            run: |s, tid| s.lock.release(tid),
        },
        Step {
            name: "scrape.read_bucket",
            enabled: always,
            run: |s, _| s.snap_bucket = Some(s.hist_bucket.load()),
        },
        Step {
            name: "scrape.read_count",
            enabled: always,
            run: |s, _| s.snap_count = Some(s.hist_count.load()),
        },
        Step {
            name: "scrape.read_bucket (2)",
            enabled: always,
            run: |s, _| {
                // A new read round: the round-1 count snapshot must not be
                // compared against a round-2 bucket read.
                s.snap_count = None;
                s.snap_bucket = Some(s.hist_bucket.load());
            },
        },
        Step {
            name: "scrape.read_count (2)",
            enabled: always,
            run: |s, _| s.snap_count = Some(s.hist_count.load()),
        },
        Step {
            name: "scrape.render",
            enabled: always,
            run: |_, _| {},
        },
    ];

    Model {
        name: "obs-registry-register-vs-scrape",
        init,
        threads: vec![register, scrape],
        invariant,
    }
}

/// Buggy registry variant: the scrape reads `count` *before* `bucket`,
/// so a concurrent record can land between the two reads and the scrape
/// observes `bucket > count`. Exists to prove the checker catches it.
pub fn registry_scrape_buggy_model() -> Model<RegistryState> {
    let mut model = registry_scrape_model();
    model.name = "obs-registry-buggy-read-order";
    // Swap the two lock-free reads in the scrape thread.
    model.threads[1].swap(4, 5);
    model
}

// ---------------------------------------------------------------------------
// Model 2: repository — record vs remove/re-insert (ABA epoch).
// ---------------------------------------------------------------------------

/// Shadow of the repository entry a model-cache key is derived from.
#[derive(Clone)]
pub struct RepoState {
    /// Bumped on every (re-)insert; part of the cache key.
    epoch: ShadowAtomicU64,
    /// Per-entry update generation; restarts at 0 on re-insert.
    generation: ShadowAtomicU64,
    /// Which incarnation of the replica the stats describe.
    incarnation: ShadowAtomicU64,
    /// Whether the cache key includes the epoch (the fix under test).
    key_includes_epoch: bool,
    /// Cached `(epoch, generation, incarnation)` from the reader side.
    cached: Option<(u64, u64, u64)>,
    /// First invariant violation observed by a lookup step.
    violation: Option<String>,
}

fn repo_lookup(s: &mut RepoState) {
    let Some((e, g, inc)) = s.cached else { return };
    let key_matches = if s.key_includes_epoch {
        e == s.epoch.load() && g == s.generation.load()
    } else {
        g == s.generation.load()
    };
    if key_matches && inc != s.incarnation.load() {
        s.violation = Some(format!(
            "stale cache hit: key matched but data is from incarnation {inc}, repo at {}",
            s.incarnation.load()
        ));
    }
}

fn repo_model(key_includes_epoch: bool, name: &'static str) -> Model<RepoState> {
    fn always(_: &RepoState, _: usize) -> bool {
        true
    }
    fn invariant(s: &RepoState) -> Result<(), String> {
        match &s.violation {
            Some(msg) => Err(msg.clone()),
            None => Ok(()),
        }
    }
    fn lookup_step(s: &mut RepoState, _: usize) {
        repo_lookup(s);
    }

    // Thread 0 — the gateway's model cache: snapshot a key, then keep
    // validating cached data against the live entry (probability_by_cached).
    let cache: Vec<Step<RepoState>> = vec![
        Step {
            name: "cache.build",
            enabled: always,
            run: |s, _| {
                s.cached = Some((s.epoch.load(), s.generation.load(), s.incarnation.load()));
            },
        },
        Step {
            name: "cache.lookup1",
            enabled: always,
            run: lookup_step,
        },
        Step {
            name: "cache.lookup2",
            enabled: always,
            run: lookup_step,
        },
        Step {
            name: "cache.lookup3",
            enabled: always,
            run: lookup_step,
        },
        Step {
            name: "cache.lookup4",
            enabled: always,
            run: lookup_step,
        },
        Step {
            name: "cache.lookup5",
            enabled: always,
            run: lookup_step,
        },
        Step {
            name: "cache.lookup6",
            enabled: always,
            run: lookup_step,
        },
    ];

    // Thread 1 — membership + measurement pipeline: two perf records, a
    // crash-driven remove, a re-insert (new incarnation, generation reset),
    // then two records for the *new* incarnation. The final generation
    // equals the cached one, which is exactly the ABA collision.
    let membership: Vec<Step<RepoState>> = vec![
        Step {
            name: "repo.record1",
            enabled: always,
            run: |s, _| {
                s.generation.fetch_add(1);
            },
        },
        Step {
            name: "repo.record2",
            enabled: always,
            run: |s, _| {
                s.generation.fetch_add(1);
            },
        },
        Step {
            name: "repo.remove",
            enabled: always,
            run: |s, _| s.generation.store(0),
        },
        Step {
            name: "repo.reinsert",
            enabled: always,
            run: |s, _| {
                s.epoch.fetch_add(1);
                s.incarnation.fetch_add(1);
            },
        },
        Step {
            name: "repo.record3",
            enabled: always,
            run: |s, _| {
                s.generation.fetch_add(1);
            },
        },
        Step {
            name: "repo.record4",
            enabled: always,
            run: |s, _| {
                s.generation.fetch_add(1);
            },
        },
    ];

    Model {
        name,
        init: if key_includes_epoch {
            || RepoState {
                epoch: ShadowAtomicU64::new(7),
                generation: ShadowAtomicU64::new(0),
                incarnation: ShadowAtomicU64::new(0),
                key_includes_epoch: true,
                cached: None,
                violation: None,
            }
        } else {
            || RepoState {
                epoch: ShadowAtomicU64::new(7),
                generation: ShadowAtomicU64::new(0),
                incarnation: ShadowAtomicU64::new(0),
                key_includes_epoch: false,
                cached: None,
                violation: None,
            }
        },
        threads: vec![cache, membership],
        invariant,
    }
}

/// Epoch-keyed repository cache model (the shipped design). Must pass.
pub fn repository_epoch_model() -> Model<RepoState> {
    repo_model(true, "repository-record-vs-remove-epoch")
}

/// Generation-only cache key (no epoch): the ABA bug the epoch prevents.
/// Exists to prove the checker catches it.
pub fn repository_no_epoch_model() -> Model<RepoState> {
    repo_model(false, "repository-no-epoch-aba")
}

/// Run both shipped models; returns `(name, exploration)` pairs.
pub fn run_all() -> Vec<(&'static str, Exploration)> {
    vec![
        (
            "obs-registry-register-vs-scrape",
            explore(&registry_scrape_model()),
        ),
        (
            "repository-record-vs-remove-epoch",
            explore(&repository_epoch_model()),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_model_passes_exhaustively() {
        let e = explore(&registry_scrape_model());
        assert!(e.passed(), "violations: {:?}", e.violations);
        // 8 + 9 steps across two threads, 4 of each serialized by the
        // registry lock: 2002 feasible interleavings.
        assert_eq!(e.schedules, 2002);
        assert!(e.schedules >= 1000);
    }

    #[test]
    fn buggy_registry_read_order_is_caught() {
        let e = explore(&registry_scrape_buggy_model());
        assert!(
            !e.violations.is_empty(),
            "flipped read order must surface bucket > count"
        );
        assert!(e.violations[0].1.contains("bucket"));
    }

    #[test]
    fn repository_epoch_model_passes_exhaustively() {
        let e = explore(&repository_epoch_model());
        assert!(e.passed(), "violations: {:?}", e.violations);
        // 7 + 6 steps: C(13, 6) = 1716 interleavings.
        assert_eq!(e.schedules, 1716);
        assert!(e.schedules >= 1000);
    }

    #[test]
    fn generation_only_key_hits_the_aba_bug() {
        let e = explore(&repository_no_epoch_model());
        assert!(
            !e.violations.is_empty(),
            "dropping the epoch from the key must reintroduce the ABA race"
        );
        assert!(e.violations[0].1.contains("stale cache hit"));
    }

    #[test]
    fn lock_steps_gate_on_the_holder() {
        // A model where both threads only lock/unlock can never deadlock
        // and never runs a critical section concurrently.
        let e = explore(&registry_scrape_model());
        assert_eq!(e.deadlocks, 0);
    }
}
