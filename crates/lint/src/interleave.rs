//! Bounded exhaustive interleaving checker (loom-style, but tiny).
//!
//! A [`Model`] is a fixed set of threads, each a straight-line sequence of
//! [`Step`]s over a `Clone`-able shadow state (built from the
//! [`shadow`] crate's [`ShadowLock`]/[`ShadowAtomicU64`] primitives). The
//! explorer enumerates **every** interleaving by depth-first search,
//! cloning the state at each branch point, and checks the model invariant
//! after every step. All-threads-blocked with work remaining is reported
//! as a deadlock.
//!
//! Seven models port real synchronization hot spots from the workspace:
//!
//! * [`registry_scrape_model`] — `aqua-obs` metric registration racing a
//!   scrape: registration writes two parallel vectors under the registry
//!   mutex, and histogram recording bumps `count` before the bucket. A
//!   scrape must never observe torn vectors, and must read buckets before
//!   the count so the documented `count >= sum(buckets)` quantile fallback
//!   holds.
//! * [`repository_epoch_model`] — `aqua-core` repository `record_perf`
//!   racing a remove/re-insert: model-cache keys carry the replica
//!   `epoch`, so a generation counter that restarts after re-insert can
//!   never alias a stale cache entry (the ABA hazard the epoch exists
//!   for). [`repository_no_epoch_model`] is the deliberately buggy
//!   variant; tests use it to prove the checker actually catches the bug.
//! * [`snapshot_publish_model`] — the concurrent gateway's snapshot
//!   pipeline: sharded ingestion marks a dirty flag, publishers rebuild
//!   under a publish mutex and install through a version-guarded cell,
//!   planners read lock-free. [`snapshot_publish_racy_model`] drops both
//!   the mutex and the guard to exhibit the lost-update/stale-snapshot
//!   ABA the protocol prevents.
//! * [`pending_retry_model`] — the sharded pending-request table: a first
//!   reply CASes the shared `answered` flag and retires sibling attempts
//!   while the retry path inserts its entry; the retry's post-insert
//!   re-check closes the lost-entry window.
//!   [`pending_retry_no_recheck_model`] and [`pending_retry_toctou_model`]
//!   are the buggy variants (leaked pending entry, double delivery).
//! * [`reactor_wake_model`] — the socket runtime's self-pipe wake path:
//!   submitters coalesce pokes through the `wake_pending` flag (only the
//!   0→1 `swap` writes the wake byte), and the reactor loop drains the
//!   pipe, clears the flag, and *then* harvests outboxes. Clearing before
//!   harvesting is load-bearing: [`reactor_lost_wakeup_model`] flips the
//!   two and exhibits the lost wakeup (dirty outbox, empty pipe, reactor
//!   parked forever) the shipped order prevents.
//! * [`mux_reply_model`] — the multiplexed client's reply routing: wire
//!   sequence numbers carry the logical handle in the top 24 bits and a
//!   handle-local seq in the low 40 (`mux.rs`), so the router can
//!   demultiplex replies back to the right parked caller while give-up
//!   races delivery. [`mux_seq_collision_model`] composes wire seqs from
//!   the local counter alone, so two handles' seqs collide and a reply
//!   resolves the wrong caller's waiter.
//! * [`shard_barrier_model`] — `lan-sim`'s sharded DES round protocol:
//!   worker shards publish next-event times, the leader computes the
//!   inclusive window horizon `min(next) + L − 1` from the topology
//!   lookahead `L`, and cross-shard sends distribute at the barrier,
//!   arriving at send-time + `L` — strictly *after* every window that
//!   could have produced them. [`shard_barrier_off_by_one_model`] widens
//!   the window to `min(next) + L`, so an arrival at exactly `T + L`
//!   lands inside a window the receiver already closed — the causality
//!   violation the shipped `−1` prevents.

use shadow::{ShadowAtomicU64, ShadowLock};

/// One atomic action a thread can take.
pub struct Step<S> {
    /// Display name used in violation traces.
    pub name: &'static str,
    /// Whether the step can run in `state` (lock acquisition gates here).
    pub enabled: fn(&S, usize) -> bool,
    /// Execute the step.
    pub run: fn(&mut S, usize),
}

/// A complete model: initial state, per-thread step sequences, invariant.
pub struct Model<S> {
    /// Model name for reporting.
    pub name: &'static str,
    /// Build the initial state.
    pub init: fn() -> S,
    /// One straight-line step sequence per thread.
    pub threads: Vec<Vec<Step<S>>>,
    /// Checked after every step and at the end of every schedule.
    pub invariant: fn(&S) -> Result<(), String>,
}

/// Outcome of exhaustively exploring a model.
#[derive(Debug, Default)]
pub struct Exploration {
    /// Complete interleavings explored (leaves of the schedule tree).
    pub schedules: u64,
    /// Schedules that wedged with runnable work remaining.
    pub deadlocks: u64,
    /// Invariant violations: (trace of step names, message).
    pub violations: Vec<(Vec<String>, String)>,
}

impl Exploration {
    /// True when every schedule completed and the invariant always held.
    pub fn passed(&self) -> bool {
        self.deadlocks == 0 && self.violations.is_empty()
    }
}

/// Upper bound on recorded violations; exploration keeps counting past it.
const MAX_VIOLATIONS: usize = 16;

/// Exhaustively explore every interleaving of `model`'s threads.
pub fn explore<S: Clone>(model: &Model<S>) -> Exploration {
    let mut out = Exploration::default();
    let state = (model.init)();
    let pcs = vec![0usize; model.threads.len()];
    let mut trace = Vec::new();
    dfs(model, state, pcs, &mut trace, &mut out);
    out
}

fn dfs<S: Clone>(
    model: &Model<S>,
    state: S,
    pcs: Vec<usize>,
    trace: &mut Vec<String>,
    out: &mut Exploration,
) {
    let mut ran_any = false;
    let mut all_done = true;
    for tid in 0..model.threads.len() {
        let pc = pcs[tid];
        if pc >= model.threads[tid].len() {
            continue;
        }
        all_done = false;
        let step = &model.threads[tid][pc];
        if !(step.enabled)(&state, tid) {
            continue;
        }
        ran_any = true;
        let mut next = state.clone();
        (step.run)(&mut next, tid);
        trace.push(format!("t{tid}:{}", step.name));
        if let Err(msg) = (model.invariant)(&next) {
            if out.violations.len() < MAX_VIOLATIONS {
                out.violations.push((trace.clone(), msg));
            }
        }
        let mut next_pcs = pcs.clone();
        next_pcs[tid] += 1;
        dfs(model, next, next_pcs, trace, out);
        trace.pop();
    }
    if all_done {
        out.schedules += 1;
    } else if !ran_any {
        out.deadlocks += 1;
        if out.violations.len() < MAX_VIOLATIONS {
            out.violations
                .push((trace.clone(), "deadlock: all threads blocked".to_string()));
        }
    }
}

// ---------------------------------------------------------------------------
// Model 1: obs registry — register vs scrape.
// ---------------------------------------------------------------------------

/// Shadow of the `aqua-obs` registry hot spot.
#[derive(Clone)]
pub struct RegistryState {
    /// The registry mutex serializing registration against scrapes.
    lock: ShadowLock,
    /// `RegistryInner::names.len()` — first half of a registration.
    names: ShadowAtomicU64,
    /// `RegistryInner::values.len()` — second half of a registration.
    values: ShadowAtomicU64,
    /// Histogram observation count (bumped before the bucket, lock-free).
    hist_count: ShadowAtomicU64,
    /// Histogram bucket total (bumped after the count, lock-free).
    hist_bucket: ShadowAtomicU64,
    /// Scrape-side snapshots (`None` until read).
    snap_names: Option<u64>,
    snap_values: Option<u64>,
    snap_bucket: Option<u64>,
    snap_count: Option<u64>,
}

/// Register-vs-scrape model. Thread 0 registers a metric (two vector
/// pushes under the lock) then records two histogram samples (count, then
/// bucket, each time). Thread 1 scrapes: vector lengths under the lock,
/// then two read rounds of buckets-before-count. Invariants: the scrape
/// never sees torn vectors, and every observed `(bucket, count)` pair
/// satisfies `bucket <= count` so the quantile fallback holds.
pub fn registry_scrape_model() -> Model<RegistryState> {
    fn init() -> RegistryState {
        RegistryState {
            lock: ShadowLock::new(),
            names: ShadowAtomicU64::new(0),
            values: ShadowAtomicU64::new(0),
            hist_count: ShadowAtomicU64::new(0),
            hist_bucket: ShadowAtomicU64::new(0),
            snap_names: None,
            snap_values: None,
            snap_bucket: None,
            snap_count: None,
        }
    }
    fn can_lock(s: &RegistryState, tid: usize) -> bool {
        s.lock.can_acquire(tid)
    }
    fn always(_: &RegistryState, _: usize) -> bool {
        true
    }
    fn invariant(s: &RegistryState) -> Result<(), String> {
        if let (Some(n), Some(v)) = (s.snap_names, s.snap_values) {
            if n != v {
                return Err(format!("torn registration observed: names={n} values={v}"));
            }
        }
        if let (Some(b), Some(c)) = (s.snap_bucket, s.snap_count) {
            if b > c {
                return Err(format!(
                    "bucket sum {b} exceeds count {c}; quantile fallback breaks"
                ));
            }
        }
        Ok(())
    }

    let register: Vec<Step<RegistryState>> = vec![
        Step {
            name: "reg.lock",
            enabled: can_lock,
            run: |s, tid| s.lock.acquire(tid),
        },
        Step {
            name: "reg.push_name",
            enabled: always,
            run: |s, _| {
                s.names.fetch_add(1);
            },
        },
        Step {
            name: "reg.push_value",
            enabled: always,
            run: |s, _| {
                s.values.fetch_add(1);
            },
        },
        Step {
            name: "reg.unlock",
            enabled: always,
            run: |s, tid| s.lock.release(tid),
        },
        Step {
            name: "hist.count+=1",
            enabled: always,
            run: |s, _| {
                s.hist_count.fetch_add(1);
            },
        },
        Step {
            name: "hist.bucket+=1",
            enabled: always,
            run: |s, _| {
                s.hist_bucket.fetch_add(1);
            },
        },
        Step {
            name: "hist.count+=1 (2)",
            enabled: always,
            run: |s, _| {
                s.hist_count.fetch_add(1);
            },
        },
        Step {
            name: "hist.bucket+=1 (2)",
            enabled: always,
            run: |s, _| {
                s.hist_bucket.fetch_add(1);
            },
        },
    ];
    let scrape: Vec<Step<RegistryState>> = vec![
        Step {
            name: "scrape.lock",
            enabled: can_lock,
            run: |s, tid| s.lock.acquire(tid),
        },
        Step {
            name: "scrape.read_names",
            enabled: always,
            run: |s, _| s.snap_names = Some(s.names.load()),
        },
        Step {
            name: "scrape.read_values",
            enabled: always,
            run: |s, _| s.snap_values = Some(s.values.load()),
        },
        Step {
            name: "scrape.unlock",
            enabled: always,
            run: |s, tid| s.lock.release(tid),
        },
        Step {
            name: "scrape.read_bucket",
            enabled: always,
            run: |s, _| s.snap_bucket = Some(s.hist_bucket.load()),
        },
        Step {
            name: "scrape.read_count",
            enabled: always,
            run: |s, _| s.snap_count = Some(s.hist_count.load()),
        },
        Step {
            name: "scrape.read_bucket (2)",
            enabled: always,
            run: |s, _| {
                // A new read round: the round-1 count snapshot must not be
                // compared against a round-2 bucket read.
                s.snap_count = None;
                s.snap_bucket = Some(s.hist_bucket.load());
            },
        },
        Step {
            name: "scrape.read_count (2)",
            enabled: always,
            run: |s, _| s.snap_count = Some(s.hist_count.load()),
        },
        Step {
            name: "scrape.render",
            enabled: always,
            run: |_, _| {},
        },
    ];

    Model {
        name: "obs-registry-register-vs-scrape",
        init,
        threads: vec![register, scrape],
        invariant,
    }
}

/// Buggy registry variant: the scrape reads `count` *before* `bucket`,
/// so a concurrent record can land between the two reads and the scrape
/// observes `bucket > count`. Exists to prove the checker catches it.
pub fn registry_scrape_buggy_model() -> Model<RegistryState> {
    let mut model = registry_scrape_model();
    model.name = "obs-registry-buggy-read-order";
    // Swap the two lock-free reads in the scrape thread.
    model.threads[1].swap(4, 5);
    model
}

// ---------------------------------------------------------------------------
// Model 2: repository — record vs remove/re-insert (ABA epoch).
// ---------------------------------------------------------------------------

/// Shadow of the repository entry a model-cache key is derived from.
#[derive(Clone)]
pub struct RepoState {
    /// Bumped on every (re-)insert; part of the cache key.
    epoch: ShadowAtomicU64,
    /// Per-entry update generation; restarts at 0 on re-insert.
    generation: ShadowAtomicU64,
    /// Which incarnation of the replica the stats describe.
    incarnation: ShadowAtomicU64,
    /// Whether the cache key includes the epoch (the fix under test).
    key_includes_epoch: bool,
    /// Cached `(epoch, generation, incarnation)` from the reader side.
    cached: Option<(u64, u64, u64)>,
    /// First invariant violation observed by a lookup step.
    violation: Option<String>,
}

fn repo_lookup(s: &mut RepoState) {
    let Some((e, g, inc)) = s.cached else { return };
    let key_matches = if s.key_includes_epoch {
        e == s.epoch.load() && g == s.generation.load()
    } else {
        g == s.generation.load()
    };
    if key_matches && inc != s.incarnation.load() {
        s.violation = Some(format!(
            "stale cache hit: key matched but data is from incarnation {inc}, repo at {}",
            s.incarnation.load()
        ));
    }
}

fn repo_model(key_includes_epoch: bool, name: &'static str) -> Model<RepoState> {
    fn always(_: &RepoState, _: usize) -> bool {
        true
    }
    fn invariant(s: &RepoState) -> Result<(), String> {
        match &s.violation {
            Some(msg) => Err(msg.clone()),
            None => Ok(()),
        }
    }
    fn lookup_step(s: &mut RepoState, _: usize) {
        repo_lookup(s);
    }

    // Thread 0 — the gateway's model cache: snapshot a key, then keep
    // validating cached data against the live entry (probability_by_cached).
    let cache: Vec<Step<RepoState>> = vec![
        Step {
            name: "cache.build",
            enabled: always,
            run: |s, _| {
                s.cached = Some((s.epoch.load(), s.generation.load(), s.incarnation.load()));
            },
        },
        Step {
            name: "cache.lookup1",
            enabled: always,
            run: lookup_step,
        },
        Step {
            name: "cache.lookup2",
            enabled: always,
            run: lookup_step,
        },
        Step {
            name: "cache.lookup3",
            enabled: always,
            run: lookup_step,
        },
        Step {
            name: "cache.lookup4",
            enabled: always,
            run: lookup_step,
        },
        Step {
            name: "cache.lookup5",
            enabled: always,
            run: lookup_step,
        },
        Step {
            name: "cache.lookup6",
            enabled: always,
            run: lookup_step,
        },
    ];

    // Thread 1 — membership + measurement pipeline: two perf records, a
    // crash-driven remove, a re-insert (new incarnation, generation reset),
    // then two records for the *new* incarnation. The final generation
    // equals the cached one, which is exactly the ABA collision.
    let membership: Vec<Step<RepoState>> = vec![
        Step {
            name: "repo.record1",
            enabled: always,
            run: |s, _| {
                s.generation.fetch_add(1);
            },
        },
        Step {
            name: "repo.record2",
            enabled: always,
            run: |s, _| {
                s.generation.fetch_add(1);
            },
        },
        Step {
            name: "repo.remove",
            enabled: always,
            run: |s, _| s.generation.store(0),
        },
        Step {
            name: "repo.reinsert",
            enabled: always,
            run: |s, _| {
                s.epoch.fetch_add(1);
                s.incarnation.fetch_add(1);
            },
        },
        Step {
            name: "repo.record3",
            enabled: always,
            run: |s, _| {
                s.generation.fetch_add(1);
            },
        },
        Step {
            name: "repo.record4",
            enabled: always,
            run: |s, _| {
                s.generation.fetch_add(1);
            },
        },
    ];

    Model {
        name,
        init: if key_includes_epoch {
            || RepoState {
                epoch: ShadowAtomicU64::new(7),
                generation: ShadowAtomicU64::new(0),
                incarnation: ShadowAtomicU64::new(0),
                key_includes_epoch: true,
                cached: None,
                violation: None,
            }
        } else {
            || RepoState {
                epoch: ShadowAtomicU64::new(7),
                generation: ShadowAtomicU64::new(0),
                incarnation: ShadowAtomicU64::new(0),
                key_includes_epoch: false,
                cached: None,
                violation: None,
            }
        },
        threads: vec![cache, membership],
        invariant,
    }
}

/// Epoch-keyed repository cache model (the shipped design). Must pass.
pub fn repository_epoch_model() -> Model<RepoState> {
    repo_model(true, "repository-record-vs-remove-epoch")
}

/// Generation-only cache key (no epoch): the ABA bug the epoch prevents.
/// Exists to prove the checker catches it.
pub fn repository_no_epoch_model() -> Model<RepoState> {
    repo_model(false, "repository-no-epoch-aba")
}

// ---------------------------------------------------------------------------
// Model 3: concurrent gateway — snapshot publish vs lock-free plan.
// ---------------------------------------------------------------------------

/// Shadow of the `ConcurrentHandler` snapshot pipeline: sharded ingestion
/// marks a dirty flag, publishers rebuild the planning snapshot under a
/// publish mutex and install it through a version-guarded cell, and the
/// planner reads the published pointer without any lock.
#[derive(Clone)]
pub struct SnapshotState {
    /// Per-shard ingested sample counts (two ingestion shards).
    shard: [ShadowAtomicU64; 2],
    /// The "snapshot is stale" flag (`ConcurrentHandler::dirty`).
    dirty: ShadowAtomicU64,
    /// Serializes rebuild+install (`ConcurrentHandler::publish`).
    publish_lock: ShadowLock,
    /// Published snapshot: version and content (samples included).
    snap_version: ShadowAtomicU64,
    snap_content: ShadowAtomicU64,
    /// Whether install refuses `version <= current` (`SnapshotCell::publish`).
    version_guard: bool,
    /// Whether rebuild+install run under the publish mutex.
    use_mutex: bool,
    /// Per-ingester scratch: the snapshot each built `(version, content)`;
    /// `None` when the dirty check said someone else already published.
    built: [Option<(u64, u64)>; 2],
    /// Per-ingester "finished the whole publish path" flags.
    done: [bool; 2],
    /// Planner scratch: last `(version, content)` loaded.
    planned: Option<(u64, u64)>,
    /// First violation observed by a planner or final-state check.
    violation: Option<String>,
}

fn snapshot_model_with(
    use_mutex: bool,
    version_guard: bool,
    name: &'static str,
) -> Model<SnapshotState> {
    fn init_guarded() -> SnapshotState {
        snapshot_init(true, true)
    }
    fn init_racy() -> SnapshotState {
        snapshot_init(false, false)
    }
    fn snapshot_init(use_mutex: bool, version_guard: bool) -> SnapshotState {
        SnapshotState {
            shard: [ShadowAtomicU64::new(0), ShadowAtomicU64::new(0)],
            dirty: ShadowAtomicU64::new(0),
            publish_lock: ShadowLock::new(),
            snap_version: ShadowAtomicU64::new(0),
            snap_content: ShadowAtomicU64::new(0),
            version_guard,
            use_mutex,
            built: [None, None],
            done: [false, false],
            planned: None,
            violation: None,
        }
    }
    fn lock_gate(s: &SnapshotState, tid: usize) -> bool {
        !s.use_mutex || s.publish_lock.can_acquire(tid)
    }
    fn always(_: &SnapshotState, _: usize) -> bool {
        true
    }
    fn invariant(s: &SnapshotState) -> Result<(), String> {
        if let Some(msg) = &s.violation {
            return Err(msg.clone());
        }
        if s.done[0] && s.done[1] && s.dirty.load() == 0 {
            let total = s.shard[0].load() + s.shard[1].load();
            let content = s.snap_content.load();
            if content != total {
                return Err(format!(
                    "published snapshot lost samples: contains {content}, shards hold {total}"
                ));
            }
        }
        Ok(())
    }

    // Each ingester mirrors `ingest` + `maybe_publish`: write its shard
    // and mark dirty (one step — the shard mutex covers both), take the
    // publish mutex, harvest (re-check dirty, clear it, rebuild from ALL
    // shards at version current+1), install, release.
    fn ingester() -> Vec<Step<SnapshotState>> {
        let steps: [Step<SnapshotState>; 5] = [
            Step {
                name: "ingest.write+dirty",
                enabled: always,
                run: |s, tid| {
                    s.shard[tid].fetch_add(1);
                    s.dirty.store(1);
                },
            },
            Step {
                name: "publish.lock",
                enabled: lock_gate,
                run: |s, tid| {
                    if s.use_mutex {
                        s.publish_lock.acquire(tid);
                    }
                },
            },
            Step {
                name: "publish.harvest",
                enabled: always,
                run: |s, tid| {
                    if s.dirty.load() == 0 {
                        s.built[tid] = None; // someone newer already published
                    } else {
                        s.dirty.store(0);
                        let content = s.shard[0].load() + s.shard[1].load();
                        s.built[tid] = Some((s.snap_version.load() + 1, content));
                    }
                },
            },
            Step {
                name: "publish.install",
                enabled: always,
                run: |s, tid| {
                    if let Some((version, content)) = s.built[tid] {
                        if !s.version_guard || version > s.snap_version.load() {
                            s.snap_version.store(version);
                            s.snap_content.store(content);
                        }
                    }
                },
            },
            Step {
                name: "publish.unlock",
                enabled: always,
                run: |s, tid| {
                    if s.use_mutex {
                        s.publish_lock.release(tid);
                    }
                    s.done[tid] = true;
                },
            },
        ];
        steps.into()
    }

    // The planner loads the published pointer twice, lock-free, exactly
    // like `plan_from_snapshot`. Versions must never regress, and one
    // version must never expose two different contents (stale-snapshot
    // ABA).
    fn plan_load(s: &mut SnapshotState) {
        let seen = (s.snap_version.load(), s.snap_content.load());
        if let Some((pv, pc)) = s.planned {
            if seen.0 < pv {
                s.violation = Some(format!(
                    "snapshot version regressed: planner saw v{pv} then v{}",
                    seen.0
                ));
            } else if seen.0 == pv && seen.1 != pc {
                s.violation = Some(format!(
                    "stale-snapshot ABA: v{pv} observed with content {pc} and then {}",
                    seen.1
                ));
            }
        }
        s.planned = Some(seen);
    }
    let planner: Vec<Step<SnapshotState>> = vec![
        Step {
            name: "plan.load1",
            enabled: always,
            run: |s, _| plan_load(s),
        },
        Step {
            name: "plan.load2",
            enabled: always,
            run: |s, _| plan_load(s),
        },
        Step {
            name: "plan.load3",
            enabled: always,
            run: |s, _| plan_load(s),
        },
    ];

    Model {
        name,
        init: if use_mutex && version_guard {
            init_guarded
        } else {
            init_racy
        },
        threads: vec![ingester(), ingester(), planner],
        invariant,
    }
}

/// Snapshot publish-vs-plan model as shipped: rebuilds serialized by the
/// publish mutex, installs guarded by the version check. Must pass.
pub fn snapshot_publish_model() -> Model<SnapshotState> {
    snapshot_model_with(true, true, "gateway-snapshot-publish-vs-plan")
}

/// Deliberately broken publish path: no publish mutex and an unguarded
/// install, so a rebuild computed before a peer's sample can overwrite
/// the newer snapshot (lost update + same-version ABA). Exists to prove
/// the checker catches it.
pub fn snapshot_publish_racy_model() -> Model<SnapshotState> {
    snapshot_model_with(false, false, "gateway-snapshot-unserialized-publish")
}

// ---------------------------------------------------------------------------
// Model 4: concurrent gateway — first reply vs retry re-plan.
// ---------------------------------------------------------------------------

/// Shadow of the sharded pending-request table: an original attempt and a
/// retry attempt share an `answered` flag and a sibling group; replies
/// race the retry's insertion.
#[derive(Clone)]
pub struct PendingState {
    /// The shared `answered` CAS flag (0 = open, 1 = resolved).
    answered: ShadowAtomicU64,
    /// Pending-table entries: `[original, retry]`, 1 = present.
    pending: [ShadowAtomicU64; 2],
    /// Sibling group length: 1 until the retry registers itself.
    group_len: ShadowAtomicU64,
    /// First-reply deliveries to the caller.
    deliveries: ShadowAtomicU64,
    /// Whether the retry re-checks `answered` after inserting its entry.
    retry_rechecks: bool,
    /// Per-reply-thread scratch: whether this reply won the CAS.
    won: [bool; 2],
    /// Completion flags: `[reply0, retry, reply1]`.
    done: [bool; 3],
}

fn pending_model_with(
    retry_rechecks: bool,
    atomic_cas: bool,
    name: &'static str,
) -> Model<PendingState> {
    fn init_shipped() -> PendingState {
        pending_init(true)
    }
    fn init_no_recheck() -> PendingState {
        pending_init(false)
    }
    fn pending_init(retry_rechecks: bool) -> PendingState {
        PendingState {
            answered: ShadowAtomicU64::new(0),
            // The original attempt is already in flight; the retry entry
            // does not exist until the retry thread inserts it.
            pending: [ShadowAtomicU64::new(1), ShadowAtomicU64::new(0)],
            group_len: ShadowAtomicU64::new(1),
            deliveries: ShadowAtomicU64::new(0),
            retry_rechecks,
            won: [false, false],
            done: [false, false, false],
        }
    }
    fn always(_: &PendingState, _: usize) -> bool {
        true
    }
    fn invariant(s: &PendingState) -> Result<(), String> {
        if s.deliveries.load() > 1 {
            return Err("duplicate first-reply delivery".to_string());
        }
        if s.done[0] && s.done[1] && s.done[2] && s.answered.load() == 1 {
            if s.pending[0].load() != 0 || s.pending[1].load() != 0 {
                return Err(format!(
                    "lost pending entry: request resolved but table holds [{}, {}]",
                    s.pending[0].load(),
                    s.pending[1].load()
                ));
            }
            if s.deliveries.load() != 1 {
                return Err("resolved request was never delivered".to_string());
            }
        }
        Ok(())
    }

    /// The signature every pending-model step action shares.
    type PendingAction = fn(&mut PendingState, usize);

    /// A reply to attempt `attempt`, raced by everything else. With
    /// `atomic_cas` the claim is one indivisible compare-and-swap (the
    /// shipped `AtomicBool` CAS); without it the check and the mark are
    /// two separate steps — the classic TOCTOU bug.
    fn reply_thread(attempt: usize, atomic_cas: bool) -> Vec<Step<PendingState>> {
        let mut steps: Vec<Step<PendingState>> = Vec::new();
        let (claim, retire, finish): (PendingAction, PendingAction, PendingAction) = if attempt == 0
        {
            (
                |s, _| {
                    // Unknown seqs (entry absent) only mine perf data.
                    if s.pending[0].load() == 1 && s.answered.load() == 0 {
                        s.answered.store(1);
                        s.won[0] = true;
                    }
                },
                |s, _| {
                    if s.won[0] {
                        s.pending[0].store(0);
                        s.deliveries.fetch_add(1);
                    }
                },
                |s, _| {
                    if s.won[0] && s.group_len.load() == 2 {
                        s.pending[1].store(0);
                    }
                    s.done[0] = true;
                },
            )
        } else {
            (
                |s, _| {
                    if s.pending[1].load() == 1 && s.answered.load() == 0 {
                        s.answered.store(1);
                        s.won[1] = true;
                    }
                },
                |s, _| {
                    if s.won[1] {
                        s.pending[1].store(0);
                        s.deliveries.fetch_add(1);
                    }
                },
                |s, _| {
                    if s.won[1] {
                        s.pending[0].store(0);
                    }
                    s.done[2] = true;
                },
            )
        };
        if atomic_cas {
            steps.push(Step {
                name: "reply.cas",
                enabled: always,
                run: claim,
            });
        } else {
            // TOCTOU split: observe `answered`, then mark it, with a
            // window in between for the sibling reply to do the same.
            let (check, mark): (PendingAction, PendingAction) = if attempt == 0 {
                (
                    |s, _| {
                        s.won[0] = s.pending[0].load() == 1 && s.answered.load() == 0;
                    },
                    |s, _| {
                        if s.won[0] {
                            s.answered.store(1);
                        }
                    },
                )
            } else {
                (
                    |s, _| {
                        s.won[1] = s.pending[1].load() == 1 && s.answered.load() == 0;
                    },
                    |s, _| {
                        if s.won[1] {
                            s.answered.store(1);
                        }
                    },
                )
            };
            steps.push(Step {
                name: "reply.check",
                enabled: always,
                run: check,
            });
            steps.push(Step {
                name: "reply.mark",
                enabled: always,
                run: mark,
            });
        }
        steps.push(Step {
            name: "reply.deliver",
            enabled: always,
            run: retire,
        });
        steps.push(Step {
            name: "reply.retire_siblings",
            enabled: always,
            run: finish,
        });
        steps
    }

    // The client's timeout path: register the retry in the sibling group
    // *before* inserting its pending entry, then re-check `answered` so an
    // in-between first reply (whose retire-siblings pass ran too early to
    // see the new entry) cannot leak it.
    let retry: Vec<Step<PendingState>> = vec![
        Step {
            name: "retry.join_group",
            enabled: always,
            run: |s, _| s.group_len.store(2),
        },
        Step {
            name: "retry.insert",
            enabled: always,
            run: |s, _| s.pending[1].store(1),
        },
        Step {
            name: "retry.recheck",
            enabled: always,
            run: |s, _| {
                if s.retry_rechecks && s.answered.load() == 1 {
                    s.pending[1].store(0); // self-retire: lost the race
                }
                s.done[1] = true;
            },
        },
    ];

    Model {
        name,
        init: if retry_rechecks {
            init_shipped
        } else {
            init_no_recheck
        },
        threads: vec![
            reply_thread(0, atomic_cas),
            retry,
            reply_thread(1, atomic_cas),
        ],
        invariant,
    }
}

/// Reply-vs-retry model as shipped: atomic CAS claim plus the retry's
/// post-insert re-check. Must pass.
pub fn pending_retry_model() -> Model<PendingState> {
    pending_model_with(true, true, "gateway-reply-vs-retry")
}

/// Deliberately broken retry: no post-insert re-check, so a first reply
/// that retired siblings before the insert leaks the retry's pending
/// entry forever. Exists to prove the checker catches it.
pub fn pending_retry_no_recheck_model() -> Model<PendingState> {
    pending_model_with(false, true, "gateway-retry-missing-recheck")
}

/// Deliberately broken reply claim: check-then-mark instead of one CAS,
/// so two replies can both think they are first and deliver twice.
/// Exists to prove the checker catches it.
pub fn pending_retry_toctou_model() -> Model<PendingState> {
    pending_model_with(true, false, "gateway-reply-toctou-claim")
}

// ---------------------------------------------------------------------------
// Model 5: socket runtime reactor — self-pipe wake coalescing.
// ---------------------------------------------------------------------------

/// Shadow of the reactor's wake path (`reactor.rs`): submitters enqueue
/// into per-connection outboxes and poke the self-pipe, coalescing pokes
/// through `wake_pending` (`swap(true, AcqRel)` — only the 0→1 transition
/// writes the wake byte). The loop drains the pipe, clears the flag, then
/// harvests. An enqueue whose poke was coalesced away (flag already set)
/// is covered either by the harvest that follows the clear, or — if it
/// lands after that harvest — by its own poke, which now sees the cleared
/// flag and writes the byte for the *next* poll round.
#[derive(Clone)]
pub struct WakeState {
    /// The wake-coalescing flag (`Reactor::wake_pending`).
    wake_pending: ShadowAtomicU64,
    /// Bytes readable from the self-pipe (poll readiness).
    pipe: ShadowAtomicU64,
    /// Enqueued-but-unharvested submissions across all outboxes.
    dirty: ShadowAtomicU64,
    /// Submissions the loop has flushed to sockets.
    flushed: ShadowAtomicU64,
    /// Whether the current poll round observed a wake.
    woke: bool,
    /// Completion flags: `[sender0, sender1, reactor]`.
    done: [bool; 3],
}

fn wake_model_with(clear_before_harvest: bool, name: &'static str) -> Model<WakeState> {
    fn init() -> WakeState {
        WakeState {
            wake_pending: ShadowAtomicU64::new(0),
            pipe: ShadowAtomicU64::new(0),
            dirty: ShadowAtomicU64::new(0),
            flushed: ShadowAtomicU64::new(0),
            woke: false,
            done: [false, false, false],
        }
    }
    fn always(_: &WakeState, _: usize) -> bool {
        true
    }
    fn invariant(s: &WakeState) -> Result<(), String> {
        // Once every thread has parked, unharvested work must have a wake
        // byte pending — otherwise the reactor sleeps on it forever.
        if s.done[0] && s.done[1] && s.done[2] && s.dirty.load() > 0 && s.pipe.load() == 0 {
            return Err(format!(
                "lost wakeup: {} dirty item(s) with an empty self-pipe; the parked reactor never flushes them",
                s.dirty.load()
            ));
        }
        Ok(())
    }
    fn sender() -> Vec<Step<WakeState>> {
        vec![
            Step {
                name: "send.enqueue",
                enabled: always,
                run: |s, _| {
                    s.dirty.fetch_add(1);
                },
            },
            Step {
                name: "send.wake",
                enabled: always,
                run: |s, tid| {
                    // `wake_pending.swap(true, AcqRel)` — one indivisible
                    // RMW; only the 0→1 edge writes the pipe byte.
                    let prev = s.wake_pending.load();
                    s.wake_pending.store(1);
                    if prev == 0 {
                        s.pipe.fetch_add(1);
                    }
                    s.done[tid] = true;
                },
            },
        ]
    }
    fn poll(s: &mut WakeState, _: usize) {
        s.woke = s.pipe.load() > 0;
        if s.woke {
            s.pipe.store(0);
        }
    }
    fn clear(s: &mut WakeState, _: usize) {
        if s.woke {
            s.wake_pending.store(0);
        }
    }
    fn harvest(s: &mut WakeState, _: usize) {
        if s.woke {
            let n = s.dirty.load();
            s.dirty.store(0);
            s.flushed.fetch_add(n);
        }
    }

    // Two poll rounds, then park. The shipped order clears the flag before
    // harvesting; the buggy variant harvests first, opening the window
    // where an enqueue slips in between harvest and clear and its poke is
    // coalesced into a round that has already drained.
    let mut reactor: Vec<Step<WakeState>> = Vec::new();
    for _ in 0..2 {
        reactor.push(Step {
            name: "loop.poll+drain",
            enabled: always,
            run: poll,
        });
        if clear_before_harvest {
            reactor.push(Step {
                name: "loop.clear_flag",
                enabled: always,
                run: clear,
            });
            reactor.push(Step {
                name: "loop.harvest+flush",
                enabled: always,
                run: harvest,
            });
        } else {
            reactor.push(Step {
                name: "loop.harvest+flush",
                enabled: always,
                run: harvest,
            });
            reactor.push(Step {
                name: "loop.clear_flag",
                enabled: always,
                run: clear,
            });
        }
    }
    reactor.push(Step {
        name: "loop.park",
        enabled: always,
        run: |s, tid| s.done[tid] = true,
    });

    Model {
        name,
        init,
        threads: vec![sender(), sender(), reactor],
        invariant,
    }
}

/// Reactor wake-coalescing model as shipped: the loop clears
/// `wake_pending` *before* harvesting outboxes. Must pass.
pub fn reactor_wake_model() -> Model<WakeState> {
    wake_model_with(true, "reactor-wake-coalescing")
}

/// Deliberately broken loop order: harvest before clearing the flag, so a
/// poke-less enqueue between the two is flushed by nobody. Exists to
/// prove the checker catches the lost wakeup.
pub fn reactor_lost_wakeup_model() -> Model<WakeState> {
    wake_model_with(false, "reactor-lost-wakeup")
}

// ---------------------------------------------------------------------------
// Model 6: socket runtime mux — reply routing across the handle/seq split.
// ---------------------------------------------------------------------------

/// Mirrors `mux.rs`: wire seqs are 24 bits of handle id over 40 bits of
/// handle-local sequence.
const MUX_HANDLE_SHIFT: u32 = 40;
const MUX_SEQ_MASK: u64 = (1 << MUX_HANDLE_SHIFT) - 1;

/// Shadow of the mux pool's reply routing: two logical handles each park
/// waiters on handle-local seqs, the reader thread routes wire replies
/// back by splitting the wire seq, and the deadline path gives up on
/// un-replied attempts concurrently.
#[derive(Clone)]
pub struct MuxState {
    /// `waiters[handle][local]`: 1 = a caller is parked on this attempt.
    waiters: [[ShadowAtomicU64; 2]; 2],
    /// Wire replies awaiting routing: `(wire_seq, origin_handle)`.
    outbox: Vec<(u64, u64)>,
    /// Router cursor into `outbox` (replies route in arrival order).
    routed: usize,
    delivered: ShadowAtomicU64,
    dropped: ShadowAtomicU64,
    /// Replies that resolved a waiter of a different handle.
    crossed: ShadowAtomicU64,
    /// Whether wire seqs carry the handle in the top 24 bits (the fix).
    split_compose: bool,
    /// Completion flags: `[caller0, caller1, router]`.
    done: [bool; 3],
}

fn mux_register(s: &mut MuxState, tid: usize, local: u64) {
    let h = tid as u64;
    s.waiters[tid][local as usize].store(1);
    let wire = if s.split_compose {
        (h << MUX_HANDLE_SHIFT) | local
    } else {
        local // collision: both handles emit bare local counters
    };
    s.outbox.push((wire, h));
}

fn mux_model_with(split_compose: bool, name: &'static str) -> Model<MuxState> {
    fn init_split() -> MuxState {
        mux_init(true)
    }
    fn init_collision() -> MuxState {
        mux_init(false)
    }
    fn mux_init(split_compose: bool) -> MuxState {
        MuxState {
            waiters: [
                [ShadowAtomicU64::new(0), ShadowAtomicU64::new(0)],
                [ShadowAtomicU64::new(0), ShadowAtomicU64::new(0)],
            ],
            outbox: Vec::new(),
            routed: 0,
            delivered: ShadowAtomicU64::new(0),
            dropped: ShadowAtomicU64::new(0),
            crossed: ShadowAtomicU64::new(0),
            split_compose,
            done: [false, false, false],
        }
    }
    fn always(_: &MuxState, _: usize) -> bool {
        true
    }
    fn invariant(s: &MuxState) -> Result<(), String> {
        if s.crossed.load() > 0 {
            return Err(
                "cross-handle delivery: a reply escaped its 24-bit handle namespace and resolved another handle's waiter"
                    .to_string(),
            );
        }
        if s.done[0] && s.done[1] && s.done[2] {
            let routed = s.delivered.load() + s.dropped.load();
            if routed != 4 {
                return Err(format!("router parked with {routed} of 4 replies routed"));
            }
            for (h, row) in s.waiters.iter().enumerate() {
                for (l, w) in row.iter().enumerate() {
                    if w.load() == 1 {
                        return Err(format!(
                            "parked caller never resolved: handle {h} attempt {l} still waiting"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
    fn caller() -> Vec<Step<MuxState>> {
        vec![
            Step {
                name: "call.register(local=0)",
                enabled: always,
                run: |s, tid| mux_register(s, tid, 0),
            },
            Step {
                name: "call.register(local=1)",
                enabled: always,
                run: |s, tid| mux_register(s, tid, 1),
            },
            Step {
                name: "call.give_up",
                enabled: always,
                run: |s, tid| {
                    // Caller h abandons attempt local == h if still
                    // un-replied (the deadline path retiring its own
                    // pending entry); the reply then routes to nobody.
                    if s.waiters[tid][tid].load() == 1 {
                        s.waiters[tid][tid].store(0);
                    }
                    s.done[tid] = true;
                },
            },
        ]
    }
    fn route_enabled(s: &MuxState, _: usize) -> bool {
        s.outbox.len() > s.routed
    }
    fn route(s: &mut MuxState, _: usize) {
        let (wire, origin) = s.outbox[s.routed];
        s.routed += 1;
        let hid = (wire >> MUX_HANDLE_SHIFT) as usize;
        let local = (wire & MUX_SEQ_MASK) as usize;
        if hid < 2 && local < 2 && s.waiters[hid][local].load() == 1 {
            s.waiters[hid][local].store(0);
            s.delivered.fetch_add(1);
            if hid as u64 != origin {
                s.crossed.fetch_add(1);
            }
        } else {
            s.dropped.fetch_add(1);
        }
    }

    // The router drains all four replies in arrival order, each gated on
    // the reply actually having been sent, then parks.
    let mut router: Vec<Step<MuxState>> = Vec::new();
    for _ in 0..4 {
        router.push(Step {
            name: "route.next",
            enabled: route_enabled,
            run: route,
        });
    }
    router.push(Step {
        name: "route.park",
        enabled: always,
        run: |s, tid| s.done[tid] = true,
    });

    Model {
        name,
        init: if split_compose {
            init_split
        } else {
            init_collision
        },
        threads: vec![caller(), caller(), router],
        invariant,
    }
}

/// Mux reply-routing model as shipped: wire seqs carry the handle id in
/// the top 24 bits, so routing is collision-free. Must pass.
pub fn mux_reply_model() -> Model<MuxState> {
    mux_model_with(true, "mux-reply-routing")
}

/// Deliberately broken compose: wire seqs are the bare handle-local
/// counter, so two handles collide and a reply resolves the wrong
/// caller's waiter (and the right caller parks forever). Exists to prove
/// the checker catches it.
pub fn mux_seq_collision_model() -> Model<MuxState> {
    mux_model_with(false, "mux-seq-collision")
}

// ---------------------------------------------------------------------------
// Model 7: sharded DES — conservative time-window barrier lookahead.
// ---------------------------------------------------------------------------

/// Shard A's pending event time in the barrier model.
const SHARD_A_EVENT: u64 = 10;
/// Shard B's pending local event time.
const SHARD_B_LOCAL: u64 = 15;
/// The topology lookahead: minimum cross-shard one-way delay.
const SHARD_LOOKAHEAD: u64 = 5;

/// Shadow of the sharded simulator's round protocol (`sharded.rs`): each
/// worker shard publishes its next pending event time, the leader
/// computes the round horizon from the global minimum `T` and the
/// topology lookahead `L`, each shard executes exactly the events inside
/// the inclusive window `[T, horizon]`, and cross-shard sends stage in an
/// outbox that distributes at the barrier — arriving at send-time + `L`.
/// An obs scrape reads the per-shard event counters lock-free throughout,
/// exactly like `export_obs` against a running simulation.
#[derive(Clone)]
pub struct ShardBarrierState {
    /// Window end rule: `T + L − 1` as shipped, `T + L` in the buggy
    /// variant.
    off_by_one: bool,
    /// Published next-event times (0 = not yet published this round).
    next: [ShadowAtomicU64; 2],
    /// Round horizon the leader computed (0 = unset).
    horizon: ShadowAtomicU64,
    /// Shard A's pending event time (0 = consumed).
    a_event: ShadowAtomicU64,
    /// Shard B's pending local event time (0 = consumed).
    b_local: ShadowAtomicU64,
    /// Cross-shard arrival staged by A until the barrier.
    outbox_a: ShadowAtomicU64,
    /// B's post-barrier inbox (0 = empty).
    inbox_b: ShadowAtomicU64,
    /// Per-shard executed-event counters (what the scrape reads).
    events: [ShadowAtomicU64; 2],
    /// Window end each shard has fully executed (0 = none yet).
    closed: [ShadowAtomicU64; 2],
    /// Scrape scratch: last counter sum observed.
    scraped: Option<u64>,
    /// First violation observed (causality at drain, or a counter that
    /// ran backwards under the scrape).
    violation: Option<String>,
}

fn shard_barrier_model_with(off_by_one: bool, name: &'static str) -> Model<ShardBarrierState> {
    fn init_shipped() -> ShardBarrierState {
        shard_init(false)
    }
    fn init_off_by_one() -> ShardBarrierState {
        shard_init(true)
    }
    fn shard_init(off_by_one: bool) -> ShardBarrierState {
        ShardBarrierState {
            off_by_one,
            next: [ShadowAtomicU64::new(0), ShadowAtomicU64::new(0)],
            horizon: ShadowAtomicU64::new(0),
            a_event: ShadowAtomicU64::new(SHARD_A_EVENT),
            b_local: ShadowAtomicU64::new(SHARD_B_LOCAL),
            outbox_a: ShadowAtomicU64::new(0),
            inbox_b: ShadowAtomicU64::new(0),
            events: [ShadowAtomicU64::new(0), ShadowAtomicU64::new(0)],
            closed: [ShadowAtomicU64::new(0), ShadowAtomicU64::new(0)],
            scraped: None,
            violation: None,
        }
    }
    fn always(_: &ShardBarrierState, _: usize) -> bool {
        true
    }
    fn both_published(s: &ShardBarrierState, _: usize) -> bool {
        s.next[0].load() != 0 && s.next[1].load() != 0
    }
    fn horizon_set(s: &ShardBarrierState, _: usize) -> bool {
        s.horizon.load() != 0
    }
    fn peer_window_closed(s: &ShardBarrierState, _: usize) -> bool {
        s.closed[1].load() != 0
    }
    fn inbox_ready(s: &ShardBarrierState, _: usize) -> bool {
        s.inbox_b.load() != 0
    }
    fn invariant(s: &ShardBarrierState) -> Result<(), String> {
        match &s.violation {
            Some(msg) => Err(msg.clone()),
            None => Ok(()),
        }
    }
    fn scrape(s: &mut ShardBarrierState, _: usize) {
        let sum = s.events[0].load() + s.events[1].load();
        if let Some(prev) = s.scraped {
            if sum < prev {
                s.violation = Some(format!("event counter ran backwards: {prev} then {sum}"));
            }
        }
        s.scraped = Some(sum);
    }

    // Shard A — the round leader: publish, compute the horizon once both
    // shards have published, execute its in-window event (staging the
    // cross-shard send in the outbox), then distribute at the barrier.
    let shard_a: Vec<Step<ShardBarrierState>> = vec![
        Step {
            name: "a.publish_next",
            enabled: always,
            run: |s, _| s.next[0].store(s.a_event.load()),
        },
        Step {
            name: "a.lead_horizon",
            enabled: both_published,
            run: |s, _| {
                let t = s.next[0].load().min(s.next[1].load());
                let end = t + SHARD_LOOKAHEAD - if s.off_by_one { 0 } else { 1 };
                s.horizon.store(end);
            },
        },
        Step {
            name: "a.exec_window",
            enabled: horizon_set,
            run: |s, _| {
                let h = s.horizon.load();
                let at = s.a_event.load();
                if at != 0 && at <= h {
                    s.a_event.store(0);
                    s.events[0].fetch_add(1);
                    s.outbox_a.store(at + SHARD_LOOKAHEAD);
                }
                s.closed[0].store(h);
            },
        },
        Step {
            name: "a.barrier_distribute",
            enabled: peer_window_closed,
            run: |s, _| {
                let arrival = s.outbox_a.load();
                if arrival != 0 {
                    s.outbox_a.store(0);
                    s.inbox_b.store(arrival);
                }
            },
        },
    ];

    // Shard B — a follower: publish, execute whatever of its queue falls
    // inside the leader's window, then drain the barrier inbox. A drained
    // arrival at or before the window it just closed is an event executed
    // out of timestamp order — the committed window can no longer admit
    // it at its proper place in the merged history.
    let shard_b: Vec<Step<ShardBarrierState>> = vec![
        Step {
            name: "b.publish_next",
            enabled: always,
            run: |s, _| s.next[1].store(s.b_local.load()),
        },
        Step {
            name: "b.exec_window",
            enabled: horizon_set,
            run: |s, _| {
                let h = s.horizon.load();
                let at = s.b_local.load();
                if at != 0 && at <= h {
                    s.b_local.store(0);
                    s.events[1].fetch_add(1);
                }
                s.closed[1].store(h);
            },
        },
        Step {
            name: "b.drain_inbox",
            enabled: inbox_ready,
            run: |s, _| {
                let arrival = s.inbox_b.load();
                s.inbox_b.store(0);
                let closed = s.closed[1].load();
                if arrival <= closed {
                    s.violation = Some(format!(
                        "causality violation: cross-shard arrival at t={arrival} lands inside \
                         a window already closed at t={closed}"
                    ));
                }
            },
        },
    ];

    // The obs scrape: five lock-free counter reads racing the round.
    let scraper: Vec<Step<ShardBarrierState>> = (0..5)
        .map(|_| Step {
            name: "scrape.read_counters",
            enabled: always,
            run: scrape,
        })
        .collect();

    Model {
        name,
        init: if off_by_one {
            init_off_by_one
        } else {
            init_shipped
        },
        threads: vec![shard_a, shard_b, scraper],
        invariant,
    }
}

/// Time-window barrier model as shipped: the inclusive window end is
/// `min(next) + L − 1`, so a cross-shard send from inside the window
/// arrives strictly after it. Must pass.
pub fn shard_barrier_model() -> Model<ShardBarrierState> {
    shard_barrier_model_with(false, "sim-shard-window-barrier")
}

/// Deliberately broken window end `min(next) + L`: shard B executes its
/// local `t = T + L` event and closes the window, then the barrier
/// delivers a cross-shard arrival at exactly `T + L` — into a window
/// that already committed. Exists to prove the checker catches the
/// off-by-one.
pub fn shard_barrier_off_by_one_model() -> Model<ShardBarrierState> {
    shard_barrier_model_with(true, "sim-shard-lookahead-off-by-one")
}

/// Run the shipped models; returns `(name, exploration)` pairs.
pub fn run_all() -> Vec<(&'static str, Exploration)> {
    vec![
        (
            "obs-registry-register-vs-scrape",
            explore(&registry_scrape_model()),
        ),
        (
            "repository-record-vs-remove-epoch",
            explore(&repository_epoch_model()),
        ),
        (
            "gateway-snapshot-publish-vs-plan",
            explore(&snapshot_publish_model()),
        ),
        ("gateway-reply-vs-retry", explore(&pending_retry_model())),
        ("reactor-wake-coalescing", explore(&reactor_wake_model())),
        ("mux-reply-routing", explore(&mux_reply_model())),
        ("sim-shard-window-barrier", explore(&shard_barrier_model())),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_model_passes_exhaustively() {
        let e = explore(&registry_scrape_model());
        assert!(e.passed(), "violations: {:?}", e.violations);
        // 8 + 9 steps across two threads, 4 of each serialized by the
        // registry lock: 2002 feasible interleavings.
        assert_eq!(e.schedules, 2002);
        assert!(e.schedules >= 1000);
    }

    #[test]
    fn buggy_registry_read_order_is_caught() {
        let e = explore(&registry_scrape_buggy_model());
        assert!(
            !e.violations.is_empty(),
            "flipped read order must surface bucket > count"
        );
        assert!(e.violations[0].1.contains("bucket"));
    }

    #[test]
    fn repository_epoch_model_passes_exhaustively() {
        let e = explore(&repository_epoch_model());
        assert!(e.passed(), "violations: {:?}", e.violations);
        // 7 + 6 steps: C(13, 6) = 1716 interleavings.
        assert_eq!(e.schedules, 1716);
        assert!(e.schedules >= 1000);
    }

    #[test]
    fn generation_only_key_hits_the_aba_bug() {
        let e = explore(&repository_no_epoch_model());
        assert!(
            !e.violations.is_empty(),
            "dropping the epoch from the key must reintroduce the ABA race"
        );
        assert!(e.violations[0].1.contains("stale cache hit"));
    }

    #[test]
    fn snapshot_publish_model_passes_exhaustively() {
        let e = explore(&snapshot_publish_model());
        assert!(e.passed(), "violations: {:?}", e.violations);
        // 5 + 5 + 3 steps with the publish mutex serializing the two
        // rebuild/install windows: 3432 feasible interleavings.
        assert_eq!(e.schedules, 3432);
    }

    #[test]
    fn unserialized_publish_loses_an_update() {
        let e = explore(&snapshot_publish_racy_model());
        assert!(
            !e.violations.is_empty(),
            "dropping the publish mutex and version guard must lose a sample"
        );
        assert!(
            e.violations
                .iter()
                .any(|(_, msg)| msg.contains("lost samples")
                    || msg.contains("ABA")
                    || msg.contains("regressed")),
            "violations: {:?}",
            e.violations
        );
    }

    #[test]
    fn pending_retry_model_passes_exhaustively() {
        let e = explore(&pending_retry_model());
        assert!(e.passed(), "violations: {:?}", e.violations);
        assert!(e.schedules >= 1000, "schedules: {}", e.schedules);
    }

    #[test]
    fn missing_retry_recheck_leaks_a_pending_entry() {
        let e = explore(&pending_retry_no_recheck_model());
        assert!(
            !e.violations.is_empty(),
            "dropping the post-insert re-check must leak the retry's entry"
        );
        assert!(
            e.violations
                .iter()
                .any(|(_, msg)| msg.contains("lost pending entry")),
            "violations: {:?}",
            e.violations
        );
    }

    #[test]
    fn toctou_reply_claim_delivers_twice() {
        let e = explore(&pending_retry_toctou_model());
        assert!(
            !e.violations.is_empty(),
            "splitting the CAS into check+mark must double-deliver"
        );
        assert!(
            e.violations
                .iter()
                .any(|(_, msg)| msg.contains("duplicate first-reply delivery")),
            "violations: {:?}",
            e.violations
        );
    }

    #[test]
    fn reactor_wake_model_passes_exhaustively() {
        let e = explore(&reactor_wake_model());
        assert!(e.passed(), "violations: {:?}", e.violations);
        // 2 + 2 + 7 always-enabled steps: 11!/(2!·2!·7!) = 1980
        // interleavings.
        assert_eq!(e.schedules, 1980);
        assert!(e.schedules >= 1000);
    }

    #[test]
    fn lost_wakeup_variant_is_caught() {
        let e = explore(&reactor_lost_wakeup_model());
        assert!(
            !e.violations.is_empty(),
            "harvesting before the flag clear must lose a wakeup"
        );
        assert!(
            e.violations
                .iter()
                .any(|(_, msg)| msg.contains("lost wakeup")),
            "violations: {:?}",
            e.violations
        );
    }

    #[test]
    fn mux_reply_model_passes_exhaustively() {
        let e = explore(&mux_reply_model());
        assert!(e.passed(), "violations: {:?}", e.violations);
        // 3 + 3 + 5 steps with each route gated on its reply having been
        // sent: 2554 feasible interleavings.
        assert_eq!(e.schedules, 2554);
        assert!(e.schedules >= 1000);
    }

    #[test]
    fn seq_collision_variant_is_caught() {
        let e = explore(&mux_seq_collision_model());
        assert!(
            !e.violations.is_empty(),
            "dropping the handle bits from wire seqs must misroute a reply"
        );
        assert!(
            e.violations.iter().any(|(_, msg)| msg.contains("handle")),
            "violations: {:?}",
            e.violations
        );
    }

    #[test]
    fn shard_barrier_model_passes_exhaustively() {
        let e = explore(&shard_barrier_model());
        assert!(e.passed(), "violations: {:?}", e.violations);
        assert!(e.schedules >= 1000, "schedules: {}", e.schedules);
    }

    #[test]
    fn lookahead_off_by_one_is_caught() {
        let e = explore(&shard_barrier_off_by_one_model());
        assert!(
            !e.violations.is_empty(),
            "widening the window to T + L must deliver into a closed window"
        );
        assert!(
            e.violations
                .iter()
                .any(|(_, msg)| msg.contains("causality violation")),
            "violations: {:?}",
            e.violations
        );
    }

    #[test]
    fn run_all_covers_the_shipped_models() {
        let results = run_all();
        assert_eq!(results.len(), 7);
        for (name, e) in &results {
            assert!(e.passed(), "{name} failed: {:?}", e.violations);
        }
    }

    #[test]
    fn lock_steps_gate_on_the_holder() {
        // A model where both threads only lock/unlock can never deadlock
        // and never runs a critical section concurrently.
        let e = explore(&registry_scrape_model());
        assert_eq!(e.deadlocks, 0);
    }
}
