//! The eight aqua-lint rules, plus the allow-annotation machinery.
//!
//! Rules operate on the token stream from [`crate::lexer`]; none of them
//! parse Rust properly. Each heuristic is documented next to its
//! implementation, including the cases it deliberately does not catch.
//!
//! ## Suppressing a finding
//!
//! ```text
//! // aqua-lint: allow(no-panic-in-hot-path) head < capacity whenever full
//! let slot = &mut self.samples[self.head];
//! ```
//!
//! An annotation suppresses matching findings on its own line (trailing
//! comment) and on the following line (preceding comment). The
//! justification after the closing parenthesis is **mandatory**: an
//! annotation without one does not suppress anything.

use crate::lexer::{lex, Token, TokenKind};
use std::collections::HashMap;
use std::fmt;

/// Rule: no `unwrap`/`expect`/`panic!`/indexing in hot-path crates.
pub const NO_PANIC: &str = "no-panic-in-hot-path";
/// Rule: no allocation inside `#[aqua::hot_path]` functions.
pub const NO_ALLOC: &str = "no-alloc-in-select";
/// Rule: consistent lock acquisition order, no guards across blocking calls.
pub const LOCK_ORDER: &str = "lock-order";
/// Rule: no raw integer arithmetic mixing time units.
pub const UNIT_HYGIENE: &str = "unit-hygiene";
/// Rule: every dependency resolves inside `vendor/` or the workspace.
pub const VENDOR_AUDIT: &str = "vendor-audit";
/// Rule: no Relaxed store/load handshakes on data-publishing atomics.
pub const ATOMICS_ORDER: &str = "atomics-ordering";
/// Rule: `unsafe` needs a `// SAFETY:` comment; FFI confined to `sys.rs`.
pub const UNSAFE_AUDIT: &str = "unsafe-audit";
/// Rule: `thread::spawn` handles must be held, joined, or justified.
pub const SPAWN_JOIN: &str = "spawn-join";

/// All rule identifiers, in reporting order.
pub const ALL_RULES: [&str; 8] = [
    NO_PANIC,
    NO_ALLOC,
    LOCK_ORDER,
    UNIT_HYGIENE,
    VENDOR_AUDIT,
    ATOMICS_ORDER,
    UNSAFE_AUDIT,
    SPAWN_JOIN,
];

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired (one of [`ALL_RULES`]).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A lock-acquisition-order edge (`first` held while `second` is taken).
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// Lock acquired first (field/variable name heuristic).
    pub first: String,
    /// Lock acquired while `first` is held.
    pub second: String,
    /// File of the nested acquisition.
    pub file: String,
    /// Line of the nested acquisition.
    pub line: usize,
    /// Function the edge was observed in.
    pub function: String,
}

/// Per-file analysis output: local findings plus lock edges for the
/// cross-file cycle check.
#[derive(Debug, Default)]
pub struct FileAnalysis {
    /// Findings local to this file (already allow-filtered).
    pub findings: Vec<Finding>,
    /// Lock-order edges contributed to the global graph.
    pub lock_edges: Vec<LockEdge>,
}

/// Analyze one source file under the rules that apply to `path`.
///
/// `path` must be workspace-relative (`crates/core/src/pmf.rs`); scoping is
/// purely path-based so fixtures can impersonate any crate.
pub fn analyze_file(path: &str, source: &str) -> FileAnalysis {
    let lexed = lex(source);
    let allows = collect_allows(&lexed.comments);
    let excluded = cfg_test_mask(&lexed.tokens);
    let functions = find_functions(&lexed.tokens);

    let mut raw = Vec::new();
    let mut edges = Vec::new();

    if in_no_panic_scope(path) {
        check_no_panic(path, &lexed.tokens, &excluded, &mut raw);
    }
    check_no_alloc(path, &lexed.tokens, &excluded, &functions, &mut raw);
    if in_lock_order_scope(path) {
        check_lock_order(
            path,
            &lexed.tokens,
            &excluded,
            &functions,
            &mut raw,
            &mut edges,
        );
    }
    if path.starts_with("crates/") || path.starts_with("src/") {
        check_unit_hygiene(path, &lexed.tokens, &excluded, &mut raw);
    }
    if in_concurrency_scope(path) {
        check_atomics_ordering(path, &lexed.tokens, &excluded, &mut raw);
        check_spawn_join(path, &lexed.tokens, &excluded, &mut raw);
        check_unsafe_audit(
            path,
            &lexed.tokens,
            &excluded,
            &lexed.comment_lines_containing("SAFETY:"),
            &mut raw,
        );
    }

    // Drop edges whose acquisition site carries an allow annotation; the
    // cycle check then never sees the sanctioned nesting.
    edges.retain(|e| !allowed(&allows, LOCK_ORDER, e.line));

    FileAnalysis {
        findings: raw
            .into_iter()
            .filter(|f| !allowed(&allows, f.rule, f.line))
            .collect(),
        lock_edges: edges,
    }
}

fn allowed(allows: &HashMap<usize, Vec<String>>, rule: &str, line: usize) -> bool {
    let hit = |l: usize| {
        allows
            .get(&l)
            .is_some_and(|rs| rs.iter().any(|r| r == rule))
    };
    hit(line) || (line > 0 && hit(line - 1))
}

/// Parse `// aqua-lint: allow(<rule>) <justification>` annotations.
/// Returns line → allowed rule ids. Annotations without a justification are
/// ignored (they must explain *why* the violation is acceptable).
fn collect_allows(comments: &[crate::lexer::Comment]) -> HashMap<usize, Vec<String>> {
    let mut map: HashMap<usize, Vec<String>> = HashMap::new();
    for c in comments {
        let Some(at) = c.text.find("aqua-lint:") else {
            continue;
        };
        let rest = c.text[at + "aqua-lint:".len()..].trim_start();
        let Some(body) = rest.strip_prefix("allow(") else {
            continue;
        };
        let Some(close) = body.find(')') else {
            continue;
        };
        let justification = body[close + 1..].trim();
        if justification.is_empty() {
            continue;
        }
        for rule in body[..close].split(',') {
            let rule = rule.trim();
            if !rule.is_empty() {
                map.entry(c.line).or_default().push(rule.to_string());
            }
        }
    }
    map
}

// ---------------------------------------------------------------------------
// Structure recovery: `#[cfg(test)]` regions and function extents.
// ---------------------------------------------------------------------------

/// Per-token mask: `true` when the token sits inside a `#[cfg(test)]` item
/// (including the attribute itself). Handles nested test modules and both
/// braced items and `;`-terminated ones.
fn cfg_test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#') {
            let attr_start = i;
            let mut j = i + 1;
            if j < tokens.len() && tokens[j].is_punct('!') {
                j += 1; // inner attribute `#![…]` — never cfg(test) items here
            }
            if j < tokens.len() && tokens[j].is_punct('[') {
                let (attr_end, is_test) = scan_attribute(tokens, j);
                if is_test {
                    let item_end = item_extent(tokens, attr_end + 1);
                    for m in mask.iter_mut().take(item_end + 1).skip(attr_start) {
                        *m = true;
                    }
                    i = item_end + 1;
                    continue;
                }
                i = attr_end + 1;
                continue;
            }
        }
        i += 1;
    }
    mask
}

/// From the `[` at `open`, find the matching `]` and report whether the
/// attribute gates on `test` (`cfg(test)`, `cfg(all(test, …))`, `test`).
fn scan_attribute(tokens: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut saw_cfg = false;
    let mut saw_test = false;
    let mut saw_bare_test = false;
    let mut k = open;
    while k < tokens.len() {
        let t = &tokens[k];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.is_ident("cfg") || t.is_ident("cfg_attr") {
            saw_cfg = true;
        } else if t.is_ident("test") {
            if saw_cfg {
                saw_test = true;
            } else if k == open + 1 {
                saw_bare_test = true; // `#[test]` / `#[tokio::test]`-style
            }
        }
        k += 1;
    }
    (k, (saw_cfg && saw_test) || saw_bare_test)
}

/// Extent of the item starting at `start` (skipping further attributes):
/// index of its closing `}` or terminating `;`.
fn item_extent(tokens: &[Token], start: usize) -> usize {
    let mut i = start;
    // Skip stacked attributes on the same item.
    while i + 1 < tokens.len() && tokens[i].is_punct('#') && tokens[i + 1].is_punct('[') {
        let (end, _) = scan_attribute(tokens, i + 1);
        i = end + 1;
    }
    let mut brace = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('{') {
            brace += 1;
        } else if t.is_punct('}') {
            brace -= 1;
            if brace == 0 {
                return i;
            }
        } else if t.is_punct(';') && brace == 0 {
            return i;
        }
        i += 1;
    }
    tokens.len().saturating_sub(1)
}

/// A function recovered from the token stream.
#[derive(Debug)]
struct FnInfo {
    name: String,
    /// Attribute text (token texts joined by spaces), one entry per attr.
    attrs: Vec<String>,
    /// Token index range of the body, inclusive of both braces.
    /// `None` for bodyless trait method declarations.
    body: Option<(usize, usize)>,
}

/// Recover function names, attributes, and body extents. Nested functions
/// are reported separately; their tokens also belong to the outer body.
fn find_functions(tokens: &[Token]) -> Vec<FnInfo> {
    const ITEM_KEYWORDS: [&str; 10] = [
        "struct", "enum", "trait", "impl", "mod", "const", "static", "type", "union", "use",
    ];
    let mut fns = Vec::new();
    let mut pending: Vec<String> = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('#') {
            let mut j = i + 1;
            if j < tokens.len() && tokens[j].is_punct('!') {
                j += 1;
            }
            if j < tokens.len() && tokens[j].is_punct('[') {
                let (end, _) = scan_attribute(tokens, j);
                let text: Vec<&str> = tokens[j + 1..end].iter().map(|t| t.text.as_str()).collect();
                pending.push(text.join(" "));
                i = end + 1;
                continue;
            }
        }
        if t.is_ident("fn") {
            let name = tokens
                .get(i + 1)
                .filter(|n| n.kind == TokenKind::Ident)
                .map(|n| n.text.clone())
                .unwrap_or_default();
            let body = fn_body_extent(tokens, i + 1);
            fns.push(FnInfo {
                name,
                attrs: std::mem::take(&mut pending),
                body,
            });
        } else if ITEM_KEYWORDS.iter().any(|k| t.is_ident(k)) || t.is_punct(';') {
            pending.clear();
        }
        i += 1;
    }
    fns
}

/// From just past `fn`, find the body `{ … }`: the first `{` at zero
/// paren/bracket depth, then its matching `}`. A `;` first means no body.
fn fn_body_extent(tokens: &[Token], from: usize) -> Option<(usize, usize)> {
    let mut paren = 0isize;
    let mut bracket = 0isize;
    let mut i = from;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_punct('[') {
            bracket += 1;
        } else if t.is_punct(']') {
            bracket -= 1;
        } else if paren == 0 && bracket == 0 {
            if t.is_punct(';') {
                return None;
            }
            if t.is_punct('{') {
                let mut depth = 0usize;
                let mut k = i;
                while k < tokens.len() {
                    if tokens[k].is_punct('{') {
                        depth += 1;
                    } else if tokens[k].is_punct('}') {
                        depth -= 1;
                        if depth == 0 {
                            return Some((i, k));
                        }
                    }
                    k += 1;
                }
                return Some((i, tokens.len() - 1));
            }
        }
        i += 1;
    }
    None
}

// ---------------------------------------------------------------------------
// Rule 1: no-panic-in-hot-path
// ---------------------------------------------------------------------------

fn in_no_panic_scope(path: &str) -> bool {
    path.starts_with("crates/core/src")
        || path.starts_with("crates/strategies/src")
        || path == "crates/gateway/src/timing.rs"
}

/// Forbid `.unwrap()`, `.expect(…)`, `panic!`, `unreachable!`, `todo!`,
/// `unimplemented!`, and `[i]` indexing outside `#[cfg(test)]` code.
///
/// Indexing heuristic: a `[` whose previous token is an identifier, `)`,
/// `]`, or `?` is a subscript; after `=`, `(`, `,`, `&`, operators, or `!`
/// (macros like `vec![…]`) it is an array/slice literal or pattern.
fn check_no_panic(path: &str, tokens: &[Token], excluded: &[bool], out: &mut Vec<Finding>) {
    const MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];
    for i in 0..tokens.len() {
        if excluded[i] {
            continue;
        }
        let t = &tokens[i];
        let next = tokens.get(i + 1);
        let prev = i.checked_sub(1).map(|p| &tokens[p]);

        if t.is_punct('.') {
            if let Some(n) = next {
                if (n.is_ident("unwrap") || n.is_ident("expect"))
                    && tokens.get(i + 2).is_some_and(|p| p.is_punct('('))
                {
                    out.push(Finding {
                        rule: NO_PANIC,
                        file: path.to_string(),
                        line: n.line,
                        message: format!(
                            "`.{}()` can panic; return an error or justify with an allow annotation",
                            n.text
                        ),
                    });
                }
            }
        } else if t.kind == TokenKind::Ident
            && MACROS.iter().any(|m| t.is_ident(m))
            && next.is_some_and(|n| n.is_punct('!'))
            // `core::panic::Location` etc.: require not preceded by `:`.
            && !prev.is_some_and(|p| p.is_punct(':'))
        {
            out.push(Finding {
                rule: NO_PANIC,
                file: path.to_string(),
                line: t.line,
                message: format!("`{}!` is forbidden in hot-path crates", t.text),
            });
        } else if t.is_punct('[') {
            // Keywords that can precede an array/slice *type or literal*:
            // `&mut [f64]`, `for x in [..]`, `return [..]`, `match [..]`.
            const NOT_RECEIVERS: [&str; 8] = [
                "mut", "in", "return", "break", "else", "match", "const", "dyn",
            ];
            let is_index = prev.is_some_and(|p| {
                (p.kind == TokenKind::Ident && !NOT_RECEIVERS.iter().any(|k| p.text == *k))
                    || p.is_punct(')')
                    || p.is_punct(']')
                    || p.is_punct('?')
            });
            // `#[attr]` never matches: `[` follows `#` or `!` there.
            if is_index {
                out.push(Finding {
                    rule: NO_PANIC,
                    file: path.to_string(),
                    line: t.line,
                    message: "slice indexing can panic; use `.get()` or justify the bound"
                        .to_string(),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 2: no-alloc-in-select
// ---------------------------------------------------------------------------

/// Inside `#[aqua::hot_path]` functions, forbid the allocating constructs
/// `Vec::new`, `vec!`, `.to_vec()`, `.clone()`, `String::from`, `format!`,
/// `.to_string()`, `.to_owned()`, and `Box::new`.
fn check_no_alloc(
    path: &str,
    tokens: &[Token],
    excluded: &[bool],
    functions: &[FnInfo],
    out: &mut Vec<Finding>,
) {
    for f in functions {
        if !f.attrs.iter().any(|a| a.contains("hot_path")) {
            continue;
        }
        let Some((start, end)) = f.body else { continue };
        for i in start..=end {
            if excluded[i] {
                continue;
            }
            let t = &tokens[i];
            let next = tokens.get(i + 1);
            let next2 = tokens.get(i + 2);
            let next3 = tokens.get(i + 3);
            let mut hit: Option<String> = None;

            if (t.is_ident("Vec") || t.is_ident("Box") || t.is_ident("String"))
                && next.is_some_and(|n| n.is_punct(':'))
                && next2.is_some_and(|n| n.is_punct(':'))
            {
                if let Some(m) = next3 {
                    if m.is_ident("new") || m.is_ident("from") || m.is_ident("with_capacity") {
                        hit = Some(format!("{}::{}", t.text, m.text));
                    }
                }
            } else if (t.is_ident("vec") || t.is_ident("format"))
                && next.is_some_and(|n| n.is_punct('!'))
            {
                hit = Some(format!("{}!", t.text));
            } else if t.is_punct('.') {
                if let Some(n) = next {
                    let is_alloc_method = n.is_ident("to_vec")
                        || n.is_ident("clone")
                        || n.is_ident("to_string")
                        || n.is_ident("to_owned");
                    if is_alloc_method && next2.is_some_and(|p| p.is_punct('(')) {
                        hit = Some(format!(".{}()", n.text));
                    }
                }
            }

            if let Some(what) = hit {
                out.push(Finding {
                    rule: NO_ALLOC,
                    file: path.to_string(),
                    line: tokens[i].line,
                    message: format!(
                        "`{what}` allocates inside `#[aqua::hot_path]` fn `{}`",
                        f.name
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 3: lock-order
// ---------------------------------------------------------------------------

fn in_lock_order_scope(path: &str) -> bool {
    path.starts_with("crates/runtime/src")
        || path.starts_with("crates/obs/src")
        || path.starts_with("crates/gateway/src")
}

/// A lock acquisition site inside one function body.
#[derive(Debug)]
struct Acquisition {
    /// Heuristic lock name: last identifier before `.lock()`/`.read()`/….
    name: String,
    /// Token index of the method identifier.
    idx: usize,
    line: usize,
    /// Token index one past the guard's live range.
    extent: usize,
}

/// Extract guard acquisitions and check nesting + blocking calls.
///
/// Acquisition pattern: `.lock()`, `.read()`, or `.write()` **with empty
/// argument lists** — `io::Read::read(&mut buf)` takes arguments and is
/// skipped. A `let`-bound guard lives to the end of its block (or an
/// explicit `drop(guard)`); a temporary lives to the end of the statement.
fn check_lock_order(
    path: &str,
    tokens: &[Token],
    excluded: &[bool],
    functions: &[FnInfo],
    out: &mut Vec<Finding>,
    edges: &mut Vec<LockEdge>,
) {
    const BLOCKING: [&str; 5] = ["send", "recv", "recv_timeout", "send_timeout", "accept"];
    let depth = brace_depths(tokens);

    for f in functions {
        let Some((start, end)) = f.body else { continue };
        if excluded.get(start).copied().unwrap_or(false) {
            continue;
        }
        let mut acqs: Vec<Acquisition> = Vec::new();
        for i in start..=end {
            let t = &tokens[i];
            let is_acquire = t.kind == TokenKind::Ident
                && (t.text == "lock" || t.text == "read" || t.text == "write")
                && i >= 1
                && tokens[i - 1].is_punct('.')
                && tokens.get(i + 1).is_some_and(|p| p.is_punct('('))
                && tokens.get(i + 2).is_some_and(|p| p.is_punct(')'));
            if !is_acquire {
                continue;
            }
            let name = receiver_name(tokens, i - 1);
            let (is_let, binding) = statement_binding(tokens, i, start);
            // `let g = x.lock();` (possibly via `.unwrap()`/`.expect(…)`/
            // `.unwrap_or_else(…)`, which pass the guard through) binds the
            // guard for the whole block. Any other trailing method call
            // (`.take()`, `.len()`, …) projects *out* of the guard, which
            // then dies at the end of the statement.
            let bound = is_let && !projects_out_of_guard(tokens, i + 3);
            let extent = if bound {
                // End of enclosing block, or explicit drop(binding).
                let d = depth[i];
                let mut ext = end + 1;
                for (k, tk) in tokens.iter().enumerate().take(end + 1).skip(i + 3) {
                    if tk.is_punct('}') && depth[k] < d {
                        ext = k;
                        break;
                    }
                    if let Some(b) = &binding {
                        if tk.is_ident("drop")
                            && tokens.get(k + 1).is_some_and(|p| p.is_punct('('))
                            && tokens.get(k + 2).is_some_and(|n| n.is_ident(b))
                        {
                            ext = k;
                            break;
                        }
                    }
                }
                ext
            } else {
                // Temporary guard: dropped at the end of the statement.
                let d = depth[i];
                let mut ext = end + 1;
                for (k, tk) in tokens.iter().enumerate().take(end + 1).skip(i + 3) {
                    if tk.is_punct(';') && depth[k] == d {
                        ext = k;
                        break;
                    }
                    if tk.is_punct('}') && depth[k] < d {
                        ext = k;
                        break;
                    }
                }
                ext
            };
            acqs.push(Acquisition {
                name,
                idx: i,
                line: t.line,
                extent,
            });
        }

        for a in &acqs {
            // Nested acquisitions while `a` is held.
            for b in &acqs {
                if b.idx > a.idx && b.idx < a.extent {
                    if b.name == a.name {
                        out.push(Finding {
                            rule: LOCK_ORDER,
                            file: path.to_string(),
                            line: b.line,
                            message: format!(
                                "lock `{}` re-acquired while already held in fn `{}` (self-deadlock)",
                                b.name, f.name
                            ),
                        });
                    } else {
                        edges.push(LockEdge {
                            first: a.name.clone(),
                            second: b.name.clone(),
                            file: path.to_string(),
                            line: b.line,
                            function: f.name.clone(),
                        });
                    }
                }
            }
            // Blocking calls under the guard.
            for k in a.idx + 3..a.extent.min(tokens.len()) {
                let t = &tokens[k];
                if t.kind == TokenKind::Ident
                    && BLOCKING.iter().any(|b| t.text == *b)
                    && k >= 1
                    && tokens[k - 1].is_punct('.')
                    && tokens.get(k + 1).is_some_and(|p| p.is_punct('('))
                {
                    out.push(Finding {
                        rule: LOCK_ORDER,
                        file: path.to_string(),
                        line: t.line,
                        message: format!(
                            "guard `{}` held across blocking `.{}()` in fn `{}`",
                            a.name, t.text, f.name
                        ),
                    });
                }
            }
        }
    }
}

/// Brace nesting depth at each token (the depth *inside* which it sits).
fn brace_depths(tokens: &[Token]) -> Vec<usize> {
    let mut depths = Vec::with_capacity(tokens.len());
    let mut d = 0usize;
    for t in tokens {
        if t.is_punct('{') {
            depths.push(d);
            d += 1;
        } else if t.is_punct('}') {
            d = d.saturating_sub(1);
            depths.push(d);
        } else {
            depths.push(d);
        }
    }
    depths
}

/// Scan the method chain after an acquisition's `()` (starting at `from`):
/// `true` when a trailing call other than the guard-passing adapters
/// (`unwrap`, `expect`, `unwrap_or_else`) consumes the guard within the
/// statement.
fn projects_out_of_guard(tokens: &[Token], from: usize) -> bool {
    const ADAPTERS: [&str; 3] = ["unwrap", "expect", "unwrap_or_else"];
    let mut k = from;
    loop {
        let chained = tokens.get(k).is_some_and(|t| t.is_punct('.'))
            && tokens
                .get(k + 1)
                .is_some_and(|t| t.kind == TokenKind::Ident);
        if !chained {
            return false;
        }
        if !ADAPTERS.iter().any(|a| tokens[k + 1].text == *a) {
            return true;
        }
        // Skip the adapter's balanced argument list and keep scanning.
        let Some(open) = tokens.get(k + 2).filter(|t| t.is_punct('(')) else {
            return false;
        };
        let _ = open;
        let mut depth = 0usize;
        k += 2;
        while k < tokens.len() {
            if tokens[k].is_punct('(') {
                depth += 1;
            } else if tokens[k].is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            k += 1;
        }
        k += 1;
    }
}

/// Walk back over the receiver chain before the `.` at `dot` and name the
/// lock: `self.state.lock()` → `state`, `registry.lock()` → `registry`.
fn receiver_name(tokens: &[Token], dot: usize) -> String {
    tokens
        .get(dot.wrapping_sub(1))
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.clone())
        .unwrap_or_else(|| "<expr>".to_string())
}

/// Is the statement containing token `i` a `let` binding? Returns the bound
/// name when recoverable (skipping `mut` and destructuring patterns).
fn statement_binding(tokens: &[Token], i: usize, body_start: usize) -> (bool, Option<String>) {
    let mut k = i;
    while k > body_start {
        k -= 1;
        let t = &tokens[k];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            k += 1;
            break;
        }
    }
    if !tokens.get(k).is_some_and(|t| t.is_ident("let")) {
        return (false, None);
    }
    let mut n = k + 1;
    if tokens.get(n).is_some_and(|t| t.is_ident("mut")) {
        n += 1;
    }
    let name = tokens
        .get(n)
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.clone());
    (true, name)
}

/// Detect cycles in the global lock-order graph. Each cycle is reported
/// once, anchored at its lexically first edge.
pub fn detect_cycles(edges: &[LockEdge]) -> Vec<Finding> {
    use std::collections::{BTreeMap, BTreeSet};
    let mut graph: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        graph.entry(&e.first).or_default().insert(&e.second);
    }
    let mut findings = Vec::new();
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();

    // DFS from every node; a back edge to a node on the current path closes
    // a cycle. Graphs here are tiny, so no need for anything cleverer.
    for &start in graph.keys() {
        let mut path: Vec<&str> = vec![start];
        let mut stack: Vec<Vec<&str>> = vec![graph[start].iter().copied().collect()];
        while let Some(frame) = stack.last_mut() {
            let Some(next) = frame.pop() else {
                stack.pop();
                path.pop();
                continue;
            };
            if let Some(pos) = path.iter().position(|&n| n == next) {
                let mut cycle: Vec<String> = path[pos..].iter().map(|s| s.to_string()).collect();
                // Canonicalize: rotate so the smallest name leads.
                let lead = cycle
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| a.cmp(b))
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                cycle.rotate_left(lead);
                if reported.insert(cycle.clone()) {
                    let site = edges
                        .iter()
                        .find(|e| cycle.contains(&e.first) && cycle.contains(&e.second));
                    let (file, line, function) = site
                        .map(|e| (e.file.clone(), e.line, e.function.clone()))
                        .unwrap_or_else(|| ("<unknown>".to_string(), 0, String::new()));
                    findings.push(Finding {
                        rule: LOCK_ORDER,
                        file,
                        line,
                        message: format!(
                            "lock-order cycle: {} -> {} (seen in fn `{}`); acquire locks in one global order",
                            cycle.join(" -> "),
                            cycle[0],
                            function
                        ),
                    });
                }
                continue;
            }
            if path.len() > 16 {
                continue; // defensive bound; graphs are tiny
            }
            path.push(next);
            stack.push(
                graph
                    .get(next)
                    .map(|s| s.iter().copied().collect())
                    .unwrap_or_default(),
            );
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// Rule 4: unit-hygiene
// ---------------------------------------------------------------------------

/// Flag `+`/`-` arithmetic directly on a raw unit accessor
/// (`.as_millis()`, `.as_nanos()`, …) unless the other operand goes through
/// the *same* accessor. Mixing accessors (`as_millis() + x.as_nanos()`) or
/// mixing with a bare value (`as_millis() + 3`) loses the unit; arithmetic
/// belongs on `Duration` itself.
///
/// Heuristic limits: only the form `<expr>.as_X() <op> <rhs>` is checked —
/// a literal LHS (`3 + x.as_millis()`) is not caught. Scaling with `*`/`/`
/// is unit-preserving and allowed.
fn check_unit_hygiene(path: &str, tokens: &[Token], excluded: &[bool], out: &mut Vec<Finding>) {
    const ACCESSORS: [&str; 7] = [
        "as_nanos",
        "as_micros",
        "as_millis",
        "as_secs",
        "as_secs_f64",
        "as_millis_f64",
        "subsec_nanos",
    ];
    for i in 0..tokens.len() {
        if excluded[i] {
            continue;
        }
        let t = &tokens[i];
        let is_accessor = t.kind == TokenKind::Ident
            && ACCESSORS.iter().any(|a| t.text == *a)
            && i >= 1
            && tokens[i - 1].is_punct('.')
            && tokens.get(i + 1).is_some_and(|p| p.is_punct('('))
            && tokens.get(i + 2).is_some_and(|p| p.is_punct(')'));
        if !is_accessor {
            continue;
        }
        let Some(op) = tokens.get(i + 3) else {
            continue;
        };
        if !(op.is_punct('+') || op.is_punct('-')) {
            continue;
        }
        // `..` range or `->`/`- x` unary after comma etc. are not our ops;
        // a following `=` (`+=`) still is arithmetic on the raw value.
        if op.is_punct('-') && tokens.get(i + 4).is_some_and(|n| n.is_punct('>')) {
            continue;
        }
        // Scan the RHS (bounded) for its first unit accessor.
        let mut rhs_accessor: Option<&str> = None;
        for k in i + 4..(i + 20).min(tokens.len()) {
            let r = &tokens[k];
            if r.is_punct(';') || r.is_punct(',') || r.is_punct('{') {
                break;
            }
            if r.kind == TokenKind::Ident
                && ACCESSORS.iter().any(|a| r.text == *a)
                && tokens[k - 1].is_punct('.')
            {
                rhs_accessor = Some(&r.text);
                break;
            }
        }
        match rhs_accessor {
            Some(rhs) if rhs == t.text => {} // same unit on both sides
            Some(rhs) => out.push(Finding {
                rule: UNIT_HYGIENE,
                file: path.to_string(),
                line: t.line,
                message: format!(
                    "mixing `.{}()` with `.{rhs}()` in raw arithmetic; convert to one unit or use Duration ops",
                    t.text
                ),
            }),
            None => out.push(Finding {
                rule: UNIT_HYGIENE,
                file: path.to_string(),
                line: t.line,
                message: format!(
                    "raw `.{}()` value mixed with a unitless operand; do the arithmetic on Duration and convert once",
                    t.text
                ),
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 5: vendor-audit
// ---------------------------------------------------------------------------

/// Audit one `Cargo.toml`: every dependency must resolve to a `path` inside
/// `vendor/` or `crates/`, or inherit from the workspace (whose table is
/// itself audited). `version`-only, `git`, and registry deps are findings.
pub fn audit_manifest(path: &str, source: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut section = String::new();
    for (lineno, raw_line) in source.lines().enumerate() {
        let line = raw_line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            section = line.trim_matches(['[', ']']).to_string();
            continue;
        }
        let is_dep_section = section == "dependencies"
            || section == "dev-dependencies"
            || section == "build-dependencies"
            || section == "workspace.dependencies"
            || (section.starts_with("target.") && section.ends_with("dependencies"));
        if !is_dep_section {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim();
        let value = value.trim();
        // `serde.workspace = true` / `foo.path = "vendor/foo"` dotted keys.
        if let Some((dep, attr)) = key.split_once('.') {
            let ok = match attr {
                "workspace" => true,
                "path" => value.contains("vendor/") || value.contains("crates/"),
                _ => true, // feature lists etc. ride on an already-audited dep
            };
            if !ok {
                out.push(vendor_finding(path, lineno + 1, dep));
            }
            continue;
        }
        let ok = value.contains("workspace")
            || value.contains("path")
                && (value.contains("vendor/")
                    || value.contains("crates/")
                    || value.contains("../"));
        if !ok {
            out.push(vendor_finding(path, lineno + 1, key));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule 6: atomics-ordering
// ---------------------------------------------------------------------------

/// Crate source proper — where the three v2 concurrency rules apply.
/// Integration tests and fixtures are exempt (they exercise the public API
/// from one thread, or contain violations on purpose).
fn in_concurrency_scope(path: &str) -> bool {
    (path.starts_with("crates/") && path.contains("/src/")) || path.starts_with("src/")
}

/// Methods that, combined with an `Ordering` argument, mark an atomic site.
const ATOMIC_METHODS: [&str; 12] = [
    "load",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
];

const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// One atomic operation, grouped per receiver field.
#[derive(Debug)]
struct AtomicSite {
    /// `load`, `store`, or an RMW method name.
    method: String,
    /// The memory ordering named at the call site (first named ordering for
    /// loads, last for stores — `store(val, ord)` puts it last).
    ordering: String,
    /// Line of the *receiver* token, so an allow annotation anchors on
    /// `self.field` even when rustfmt splits `.store(…)` onto its own line.
    line: usize,
}

/// Collect atomic operations per receiver name. A site must name an
/// `Ordering` variant in its argument list — that is what separates
/// `flag.load(Ordering::Relaxed)` from `io::Read::read`-style methods that
/// happen to share a name (`store`, `swap` on maps, …).
fn collect_atomic_sites(
    tokens: &[Token],
    excluded: &[bool],
) -> std::collections::BTreeMap<String, Vec<AtomicSite>> {
    let mut sites: std::collections::BTreeMap<String, Vec<AtomicSite>> = Default::default();
    for i in 0..tokens.len() {
        if excluded[i] {
            continue;
        }
        let t = &tokens[i];
        if t.kind != TokenKind::Ident || !ATOMIC_METHODS.iter().any(|m| t.text == *m) {
            continue;
        }
        if i < 2
            || !tokens[i - 1].is_punct('.')
            || !tokens.get(i + 1).is_some_and(|p| p.is_punct('('))
        {
            continue;
        }
        // Scan the balanced argument list for named orderings.
        let mut depth = 0usize;
        let mut k = i + 1;
        let mut ords: Vec<String> = Vec::new();
        while k < tokens.len() {
            let a = &tokens[k];
            if a.is_punct('(') {
                depth += 1;
            } else if a.is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if a.kind == TokenKind::Ident && ORDERINGS.iter().any(|o| a.text == *o) {
                ords.push(a.text.clone());
            }
            k += 1;
        }
        let ordering = if t.text == "load" {
            ords.first()
        } else {
            ords.last()
        };
        let Some(ordering) = ordering else { continue };
        let receiver = &tokens[i - 2];
        if receiver.kind != TokenKind::Ident {
            continue; // `(expr).store(…)` — cannot name the field
        }
        sites
            .entry(receiver.text.clone())
            .or_default()
            .push(AtomicSite {
                method: t.text.clone(),
                ordering: ordering.clone(),
                line: receiver.line,
            });
    }
    sites
}

/// Flag broken Relaxed handshakes, per field, file-locally:
///
/// * a **Relaxed plain `store`** on a field that is also plainly `load`ed
///   anywhere in the file — the store cannot publish the data the reader
///   consumes after its load, whatever the load's ordering is;
/// * a **Relaxed plain `load`** on a field whose stores are Release/SeqCst —
///   the writer paid for ordering the reader then discards.
///
/// RMW-only fields (counters via `fetch_add`, flags claimed by CAS/`swap`)
/// are exempt: the classic Relaxed statistics counter never trips the rule.
/// Legit exceptions (termination latches joined elsewhere, gauges tolerant
/// of staleness) carry `// aqua-lint: allow(atomics-ordering) <why>`.
fn check_atomics_ordering(path: &str, tokens: &[Token], excluded: &[bool], out: &mut Vec<Finding>) {
    for (field, sites) in collect_atomic_sites(tokens, excluded) {
        let loads: Vec<&AtomicSite> = sites.iter().filter(|s| s.method == "load").collect();
        let release_store = sites
            .iter()
            .find(|s| s.method == "store" && (s.ordering == "Release" || s.ordering == "SeqCst"));
        if let Some(first_load) = loads.first() {
            for s in sites
                .iter()
                .filter(|s| s.method == "store" && s.ordering == "Relaxed")
            {
                out.push(Finding {
                    rule: ATOMICS_ORDER,
                    file: path.to_string(),
                    line: s.line,
                    message: format!(
                        "`{field}.store(_, Ordering::Relaxed)` publishes a value `{field}.load(…)` consumes (line {}); a Relaxed store cannot order the data it guards — use Release, or justify (counter/latch) with an allow",
                        first_load.line
                    ),
                });
            }
        }
        if let Some(rel) = release_store {
            for l in loads.iter().filter(|l| l.ordering == "Relaxed") {
                out.push(Finding {
                    rule: ATOMICS_ORDER,
                    file: path.to_string(),
                    line: l.line,
                    message: format!(
                        "`{field}.load(Ordering::Relaxed)` pairs with the Release store at line {}; complete the handshake with Acquire, or justify with an allow",
                        rel.line
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 7: unsafe-audit
// ---------------------------------------------------------------------------

/// The one file allowed to contain FFI and `allow(unsafe_code)`.
const SYS_PATH: &str = "crates/runtime/src/sys.rs";

/// Every `extern "C"` signature `sys.rs` may declare. Growing the FFI
/// surface means growing this list — a reviewed, deliberate act.
const FFI_ALLOWLIST: [&str; 4] = ["epoll_create1", "epoll_ctl", "epoll_wait", "close"];

/// Per-token mask of attribute contents (`#[…]`/`#![…]`, introducer
/// included), so attribute-only lines don't break SAFETY-comment adjacency.
fn attribute_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#') {
            let start = i;
            let mut j = i + 1;
            if j < tokens.len() && tokens[j].is_punct('!') {
                j += 1;
            }
            if j < tokens.len() && tokens[j].is_punct('[') {
                let (end, _) = scan_attribute(tokens, j);
                for m in mask.iter_mut().take(end + 1).skip(start) {
                    *m = true;
                }
                i = end + 1;
                continue;
            }
        }
        i += 1;
    }
    mask
}

/// Audit `unsafe` usage:
///
/// 1. every `unsafe` keyword needs a `// SAFETY:` comment on the same line
///    or directly above it (only blank or attribute-only lines between);
/// 2. every crate root (`crates/*/src/lib.rs`, `src/lib.rs`) must assert
///    `#![deny(unsafe_code)]` or `#![forbid(unsafe_code)]`;
/// 3. `allow(unsafe_code)` may appear only in `sys.rs`;
/// 4. `extern "C"` is confined to `sys.rs`, whose declared signatures must
///    all be in [`FFI_ALLOWLIST`].
fn check_unsafe_audit(
    path: &str,
    tokens: &[Token],
    excluded: &[bool],
    safety: &std::collections::BTreeSet<usize>,
    out: &mut Vec<Finding>,
) {
    use std::collections::BTreeSet;
    let attrs = attribute_mask(tokens);
    let mut code_lines: BTreeSet<usize> = BTreeSet::new();
    for (i, t) in tokens.iter().enumerate() {
        if !attrs[i] {
            code_lines.insert(t.line);
        }
    }

    for (i, t) in tokens.iter().enumerate() {
        if excluded[i] || !t.is_ident("unsafe") {
            continue;
        }
        let l = t.line;
        let documented = safety
            .iter()
            .any(|&c| c == l || (c < l && (c + 1..l).all(|m| !code_lines.contains(&m))));
        if !documented {
            out.push(Finding {
                rule: UNSAFE_AUDIT,
                file: path.to_string(),
                line: l,
                message: "`unsafe` without an adjacent `// SAFETY:` comment stating the invariant that makes it sound".to_string(),
            });
        }
    }

    let is_crate_root = path == "src/lib.rs"
        || (path.starts_with("crates/")
            && path.ends_with("/src/lib.rs")
            && path.matches('/').count() == 3);
    if is_crate_root {
        let denies = tokens.windows(3).any(|w| {
            (w[0].is_ident("deny") || w[0].is_ident("forbid"))
                && w[1].is_punct('(')
                && w[2].is_ident("unsafe_code")
        });
        if !denies {
            out.push(Finding {
                rule: UNSAFE_AUDIT,
                file: path.to_string(),
                line: 1,
                message: "crate root does not assert `#![deny(unsafe_code)]` or `#![forbid(unsafe_code)]`".to_string(),
            });
        }
    }

    if path != SYS_PATH {
        for (i, t) in tokens.iter().enumerate() {
            if t.is_ident("unsafe_code")
                && i >= 2
                && tokens[i - 1].is_punct('(')
                && tokens[i - 2].is_ident("allow")
            {
                out.push(Finding {
                    rule: UNSAFE_AUDIT,
                    file: path.to_string(),
                    line: t.line,
                    message: "`allow(unsafe_code)` is reserved for crates/runtime/src/sys.rs; everywhere else stays deny/forbid".to_string(),
                });
            }
        }
    }

    let mut i = 0usize;
    while i < tokens.len() {
        let is_extern_c = tokens[i].is_ident("extern")
            && tokens
                .get(i + 1)
                .is_some_and(|s| s.kind == TokenKind::Str && s.text.trim_matches('"') == "C");
        if !is_extern_c || excluded[i] {
            i += 1;
            continue;
        }
        if path != SYS_PATH {
            out.push(Finding {
                rule: UNSAFE_AUDIT,
                file: path.to_string(),
                line: tokens[i].line,
                message: "`extern \"C\"` FFI outside crates/runtime/src/sys.rs; the audited allowlist lives there".to_string(),
            });
            i += 2;
            continue;
        }
        let mut k = i + 2;
        if tokens.get(k).is_some_and(|b| b.is_punct('{')) {
            let mut depth = 0usize;
            while k < tokens.len() {
                if tokens[k].is_punct('{') {
                    depth += 1;
                } else if tokens[k].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if tokens[k].is_ident("fn") {
                    audit_ffi_name(path, tokens.get(k + 1), out);
                }
                k += 1;
            }
        } else if tokens.get(k).is_some_and(|f| f.is_ident("fn")) {
            audit_ffi_name(path, tokens.get(k + 1), out);
        }
        i = k + 1;
    }
}

fn audit_ffi_name(path: &str, name: Option<&Token>, out: &mut Vec<Finding>) {
    let Some(name) = name.filter(|n| n.kind == TokenKind::Ident) else {
        return;
    };
    if !FFI_ALLOWLIST.iter().any(|a| name.text == *a) {
        out.push(Finding {
            rule: UNSAFE_AUDIT,
            file: path.to_string(),
            line: name.line,
            message: format!(
                "FFI `{}` is not in the audited sys.rs allowlist ({})",
                name.text,
                FFI_ALLOWLIST.join(", ")
            ),
        });
    }
}

// ---------------------------------------------------------------------------
// Rule 8: spawn-join
// ---------------------------------------------------------------------------

/// Flag `thread::spawn` / `thread::Builder…spawn` calls whose `JoinHandle`
/// is dropped on the spot: a bare expression statement, or a `let _ =`
/// binding. A handle that is let-bound, pushed into a collection
/// (`joins.push(thread::spawn(…))` — the spawn sits inside an argument
/// list), returned as a tail expression, or `.join()`ed in the same
/// statement escapes the rule. Non-thread `spawn` methods (scoped threads,
/// `Reactor::spawn`, actor pools) are not matched.
///
/// Deliberate limit: a named binding that is *later* dropped un-joined is
/// not tracked — that needs real dataflow. The rule targets the
/// fire-and-forget idiom, which is exactly what leaks threads past the
/// test harness and shutdown paths.
fn check_spawn_join(path: &str, tokens: &[Token], excluded: &[bool], out: &mut Vec<Finding>) {
    for i in 0..tokens.len() {
        if excluded[i] {
            continue;
        }
        let t = &tokens[i];
        if !t.is_ident("spawn") || !tokens.get(i + 1).is_some_and(|p| p.is_punct('(')) {
            continue;
        }
        // Statement start: just past the previous `;`/`{`/`}`.
        let mut start = i;
        while start > 0 {
            let p = &tokens[start - 1];
            if p.is_punct(';') || p.is_punct('{') || p.is_punct('}') {
                break;
            }
            start -= 1;
        }
        let is_thread_spawn = i >= 3
            && tokens[i - 1].is_punct(':')
            && tokens[i - 2].is_punct(':')
            && tokens[i - 3].is_ident("thread");
        let is_builder_spawn = i >= 1
            && tokens[i - 1].is_punct('.')
            && tokens[start..i].iter().any(|b| b.is_ident("Builder"));
        if !is_thread_spawn && !is_builder_spawn {
            continue;
        }
        if tokens.get(start).is_some_and(|t| t.is_ident("return")) {
            continue; // the handle is returned to the caller
        }
        // Inside an argument list (`joins.push(…)`) the handle escapes.
        let mut depth = 0isize;
        for t in &tokens[start..i] {
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            }
        }
        if depth > 0 {
            continue;
        }
        // A named `let` binding holds the handle; `let _ =` discards it.
        if tokens.get(start).is_some_and(|t| t.is_ident("let")) {
            let mut n = start + 1;
            if tokens.get(n).is_some_and(|t| t.is_ident("mut")) {
                n += 1;
            }
            let named = tokens
                .get(n)
                .is_some_and(|t| t.kind == TokenKind::Ident && t.text != "_");
            if named {
                continue;
            }
        }
        // Scan the statement tail: a `;` at chain depth drops the handle
        // unless `.join()` was called; hitting the enclosing `}` first
        // means the spawn is the block's tail expression.
        let mut k = i + 1;
        let mut d = 0isize;
        let mut joined = false;
        let mut dropped = false;
        while k < tokens.len() {
            let a = &tokens[k];
            if a.is_punct('(') || a.is_punct('[') || a.is_punct('{') {
                d += 1;
            } else if a.is_punct(')') || a.is_punct(']') || a.is_punct('}') {
                d -= 1;
                if d < 0 {
                    break;
                }
            } else if d == 0 {
                if a.is_punct(';') {
                    dropped = true;
                    break;
                }
                if a.is_ident("join") {
                    joined = true;
                }
            }
            k += 1;
        }
        if dropped && !joined {
            out.push(Finding {
                rule: SPAWN_JOIN,
                file: path.to_string(),
                line: t.line,
                message: "`thread::spawn` handle dropped un-joined; bind and join it, or justify detaching with an allow".to_string(),
            });
        }
    }
}

fn vendor_finding(path: &str, line: usize, dep: &str) -> Finding {
    Finding {
        rule: VENDOR_AUDIT,
        file: path.to_string(),
        line,
        message: format!(
            "dependency `{dep}` does not resolve to `vendor/` or the workspace; external crates are forbidden"
        ),
    }
}
