//! Fixture-driven rule tests: every rule has a positive fixture (each
//! construct fires with the right rule id) and a negative fixture (tricky
//! non-violations stay silent), plus a self-check that the workspace
//! itself lints clean.

use aqua_lint::rules::{
    analyze_file, audit_manifest, detect_cycles, Finding, ATOMICS_ORDER, LOCK_ORDER, NO_ALLOC,
    NO_PANIC, SPAWN_JOIN, UNIT_HYGIENE, UNSAFE_AUDIT, VENDOR_AUDIT,
};
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Lint a fixture as if it lived at `virtual_path` inside the workspace.
fn lint_as(virtual_path: &str, name: &str) -> Vec<Finding> {
    analyze_file(virtual_path, &fixture(name)).findings
}

#[test]
fn no_panic_positive_fires_per_construct() {
    let findings = lint_as("crates/core/src/fixture.rs", "no_panic_positive.rs");
    assert!(findings.iter().all(|f| f.rule == NO_PANIC), "{findings:?}");
    let of = |needle: &str| {
        findings
            .iter()
            .filter(|f| f.message.contains(needle))
            .count()
    };
    assert_eq!(of(".unwrap()"), 2, "plain + unjustified-annotation unwrap");
    assert_eq!(of(".expect()"), 1);
    assert_eq!(of("`panic!`"), 1);
    assert_eq!(of("`unreachable!`"), 1);
    assert_eq!(of("indexing"), 3, "xs[0] + grid[0][1] twice");
    assert_eq!(findings.len(), 8);
}

#[test]
fn no_panic_negative_is_silent() {
    let findings = lint_as("crates/core/src/fixture.rs", "no_panic_negative.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn no_panic_scope_is_path_based() {
    // The same panicking source is fine outside the hot-path crates.
    let findings = lint_as("crates/bench/src/fixture.rs", "no_panic_positive.rs");
    assert!(findings.iter().all(|f| f.rule != NO_PANIC), "{findings:?}");
}

#[test]
fn no_alloc_positive_fires_per_construct() {
    let findings = lint_as("crates/runtime/src/fixture.rs", "no_alloc_positive.rs");
    assert!(findings.iter().all(|f| f.rule == NO_ALLOC), "{findings:?}");
    for needle in [
        "Vec::new",
        "vec!",
        ".to_vec()",
        ".clone()",
        "String::from",
        "format!",
    ] {
        assert_eq!(
            findings
                .iter()
                .filter(|f| f.message.contains(needle))
                .count(),
            1,
            "expected exactly one finding for `{needle}`: {findings:?}"
        );
    }
    assert_eq!(findings.len(), 6);
    assert!(findings
        .iter()
        .all(|f| f.message.contains("allocating_hot_path")));
}

#[test]
fn no_alloc_negative_is_silent() {
    let findings = lint_as("crates/runtime/src/fixture.rs", "no_alloc_negative.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn lock_order_positive_fires() {
    let analysis = analyze_file(
        "crates/runtime/src/fixture.rs",
        &fixture("lock_order_positive.rs"),
    );
    // Guard across send + re-entrant acquisition are local findings.
    assert!(analysis
        .findings
        .iter()
        .any(|f| f.rule == LOCK_ORDER && f.message.contains("blocking `.send()`")));
    assert!(analysis
        .findings
        .iter()
        .any(|f| f.rule == LOCK_ORDER && f.message.contains("re-acquired")));
    // The alpha->beta / beta->alpha cycle comes from the global graph.
    let cycles = detect_cycles(&analysis.lock_edges);
    assert_eq!(cycles.len(), 1, "{cycles:?}");
    assert!(cycles[0].message.contains("alpha"));
    assert!(cycles[0].message.contains("beta"));
}

#[test]
fn lock_order_negative_is_silent() {
    let analysis = analyze_file(
        "crates/runtime/src/fixture.rs",
        &fixture("lock_order_negative.rs"),
    );
    assert!(analysis.findings.is_empty(), "{:?}", analysis.findings);
    // Consistent ordering leaves edges but no cycle; the annotated reverse
    // edge was dropped from the graph.
    let cycles = detect_cycles(&analysis.lock_edges);
    assert!(cycles.is_empty(), "{cycles:?}");
}

#[test]
fn lock_order_scope_is_path_based() {
    let findings = lint_as("crates/core/src/fixture.rs", "lock_order_positive.rs");
    assert!(
        findings.iter().all(|f| f.rule != LOCK_ORDER),
        "{findings:?}"
    );
}

#[test]
fn unit_hygiene_positive_fires_per_construct() {
    let findings = lint_as("crates/sim/src/fixture.rs", "unit_hygiene_positive.rs");
    assert!(
        findings.iter().all(|f| f.rule == UNIT_HYGIENE),
        "{findings:?}"
    );
    assert_eq!(findings.len(), 4, "{findings:?}");
    let mixed = findings
        .iter()
        .filter(|f| f.message.contains("mixing"))
        .count();
    let unitless = findings
        .iter()
        .filter(|f| f.message.contains("unitless"))
        .count();
    assert_eq!(mixed, 2);
    assert_eq!(unitless, 2);
}

#[test]
fn unit_hygiene_negative_is_silent() {
    let findings = lint_as("crates/sim/src/fixture.rs", "unit_hygiene_negative.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn vendor_audit_flags_external_deps() {
    let findings = audit_manifest(
        "crates/fixture/Cargo.toml",
        &fixture("vendor_audit_bad.toml"),
    );
    assert!(
        findings.iter().all(|f| f.rule == VENDOR_AUDIT),
        "{findings:?}"
    );
    let flagged: Vec<&str> = ["serde", "rand", "tokio", "criterion"]
        .into_iter()
        .filter(|dep| {
            findings
                .iter()
                .any(|f| f.message.contains(&format!("`{dep}`")))
        })
        .collect();
    assert_eq!(flagged.len(), 4, "{findings:?}");
    assert_eq!(findings.len(), 4, "aqua-core path dep must not be flagged");
}

#[test]
fn vendor_audit_accepts_workspace_and_vendor_paths() {
    let findings = audit_manifest(
        "crates/fixture/Cargo.toml",
        &fixture("vendor_audit_good.toml"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn allow_annotation_does_not_leak_to_other_lines() {
    // The annotation covers its own line and the next one — not line 3.
    let src = "\
// aqua-lint: allow(no-panic-in-hot-path) only covers the next line
pub fn a(x: Option<u32>) -> u32 { x.unwrap() }
pub fn b(x: Option<u32>) -> u32 { x.unwrap() }
";
    let findings = analyze_file("crates/core/src/fixture.rs", src).findings;
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].line, 3);
}

#[test]
fn allow_annotation_for_wrong_rule_does_not_suppress() {
    let src = "\
// aqua-lint: allow(unit-hygiene) wrong rule id
pub fn a(x: Option<u32>) -> u32 { x.unwrap() }
";
    let findings = analyze_file("crates/core/src/fixture.rs", src).findings;
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, NO_PANIC);
}

#[test]
fn atomics_ordering_positive_fires_per_construct() {
    let findings = lint_as("crates/sim/src/fixture.rs", "atomics_ordering_positive.rs");
    assert!(
        findings.iter().all(|f| f.rule == ATOMICS_ORDER),
        "{findings:?}"
    );
    let of = |needle: &str| {
        findings
            .iter()
            .filter(|f| f.message.contains(needle))
            .count()
    };
    assert_eq!(of("`payload.store"), 2, "plain + rustfmt-split store");
    assert_eq!(of("`ready.store"), 1, "Relaxed store vs Acquire load");
    assert_eq!(of("`half.load"), 1, "Relaxed load vs Release store");
    assert_eq!(findings.len(), 4, "{findings:?}");
}

#[test]
fn atomics_ordering_negative_is_silent() {
    let findings = lint_as("crates/sim/src/fixture.rs", "atomics_ordering_negative.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn atomics_finding_anchors_on_the_receiver_line() {
    // rustfmt splits `self.f` and `.store(…)` across lines; the finding
    // must sit on the receiver so an allow directly above it suppresses.
    let bare = "\
use std::sync::atomic::{AtomicU64, Ordering};
pub struct S {
    f: AtomicU64,
}
impl S {
    pub fn w(&self) {
        self.f
            .store(1, Ordering::Relaxed);
    }
    pub fn r(&self) -> u64 {
        self.f.load(Ordering::Relaxed)
    }
}
";
    let findings = analyze_file("crates/sim/src/fixture.rs", bare).findings;
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].line, 7, "anchor on `self.f`, not `.store`");

    let allowed = bare.replace(
        "        self.f\n",
        "        // aqua-lint: allow(atomics-ordering) split-chain anchor\n        self.f\n",
    );
    let findings = analyze_file("crates/sim/src/fixture.rs", &allowed).findings;
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn unsafe_audit_positive_fires_per_construct() {
    let findings = lint_as("crates/gateway/src/fixture.rs", "unsafe_audit_positive.rs");
    assert!(
        findings.iter().all(|f| f.rule == UNSAFE_AUDIT),
        "{findings:?}"
    );
    let of = |needle: &str| {
        findings
            .iter()
            .filter(|f| f.message.contains(needle))
            .count()
    };
    assert_eq!(of("reserved for"), 1, "allow(unsafe_code) outside sys.rs");
    assert_eq!(of("outside crates/runtime/src/sys.rs"), 1, "extern \"C\"");
    assert_eq!(of("SAFETY"), 2, "undocumented + comment-too-far unsafe");
    assert_eq!(findings.len(), 4, "{findings:?}");
}

#[test]
fn unsafe_audit_crate_root_must_deny() {
    // The same fixture linted as a crate root additionally misses the
    // `#![deny(unsafe_code)]` assertion.
    let findings = lint_as("crates/fixture/src/lib.rs", "unsafe_audit_positive.rs");
    assert_eq!(findings.len(), 5, "{findings:?}");
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("crate root") && f.line == 1),
        "{findings:?}"
    );
}

#[test]
fn unsafe_audit_negative_is_silent_in_sys() {
    let findings = lint_as("crates/runtime/src/sys.rs", "unsafe_audit_negative.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn unsafe_audit_sys_allowlist_catches_strays() {
    let findings = lint_as("crates/runtime/src/sys.rs", "unsafe_audit_sys_bad.rs");
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].message.contains("`socket`"), "{findings:?}");
    assert!(findings[0].message.contains("allowlist"), "{findings:?}");
}

#[test]
fn spawn_join_positive_fires_per_construct() {
    let findings = lint_as("crates/sim/src/fixture.rs", "spawn_join_positive.rs");
    assert!(
        findings.iter().all(|f| f.rule == SPAWN_JOIN),
        "{findings:?}"
    );
    assert_eq!(findings.len(), 3, "bare, `let _`, and Builder spawns");
}

#[test]
fn spawn_join_negative_is_silent() {
    let findings = lint_as("crates/sim/src/fixture.rs", "spawn_join_negative.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn concurrency_rules_scope_is_path_based() {
    // The same sources are exempt outside `src/` trees (tests, benches).
    let findings = lint_as("crates/sim/tests/helper.rs", "spawn_join_positive.rs");
    assert!(
        findings.iter().all(|f| f.rule != SPAWN_JOIN),
        "{findings:?}"
    );
    let findings = lint_as("crates/sim/tests/helper.rs", "atomics_ordering_positive.rs");
    assert!(
        findings.iter().all(|f| f.rule != ATOMICS_ORDER),
        "{findings:?}"
    );
}

#[test]
fn baseline_round_trip_suppresses_only_known_findings() {
    let old_finding = |file: &str, line: usize, message: &str| Finding {
        rule: ATOMICS_ORDER,
        file: file.to_string(),
        line,
        message: message.to_string(),
    };
    let old = aqua_lint::Report {
        findings: vec![
            old_finding("crates/a/src/x.rs", 10, "relaxed store \"quoted\""),
            old_finding("crates/b/src/y.rs", 20, "relaxed load"),
        ],
        ..Default::default()
    };
    let baseline = aqua_lint::parse_baseline(&old.to_json());
    assert_eq!(baseline.len(), 2);

    let mut fresh = aqua_lint::Report {
        findings: vec![
            // Same finding, drifted line: still suppressed (lines are not
            // part of a finding's identity).
            old_finding("crates/a/src/x.rs", 14, "relaxed store \"quoted\""),
            old_finding("crates/b/src/y.rs", 20, "relaxed load"),
            // A genuinely new finding survives.
            old_finding("crates/c/src/z.rs", 5, "new regression"),
        ],
        ..Default::default()
    };
    let suppressed = fresh.apply_baseline(&baseline);
    assert_eq!(suppressed, 2);
    assert_eq!(fresh.findings.len(), 1, "{:?}", fresh.findings);
    assert_eq!(fresh.findings[0].file, "crates/c/src/z.rs");
}

#[test]
fn workspace_lints_clean() {
    // The tree this crate ships in must itself be finding-free: the CI
    // `--check` gate relies on it.
    let root = aqua_lint::find_workspace_root(&Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."))
        .expect("workspace root");
    let report = aqua_lint::run_workspace(&root).expect("lint run");
    assert!(
        report.findings.is_empty(),
        "workspace must lint clean:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.files_scanned > 50,
        "scanned {}",
        report.files_scanned
    );
    assert!(report.manifests_audited > 10);
}

#[test]
fn json_report_shape() {
    let root = aqua_lint::find_workspace_root(&Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."))
        .expect("workspace root");
    let report = aqua_lint::run_workspace(&root).expect("lint run");
    let json = report.to_json();
    for rule in aqua_lint::rules::ALL_RULES {
        assert!(json.contains(&format!("\"{rule}\"")), "{json}");
    }
    assert!(json.contains("\"findings\""));
    assert!(json.contains("\"by_rule\""));
    assert!(json.contains("\"total\""));
}
