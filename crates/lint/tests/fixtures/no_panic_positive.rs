// Positive fixture for no-panic-in-hot-path: every construct below must
// produce exactly one finding when linted as a hot-path crate file.

pub fn uses_unwrap(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn uses_expect(x: Option<u32>) -> u32 {
    x.expect("always present")
}

pub fn uses_panic(flag: bool) {
    if flag {
        panic!("boom");
    }
}

pub fn uses_unreachable(n: u32) -> u32 {
    match n {
        0 => 1,
        _ => unreachable!(),
    }
}

pub fn uses_indexing(xs: &[u32]) -> u32 {
    xs[0]
}

pub fn chained_indexing(grid: &[Vec<u32>]) -> u32 {
    grid[0][1]
}

pub fn annotation_without_justification(x: Option<u32>) -> u32 {
    // aqua-lint: allow(no-panic-in-hot-path)
    x.unwrap()
}
