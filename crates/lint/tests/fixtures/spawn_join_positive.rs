//! Positive fixture for `spawn-join`: fire-and-forget idioms, one per
//! construct.

use std::thread;

/// Bare expression statement: the handle is dropped on the spot.
pub fn fire_and_forget() {
    thread::spawn(|| {});
}

/// `let _ =` discards the handle just as thoroughly.
pub fn discarded_binding() {
    let _ = std::thread::spawn(|| {});
}

/// Builder-flavoured spawn, also dropped.
pub fn builder_detached(name: String) {
    thread::Builder::new().name(name).spawn(|| {}).unwrap();
}
