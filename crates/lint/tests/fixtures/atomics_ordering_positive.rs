//! Positive fixture for `atomics-ordering`: broken Relaxed handshakes,
//! one finding per construct.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub struct Publish {
    payload: AtomicU64,
    ready: AtomicBool,
    half: AtomicU64,
}

impl Publish {
    /// Relaxed store on a field that is also plainly loaded: the store
    /// cannot publish the data its readers consume.
    pub fn produce(&self) {
        self.payload.store(7, Ordering::Relaxed);
    }

    /// Same field, rustfmt-split chain: the finding must anchor on the
    /// receiver line so an allow annotation above it works.
    pub fn produce_again(&self) {
        self.payload
            .store(9, Ordering::Relaxed);
    }

    pub fn consume(&self) -> u64 {
        self.payload.load(Ordering::Relaxed)
    }

    /// Relaxed store paired with an Acquire load: the reader paid for
    /// ordering the writer never provides.
    pub fn mark_ready(&self) {
        self.ready.store(true, Ordering::Relaxed);
    }

    pub fn is_ready(&self) -> bool {
        self.ready.load(Ordering::Acquire)
    }

    /// Release store paired with a Relaxed load: the writer paid for
    /// ordering the reader discards.
    pub fn seal(&self, v: u64) {
        self.half.store(v, Ordering::Release);
    }

    pub fn peek(&self) -> u64 {
        self.half.load(Ordering::Relaxed)
    }
}
