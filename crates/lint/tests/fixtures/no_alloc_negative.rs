// Negative fixture for no-alloc-in-select: no findings expected.

// Unmarked functions may allocate freely.
pub fn unmarked_allocates(xs: &[u64]) -> Vec<u64> {
    let mut out = xs.to_vec();
    out.push(0);
    out
}

#[aqua::hot_path]
pub fn clean_hot_path(xs: &[u64]) -> u64 {
    // Iteration, arithmetic, and stack values are all fine.
    let mut acc = 0u64;
    for x in xs {
        acc = acc.wrapping_add(*x);
    }
    acc
}

#[aqua::hot_path]
pub fn justified_alloc(xs: &[u64]) -> Vec<u64> {
    // aqua-lint: allow(no-alloc-in-select) the return value is the function's contract
    xs.to_vec()
}

#[aqua::hot_path]
pub fn hot_path_with_test_helper(x: u64) -> u64 {
    x.rotate_left(1)
}

#[cfg(test)]
mod tests {
    // Allocation inside test code is never a finding, marker or not.
    #[test]
    fn helper() {
        let v = vec![1, 2, 3];
        assert_eq!(super::clean_hot_path(&v), 6);
    }
}
