// Negative fixture for lock-order: consistent ordering and guard-free
// sends produce no findings and no cycle.

pub fn consistent_order_one(s: &Shared) {
    let alpha = s.alpha.lock();
    let beta = s.beta.lock();
    drop(beta);
    drop(alpha);
}

pub fn consistent_order_two(s: &Shared) {
    let alpha = s.alpha.lock();
    let beta = s.beta.lock();
    beta.touch();
    drop(beta);
    drop(alpha);
}

pub fn send_after_drop(s: &Shared) {
    let queue = s.queue.lock();
    let len = queue.len();
    drop(queue);
    let _ = s.tx.send(len);
}

pub fn send_after_temporary(s: &Shared) {
    // The guard is a temporary: it dies at the semicolon, before the send.
    let len = s.queue.lock().len();
    let _ = s.tx.send(len);
}

pub fn send_after_projection(s: &Shared) {
    // `.take()` projects out of the guard; the guard dies at the `;`.
    let tx = s.notify.lock().take();
    if let Some(tx) = tx {
        let _ = tx.send(0);
    }
}

pub fn justified_nesting(s: &Shared) {
    let beta = s.beta.lock();
    // aqua-lint: allow(lock-order) fixture shows a sanctioned edge being dropped from the graph
    let alpha = s.alpha.lock();
    drop(alpha);
    drop(beta);
}

pub fn io_read_is_not_a_lock(stream: &mut TcpStream, buf: &mut [u8]) {
    // `Read::read` takes arguments; only zero-arg `.read()` acquires.
    let _ = stream.read(buf);
}
