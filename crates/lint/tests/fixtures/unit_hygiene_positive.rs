// Positive fixture for unit-hygiene: raw accessor arithmetic that mixes
// units or drops them entirely.

pub fn mixes_units(a: Duration, b: Duration) -> u64 {
    a.as_millis() + b.as_nanos()
}

pub fn subtracts_mixed(a: Duration, b: Duration) -> u64 {
    a.as_secs() - b.as_millis()
}

pub fn adds_unitless(a: Duration, slack: u64) -> u64 {
    a.as_millis() + slack
}

pub fn literal_offset(a: Duration) -> u64 {
    a.as_nanos() - 1
}
