//! Negative fixture for `unsafe-audit`, linted as `sys.rs`: documented
//! unsafe, allowlisted FFI, and the attribute-separated SAFETY comment.

#![allow(unsafe_code)]

use std::io;

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn close(fd: i32) -> i32;
}

pub struct Fd(i32);

impl Fd {
    pub fn new() -> io::Result<Fd> {
        // SAFETY: epoll_create1 has no memory preconditions; the returned
        // descriptor is error-checked before use.
        let fd = unsafe { epoll_create1(0) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Fd(fd))
    }

    // SAFETY: callers must keep the descriptor open for the returned
    // value's useful lifetime; an attribute between comment and item is
    // still adjacent.
    #[inline]
    pub unsafe fn raw(&self) -> i32 {
        self.0
    }
}

impl Drop for Fd {
    fn drop(&mut self) {
        unsafe { close(self.0) }; // SAFETY: single owner; sole close.
    }
}
