//! Negative fixture for `spawn-join`: handles that escape, get joined,
//! or are justifiably detached must all stay silent.

use std::thread;

/// Named binding: the handle is held (and joined later).
pub fn joined_later() {
    let worker = thread::spawn(|| {});
    worker.join().ok();
}

/// Joined in the same statement.
pub fn joined_inline() {
    thread::spawn(|| {}).join().ok();
}

/// Pushed into a held collection: the spawn sits inside an argument list.
pub fn held_in_vec(n: usize) {
    let mut joins = Vec::new();
    for _ in 0..n {
        joins.push(thread::spawn(|| {}));
    }
    for j in joins {
        j.join().ok();
    }
}

/// Returned to the caller.
pub fn returned() -> thread::JoinHandle<()> {
    return thread::spawn(|| {});
}

/// Tail expression: the handle is the block's value.
pub fn tail_expression() -> thread::JoinHandle<()> {
    thread::spawn(|| {})
}

/// Deliberately detached, with the justification the rule demands.
pub fn detached_on_purpose() {
    // aqua-lint: allow(spawn-join) watchdog lives for the process lifetime
    thread::spawn(|| {});
}

/// A non-thread `spawn` method is not matched.
pub struct Pool;

impl Pool {
    pub fn spawn(&self, _job: usize) {}
}

pub fn not_a_thread(pool: &Pool) {
    pool.spawn(3);
}

#[cfg(test)]
mod tests {
    use std::thread;

    /// Detached spawns inside `#[cfg(test)]` code are exempt.
    pub fn racy_helper() {
        thread::spawn(|| {});
    }
}
