//! Positive fixture for `unsafe-audit`: every construct the rule flags
//! outside `sys.rs`.

#[allow(unsafe_code)]
pub fn raw_read(p: *const u64) -> u64 {
    unsafe { *p }
}

extern "C" {
    fn getpid() -> i32;
}

// SAFETY: this comment is separated from the unsafe block by code lines,
// so it does not count as adjacent documentation.
pub fn documented_too_far(p: *const u64) -> u64 {
    let _ = p;
    unsafe { *p }
}
