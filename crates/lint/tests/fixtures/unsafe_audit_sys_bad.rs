//! Fixture: `sys.rs` declaring an extern fn outside the audited
//! allowlist must be flagged, while allowlisted neighbours stay silent.

#![allow(unsafe_code)]

extern "C" {
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, ev: *mut u8) -> i32;
    fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
}
