// Negative fixture for unit-hygiene: no findings expected.

pub fn same_unit_is_fine(a: Duration, b: Duration) -> u64 {
    // Same accessor on both sides: the unit is preserved.
    a.as_millis() + b.as_millis()
}

pub fn scaling_is_fine(a: Duration, n: u64) -> u64 {
    // `*`/`/` scale a value without changing what unit it is in.
    a.as_nanos() / n * 2
}

pub fn duration_arithmetic_is_the_goal(a: Duration, b: Duration) -> u64 {
    // Arithmetic on Duration itself, converting once at the end.
    (a + b).as_millis()
}

pub fn lone_accessors(a: Duration) -> (u64, u64) {
    (a.as_millis(), a.as_nanos())
}

pub fn justified_mixing(a: Duration, raw_ns: u64) -> u64 {
    // aqua-lint: allow(unit-hygiene) fixture demonstrates a justified wire-format conversion
    a.as_nanos() + raw_ns
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_mix_freely() {
        let a = Duration::from_millis(5);
        let b = Duration::from_nanos(7);
        assert!(a.as_millis() + b.as_nanos() > 0);
    }
}
