// Positive fixture for lock-order: an A->B / B->A cycle across two
// functions, a guard held across a blocking send, and a re-entrant
// acquisition.

pub fn takes_alpha_then_beta(s: &Shared) {
    let alpha = s.alpha.lock();
    let beta = s.beta.lock();
    drop(beta);
    drop(alpha);
}

pub fn takes_beta_then_alpha(s: &Shared) {
    let beta = s.beta.lock();
    let alpha = s.alpha.lock();
    drop(alpha);
    drop(beta);
}

pub fn sends_under_guard(s: &Shared) {
    let queue = s.queue.lock();
    let _ = s.tx.send(queue.len());
}

pub fn reentrant_lock(s: &Shared) {
    let first = s.gamma.lock();
    let second = s.gamma.lock();
    drop(second);
    drop(first);
}
