// Positive fixture for no-alloc-in-select: the marked function allocates
// six different ways; each must produce one finding.

#[aqua::hot_path]
pub fn allocating_hot_path(xs: &[u64], name: &str) -> u64 {
    let a: Vec<u64> = Vec::new();
    let b = vec![1u64, 2, 3];
    let c = xs.to_vec();
    let d = c.clone();
    let e = String::from(name);
    let f = format!("{name}!");
    a.len() as u64 + b.len() as u64 + d.len() as u64 + e.len() as u64 + f.len() as u64
}
