//! Negative fixture for `atomics-ordering`: legitimate Relaxed usage and
//! near-miss constructs that must all stay silent.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Quiet {
    hits: AtomicU64,
    seq: AtomicU64,
    claimed: AtomicU64,
    gauge: AtomicU64,
}

impl Quiet {
    /// RMW-only counter: the classic Relaxed statistics counter. The field
    /// has no plain store, so the Relaxed load is fine.
    pub fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn total(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Proper Release/Acquire handshake.
    pub fn publish(&self, v: u64) {
        self.seq.store(v, Ordering::Release);
    }

    pub fn read(&self) -> u64 {
        self.seq.load(Ordering::Acquire)
    }

    /// CAS-claimed flag: compare_exchange is an RMW, not a plain store.
    pub fn claim(&self) -> bool {
        self.claimed
            .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Relaxed store + Relaxed load, but justified: the single-line allow
    /// annotation sits directly above the flagged receiver.
    pub fn set(&self, v: u64) {
        // aqua-lint: allow(atomics-ordering) standalone gauge; scrapes tolerate staleness
        self.gauge.store(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.gauge.load(Ordering::Relaxed)
    }
}

/// A non-atomic `store` method with no `Ordering` argument is not an
/// atomic site, whatever its name.
pub struct Cache {
    v: u64,
}

impl Cache {
    pub fn store(&mut self, v: u64) {
        self.v = v;
    }

    pub fn load(&self) -> u64 {
        self.v
    }
}

pub fn non_atomic(c: &mut Cache) -> u64 {
    c.store(3);
    c.load()
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A violation inside `#[cfg(test)]` code is exempt.
    pub fn racy(a: &AtomicU64) -> u64 {
        a.store(1, Ordering::Relaxed);
        a.load(Ordering::Relaxed)
    }
}
