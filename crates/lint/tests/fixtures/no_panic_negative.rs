// Negative fixture for no-panic-in-hot-path: nothing here may produce a
// finding, even though the file is linted as a hot-path crate file.

/// Doc comments may talk about `.unwrap()` and `panic!` freely.
pub fn strings_and_comments() -> &'static str {
    // A comment calling .unwrap() is not code.
    /* Nor is a block comment with xs[0] and .expect("x"). */
    let s = "call .unwrap() or panic!(\"no\") inside a string";
    let r = r#"raw string with .expect("msg") and xs[0]"#;
    if s.len() > r.len() {
        s
    } else {
        r
    }
}

pub fn unwrap_lookalikes(x: Option<u32>) -> u32 {
    // `unwrap_or` family methods do not panic.
    x.unwrap_or(0).max(x.unwrap_or_default()).max(x.unwrap_or_else(|| 7))
}

pub fn slice_types_and_literals(xs: &mut [f64]) -> f64 {
    // `[f64]` in types, array literals, and `vec![…]` are not indexing.
    let ys = [1.0, 2.0, 3.0];
    let zs = vec![0.0; 4];
    xs.first().copied().unwrap_or(0.0) + ys.iter().sum::<f64>() + zs.iter().sum::<f64>()
}

pub fn justified_unwrap(x: Option<u32>) -> u32 {
    // aqua-lint: allow(no-panic-in-hot-path) fixture demonstrates a justified suppression
    x.unwrap()
}

pub fn trailing_annotation(x: Option<u32>) -> u32 {
    x.unwrap() // aqua-lint: allow(no-panic-in-hot-path) same-line form works too
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic_freely() {
        let xs = vec![1, 2, 3];
        assert_eq!(xs[0], 1);
        let v: Option<u32> = Some(5);
        assert_eq!(v.unwrap(), 5);
        if xs.len() > 3 {
            panic!("impossible");
        }
    }

    mod nested {
        #[test]
        fn nested_test_modules_are_also_excluded() {
            let v: Option<u32> = Some(5);
            assert_eq!(v.expect("present"), 5);
        }
    }
}
