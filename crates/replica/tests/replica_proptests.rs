//! Property tests for the replica behaviour models.

use aqua_core::time::{Duration, Instant};
use aqua_replica::{CrashPlan, CrashState, LoadModel, LoadProcess, RequestQueue, ServiceTimeModel};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn ms(v: u64) -> Duration {
    Duration::from_millis(v)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------------- Service-time models ----------------

    #[test]
    fn uniform_samples_stay_in_bounds(lo in 1u64..500, width in 1u64..500, seed in 0u64..100) {
        let model = ServiceTimeModel::Uniform {
            lo: ms(lo),
            hi: ms(lo + width),
        };
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..200 {
            let s = model.sample(&mut rng);
            prop_assert!(s >= ms(lo) && s < ms(lo + width));
        }
    }

    #[test]
    fn normal_samples_respect_min(
        mean in 0u64..300,
        std in 1u64..200,
        min in 0u64..100,
        seed in 0u64..100,
    ) {
        let model = ServiceTimeModel::Normal {
            mean: ms(mean),
            std_dev: ms(std),
            min: ms(min),
        };
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..200 {
            prop_assert!(model.sample(&mut rng) >= ms(min));
        }
    }

    #[test]
    fn pareto_samples_respect_scale(scale in 1u64..200, seed in 0u64..100) {
        let model = ServiceTimeModel::Pareto {
            scale: ms(scale),
            shape: 2.0,
        };
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..200 {
            prop_assert!(model.sample(&mut rng) >= ms(scale));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed(mean in 1u64..500, seed in 0u64..100) {
        let model = ServiceTimeModel::Exponential { mean: ms(mean) };
        let a: Vec<Duration> = {
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..50).map(|_| model.sample(&mut rng)).collect()
        };
        let b: Vec<Duration> = {
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..50).map(|_| model.sample(&mut rng)).collect()
        };
        prop_assert_eq!(a, b);
    }

    // ---------------- FIFO queue ----------------

    #[test]
    fn queue_is_fifo_and_delays_are_exact(
        arrivals in prop::collection::vec(0u64..10_000, 1..50),
        service_gap in 1u64..500,
    ) {
        let mut arrivals = arrivals;
        arrivals.sort_unstable();
        let mut q = RequestQueue::new();
        for (i, at) in arrivals.iter().enumerate() {
            q.push(i, Instant::from_millis(*at));
        }
        prop_assert_eq!(q.len(), arrivals.len());
        prop_assert_eq!(q.max_depth(), arrivals.len());
        // Pop everything starting after the last arrival, spaced by
        // service_gap.
        let mut t = *arrivals.last().unwrap();
        for (i, at) in arrivals.iter().enumerate() {
            let (item, tq) = q.pop(Instant::from_millis(t)).unwrap();
            prop_assert_eq!(item, i, "FIFO order");
            prop_assert_eq!(tq, ms(t - at), "tq = t3 − t2 exactly");
            t += service_gap;
        }
        prop_assert!(q.is_empty());
    }

    // ---------------- Crash plans ----------------

    #[test]
    fn at_time_crash_fires_exactly_at_threshold(at in 1u64..100_000, seed in 0u64..50) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut s = CrashState::new(
            CrashPlan::AtTime(Instant::from_millis(at)),
            Instant::EPOCH,
            &mut rng,
        );
        prop_assert!(!s.observe_time(Instant::from_millis(at - 1)));
        prop_assert!(s.observe_time(Instant::from_millis(at)));
        prop_assert!(s.is_crashed());
    }

    #[test]
    fn after_requests_crash_counts_exactly(n in 1u64..200, seed in 0u64..50) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut s = CrashState::new(CrashPlan::AfterRequests(n), Instant::EPOCH, &mut rng);
        for _ in 0..n - 1 {
            prop_assert!(!s.observe_serviced());
        }
        prop_assert!(s.observe_serviced());
    }

    // ---------------- Load process ----------------

    #[test]
    fn load_factors_come_from_the_configured_states(
        factor in 1.5f64..16.0,
        seed in 0u64..50,
    ) {
        let mut p = LoadProcess::new(LoadModel::bursty(ms(200), ms(100), factor));
        let mut rng = SmallRng::seed_from_u64(seed);
        for t in (0..20_000).step_by(7) {
            let f = p.factor(Instant::from_millis(t), &mut rng);
            prop_assert!(
                (f - 1.0).abs() < 1e-12 || (f - factor).abs() < 1e-12,
                "unexpected factor {f}"
            );
        }
    }
}
