//! # aqua-replica — server replica behaviour models
//!
//! The pure (transport-free) behaviour of an AQuA server replica:
//!
//! * [`ServiceTimeModel`] — per-request service-time distributions,
//!   including the paper's Normal(100 ms, σ 50 ms) synthetic load (§6);
//! * [`LoadModel`] / [`LoadProcess`] — host load fluctuation (§3);
//! * [`CrashPlan`] / [`CrashState`] — silent crash injection (§3);
//! * [`RequestQueue`] — the FIFO request queue with queuing-delay
//!   measurement (§5.1 Stage 3).
//!
//! The simulated server gateway node in `aqua-gateway` and the socket
//! server in `aqua-runtime` both compose these pieces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod crash;
mod load;
mod queue;
mod service;

pub use crash::{CrashPlan, CrashState};
pub use load::{LoadModel, LoadProcess, LoadState};
pub use queue::{Queued, RequestQueue};
pub use service::ServiceTimeModel;
