//! Host load fluctuation (§3: "the load on a replica may fluctuate and …
//! periods of high load may make it less responsive").
//!
//! A [`LoadModel`] multiplies a replica's sampled service time by a
//! time-varying factor. The Markov-modulated variant dwells in each load
//! state for an exponentially distributed time, producing the bursty
//! slowdowns the selection algorithm must adapt to.

use aqua_core::time::{Duration, Instant};
use rand::Rng;
use rand_distr::{Distribution, Exp};

/// One state of a Markov-modulated load process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadState {
    /// Service-time multiplier while in this state (1.0 = nominal).
    pub factor: f64,
    /// Mean dwell time before transitioning.
    pub mean_dwell: Duration,
}

/// A time-varying service-time multiplier.
#[derive(Debug, Clone, PartialEq)]
pub enum LoadModel {
    /// Constant multiplier (1.0 reproduces the paper's steady testbed).
    Constant(f64),
    /// Markov-modulated: cycles through `states`, dwelling in each for an
    /// exponentially distributed time with the state's mean.
    MarkovModulated {
        /// The load states, visited round-robin with random dwell times.
        states: Vec<LoadState>,
    },
}

impl LoadModel {
    /// The steady, unloaded host of the paper's testbed.
    pub fn nominal() -> Self {
        LoadModel::Constant(1.0)
    }

    /// A host that is calm most of the time but periodically busy:
    /// nominal for ~`calm` on average, then `factor`× slower for ~`busy`.
    pub fn bursty(calm: Duration, busy: Duration, factor: f64) -> Self {
        LoadModel::MarkovModulated {
            states: vec![
                LoadState {
                    factor: 1.0,
                    mean_dwell: calm,
                },
                LoadState {
                    factor,
                    mean_dwell: busy,
                },
            ],
        }
    }
}

/// Tracks the current load state of one host over (virtual) time.
#[derive(Debug, Clone)]
pub struct LoadProcess {
    model: LoadModel,
    state: usize,
    until: Instant,
    initialized: bool,
    transitions: u64,
}

impl LoadProcess {
    /// Creates a process starting in the first state at time zero.
    pub fn new(model: LoadModel) -> Self {
        LoadProcess {
            model,
            state: 0,
            until: Instant::EPOCH,
            initialized: false,
            transitions: 0,
        }
    }

    fn draw_dwell<R: Rng + ?Sized>(state: &LoadState, rng: &mut R) -> Duration {
        let mean = state.mean_dwell.as_secs_f64().max(1e-9);
        let dwell = Exp::new(1.0 / mean).expect("rate positive").sample(rng);
        Duration::from_secs_f64(dwell.max(1e-9))
    }

    /// The multiplier in effect at `now`, advancing state transitions as
    /// needed. `now` must be non-decreasing across calls.
    pub fn factor<R: Rng + ?Sized>(&mut self, now: Instant, rng: &mut R) -> f64 {
        match &self.model {
            LoadModel::Constant(f) => *f,
            LoadModel::MarkovModulated { states } => {
                if states.is_empty() {
                    return 1.0;
                }
                if !self.initialized {
                    self.initialized = true;
                    self.until = Instant::EPOCH.saturating_add(Self::draw_dwell(&states[0], rng));
                }
                // `until` is the end of the current state's dwell interval;
                // once `now` passes it, hop to the next state (round-robin)
                // and extend by that state's own dwell.
                while now >= self.until {
                    self.state = (self.state + 1) % states.len();
                    self.transitions += 1;
                    let dwell = Self::draw_dwell(&states[self.state], rng);
                    self.until = self.until.saturating_add(dwell);
                }
                states[self.state % states.len()].factor
            }
        }
    }

    /// Number of state transitions so far.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// The underlying model.
    pub fn model(&self) -> &LoadModel {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn constant_never_transitions() {
        let mut p = LoadProcess::new(LoadModel::Constant(2.5));
        let mut rng = SmallRng::seed_from_u64(1);
        for t in 0..100 {
            assert_eq!(p.factor(Instant::from_millis(t * 100), &mut rng), 2.5);
        }
        assert_eq!(p.transitions(), 0);
    }

    #[test]
    fn nominal_is_one() {
        let mut p = LoadProcess::new(LoadModel::nominal());
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(p.factor(Instant::EPOCH, &mut rng), 1.0);
    }

    #[test]
    fn bursty_visits_both_states() {
        let mut p = LoadProcess::new(LoadModel::bursty(
            Duration::from_millis(100),
            Duration::from_millis(100),
            8.0,
        ));
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = std::collections::BTreeSet::new();
        for t in 0..2_000 {
            let f = p.factor(Instant::from_millis(t), &mut rng);
            seen.insert((f * 10.0) as u64);
        }
        assert!(seen.contains(&10), "nominal state visited");
        assert!(seen.contains(&80), "busy state visited");
        assert!(p.transitions() > 0);
    }

    #[test]
    fn busy_fraction_tracks_dwell_ratio() {
        // calm mean 300 ms, busy mean 100 ms → busy ~25% of the time.
        let mut p = LoadProcess::new(LoadModel::bursty(
            Duration::from_millis(300),
            Duration::from_millis(100),
            4.0,
        ));
        let mut rng = SmallRng::seed_from_u64(11);
        let total = 200_000u64;
        let busy = (0..total)
            .filter(|t| p.factor(Instant::from_millis(*t), &mut rng) > 1.0)
            .count() as f64;
        let frac = busy / total as f64;
        assert!((frac - 0.25).abs() < 0.05, "busy fraction {frac}");
    }

    #[test]
    fn empty_markov_states_default_to_nominal() {
        let mut p = LoadProcess::new(LoadModel::MarkovModulated { states: vec![] });
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(p.factor(Instant::from_millis(5), &mut rng), 1.0);
    }
}
