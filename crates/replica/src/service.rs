//! Service-time distributions for simulated replicas.
//!
//! The paper's experiments "simulated the load on the servers by having
//! each replica respond to a request after a delay that was normally
//! distributed with a mean of 100 milliseconds and a variance of 50
//! milliseconds" (§6). [`ServiceTimeModel::paper_load`] reproduces that
//! setting (reading the spread as σ = 50 ms; see DESIGN.md for why); the
//! other variants exercise the model under heavier tails and mode mixtures.

use aqua_core::time::Duration;
use rand::Rng;
use rand_distr::{Distribution, Exp, LogNormal, Normal, Pareto};

/// A sampleable distribution of per-request service times.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceTimeModel {
    /// Every request takes exactly this long.
    Deterministic(Duration),
    /// Uniform between `lo` and `hi` (inclusive of `lo`, exclusive of `hi`).
    Uniform {
        /// Lower bound.
        lo: Duration,
        /// Upper bound (must be > `lo`).
        hi: Duration,
    },
    /// Normal, truncated below at `min`.
    Normal {
        /// Mean of the untruncated distribution.
        mean: Duration,
        /// Standard deviation.
        std_dev: Duration,
        /// Samples below this are clamped up to it.
        min: Duration,
    },
    /// Exponential with the given mean.
    Exponential {
        /// Mean service time (1/λ).
        mean: Duration,
    },
    /// Log-normal parameterized by its median and the σ of the underlying
    /// normal, producing a right-skewed, occasionally very slow service.
    LogNormal {
        /// Median service time (`e^μ`).
        median: Duration,
        /// Shape: σ of `ln X`.
        sigma: f64,
    },
    /// Pareto (heavy tail) with minimum `scale` and tail index `shape`.
    Pareto {
        /// Minimum service time.
        scale: Duration,
        /// Tail index α (> 1 for a finite mean).
        shape: f64,
    },
    /// With probability `p_slow` sample from `slow`, otherwise `fast` —
    /// a compute-bound server that sporadically hits a slow path.
    Bimodal {
        /// Probability of the slow mode.
        p_slow: f64,
        /// Fast-mode distribution.
        fast: Box<ServiceTimeModel>,
        /// Slow-mode distribution.
        slow: Box<ServiceTimeModel>,
    },
}

impl ServiceTimeModel {
    /// The paper's synthetic server load: Normal(100 ms, σ 50 ms),
    /// truncated at zero.
    pub fn paper_load() -> Self {
        ServiceTimeModel::Normal {
            mean: Duration::from_millis(100),
            std_dev: Duration::from_millis(50),
            min: Duration::ZERO,
        }
    }

    /// Draws one service time.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Duration {
        match self {
            ServiceTimeModel::Deterministic(d) => *d,
            ServiceTimeModel::Uniform { lo, hi } => {
                debug_assert!(hi > lo, "uniform needs hi > lo");
                Duration::from_nanos(rng.gen_range(lo.as_nanos()..hi.as_nanos()))
            }
            ServiceTimeModel::Normal { mean, std_dev, min } => {
                let dist = Normal::new(mean.as_secs_f64(), std_dev.as_secs_f64())
                    .expect("std_dev is finite and non-negative");
                let secs = dist.sample(rng);
                Duration::from_secs_f64(secs.max(min.as_secs_f64()))
            }
            ServiceTimeModel::Exponential { mean } => {
                let lambda = 1.0 / mean.as_secs_f64().max(f64::MIN_POSITIVE);
                let dist = Exp::new(lambda).expect("rate is positive and finite");
                Duration::from_secs_f64(dist.sample(rng))
            }
            ServiceTimeModel::LogNormal { median, sigma } => {
                let mu = median.as_secs_f64().max(f64::MIN_POSITIVE).ln();
                let dist = LogNormal::new(mu, *sigma).expect("sigma is finite");
                Duration::from_secs_f64(dist.sample(rng))
            }
            ServiceTimeModel::Pareto { scale, shape } => {
                let dist = Pareto::new(scale.as_secs_f64().max(f64::MIN_POSITIVE), *shape)
                    .expect("scale and shape are positive");
                Duration::from_secs_f64(dist.sample(rng))
            }
            ServiceTimeModel::Bimodal { p_slow, fast, slow } => {
                if rng.gen_bool(p_slow.clamp(0.0, 1.0)) {
                    slow.sample(rng)
                } else {
                    fast.sample(rng)
                }
            }
        }
    }

    /// The distribution's mean, where it is finite and known in closed
    /// form. Used by harnesses for sanity checks and workload sizing.
    pub fn mean(&self) -> Option<Duration> {
        match self {
            ServiceTimeModel::Deterministic(d) => Some(*d),
            ServiceTimeModel::Uniform { lo, hi } => Some((*lo + *hi) / 2),
            // Truncation shifts the mean slightly; report the untruncated
            // value, which is what experiments are parameterized with.
            ServiceTimeModel::Normal { mean, .. } => Some(*mean),
            ServiceTimeModel::Exponential { mean } => Some(*mean),
            ServiceTimeModel::LogNormal { median, sigma } => Some(Duration::from_secs_f64(
                median.as_secs_f64() * (sigma * sigma / 2.0).exp(),
            )),
            ServiceTimeModel::Pareto { scale, shape } => {
                if *shape > 1.0 {
                    Some(Duration::from_secs_f64(
                        shape * scale.as_secs_f64() / (shape - 1.0),
                    ))
                } else {
                    None
                }
            }
            ServiceTimeModel::Bimodal { p_slow, fast, slow } => {
                let f = fast.mean()?.as_secs_f64();
                let s = slow.mean()?.as_secs_f64();
                Some(Duration::from_secs_f64(p_slow * s + (1.0 - p_slow) * f))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    fn empirical_mean(model: &ServiceTimeModel, n: usize) -> f64 {
        let mut r = rng();
        (0..n)
            .map(|_| model.sample(&mut r).as_millis_f64())
            .sum::<f64>()
            / n as f64
    }

    #[test]
    fn deterministic_is_constant() {
        let model = ServiceTimeModel::Deterministic(ms(42));
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(model.sample(&mut r), ms(42));
        }
        assert_eq!(model.mean(), Some(ms(42)));
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let model = ServiceTimeModel::Uniform {
            lo: ms(10),
            hi: ms(20),
        };
        let mut r = rng();
        for _ in 0..1_000 {
            let s = model.sample(&mut r);
            assert!(s >= ms(10) && s < ms(20));
        }
        assert_eq!(model.mean(), Some(ms(15)));
    }

    #[test]
    fn paper_load_matches_parameters() {
        let model = ServiceTimeModel::paper_load();
        let mean = empirical_mean(&model, 20_000);
        assert!(
            (mean - 100.0).abs() < 3.0,
            "empirical mean {mean} should be ≈100 ms (σ50 truncated at 0 biases up slightly)"
        );
        let mut r = rng();
        assert!((0..20_000).all(|_| model.sample(&mut r) >= Duration::ZERO));
    }

    #[test]
    fn normal_truncates_at_min() {
        let model = ServiceTimeModel::Normal {
            mean: ms(1),
            std_dev: ms(100),
            min: ms(1),
        };
        let mut r = rng();
        for _ in 0..1_000 {
            assert!(model.sample(&mut r) >= ms(1));
        }
    }

    #[test]
    fn exponential_mean_converges() {
        let model = ServiceTimeModel::Exponential { mean: ms(50) };
        let mean = empirical_mean(&model, 50_000);
        assert!((mean - 50.0).abs() < 2.0, "empirical mean {mean}");
        assert_eq!(model.mean(), Some(ms(50)));
    }

    #[test]
    fn lognormal_median_is_roughly_right() {
        let model = ServiceTimeModel::LogNormal {
            median: ms(100),
            sigma: 0.5,
        };
        let mut r = rng();
        let mut samples: Vec<f64> = (0..10_001)
            .map(|_| model.sample(&mut r).as_millis_f64())
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[5_000];
        assert!((median - 100.0).abs() < 5.0, "median {median}");
        // mean = median · e^{σ²/2} ≈ 113.3 ms
        let m = model.mean().unwrap().as_millis_f64();
        assert!((m - 113.3).abs() < 0.5, "closed-form mean {m}");
    }

    #[test]
    fn pareto_respects_scale_and_mean() {
        let model = ServiceTimeModel::Pareto {
            scale: ms(10),
            shape: 3.0,
        };
        let mut r = rng();
        for _ in 0..1_000 {
            assert!(model.sample(&mut r) >= ms(10));
        }
        assert_eq!(model.mean(), Some(ms(15)));
        let heavy = ServiceTimeModel::Pareto {
            scale: ms(10),
            shape: 0.9,
        };
        assert_eq!(heavy.mean(), None, "infinite mean for α ≤ 1");
    }

    #[test]
    fn bimodal_mixes_modes() {
        let model = ServiceTimeModel::Bimodal {
            p_slow: 0.25,
            fast: Box::new(ServiceTimeModel::Deterministic(ms(10))),
            slow: Box::new(ServiceTimeModel::Deterministic(ms(100))),
        };
        let mut r = rng();
        let n = 20_000;
        let slow_count = (0..n).filter(|_| model.sample(&mut r) == ms(100)).count();
        let frac = slow_count as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "slow fraction {frac}");
        assert_eq!(model.mean(), Some(Duration::from_micros(32_500)));
    }
}
