//! Crash fault injection (§3: "a replica may crash, making it
//! unresponsive").
//!
//! Crashes in AQuA are *silent*: the replica simply stops processing and
//! stops heartbeating; the group layer eventually detects the silence and
//! installs a new view. [`CrashPlan`] decides *when* a replica crashes;
//! the owning node decides what crashing means (detach, drop queue, …).

use aqua_core::time::{Duration, Instant};
use rand::Rng;
use rand_distr::{Distribution, Exp};

/// When a replica should crash.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum CrashPlan {
    /// Never crashes (the default).
    #[default]
    Never,
    /// Crashes at a fixed virtual time.
    AtTime(Instant),
    /// Crashes immediately after servicing this many requests.
    AfterRequests(u64),
    /// Crashes at an exponentially distributed time with the given mean
    /// (memoryless MTBF).
    Mtbf(Duration),
}

/// Runtime state of a [`CrashPlan`]: call the observers as events happen
/// and [`CrashState::is_crashed`] to know whether the replica is dead.
#[derive(Debug, Clone)]
pub struct CrashState {
    plan: CrashPlan,
    crash_at: Option<Instant>,
    serviced: u64,
    crashed: bool,
}

impl CrashState {
    /// Instantiates a plan. `Mtbf` draws its crash time immediately using
    /// `rng`, so the whole schedule is deterministic under a fixed seed.
    pub fn new<R: Rng + ?Sized>(plan: CrashPlan, start: Instant, rng: &mut R) -> Self {
        let crash_at = match plan {
            CrashPlan::Never | CrashPlan::AfterRequests(_) => None,
            CrashPlan::AtTime(at) => Some(at),
            CrashPlan::Mtbf(mean) => {
                let m = mean.as_secs_f64().max(1e-9);
                let delay = Exp::new(1.0 / m).expect("rate positive").sample(rng);
                Some(start.saturating_add(Duration::from_secs_f64(delay)))
            }
        };
        CrashState {
            plan,
            crash_at,
            serviced: 0,
            crashed: false,
        }
    }

    /// The plan this state was built from.
    pub fn plan(&self) -> CrashPlan {
        self.plan
    }

    /// The predetermined crash time, if the plan is time-based.
    pub fn crash_at(&self) -> Option<Instant> {
        self.crash_at
    }

    /// Whether the replica has crashed.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Observer: virtual time has advanced to `now`. Returns `true` if this
    /// call transitioned the replica into the crashed state.
    pub fn observe_time(&mut self, now: Instant) -> bool {
        if self.crashed {
            return false;
        }
        if let Some(at) = self.crash_at {
            if now >= at {
                self.crashed = true;
                return true;
            }
        }
        false
    }

    /// Observer: one request was serviced. Returns `true` if this call
    /// transitioned the replica into the crashed state.
    pub fn observe_serviced(&mut self) -> bool {
        if self.crashed {
            return false;
        }
        self.serviced += 1;
        if let CrashPlan::AfterRequests(n) = self.plan {
            if self.serviced >= n {
                self.crashed = true;
                return true;
            }
        }
        false
    }

    /// Requests serviced so far.
    pub fn serviced(&self) -> u64 {
        self.serviced
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(5)
    }

    #[test]
    fn never_never_crashes() {
        let mut s = CrashState::new(CrashPlan::Never, Instant::EPOCH, &mut rng());
        assert!(!s.observe_time(Instant::from_secs(1_000)));
        for _ in 0..1_000 {
            assert!(!s.observe_serviced());
        }
        assert!(!s.is_crashed());
    }

    #[test]
    fn at_time_crashes_exactly_once() {
        let mut s = CrashState::new(
            CrashPlan::AtTime(Instant::from_millis(500)),
            Instant::EPOCH,
            &mut rng(),
        );
        assert!(!s.observe_time(Instant::from_millis(499)));
        assert!(s.observe_time(Instant::from_millis(500)), "transition");
        assert!(s.is_crashed());
        assert!(!s.observe_time(Instant::from_millis(501)), "only once");
    }

    #[test]
    fn after_requests_counts_services() {
        let mut s = CrashState::new(CrashPlan::AfterRequests(3), Instant::EPOCH, &mut rng());
        assert!(!s.observe_serviced());
        assert!(!s.observe_serviced());
        assert!(s.observe_serviced());
        assert!(s.is_crashed());
        assert_eq!(s.serviced(), 3);
    }

    #[test]
    fn mtbf_draws_future_crash_time() {
        let mut r = rng();
        let mut crash_times = Vec::new();
        for _ in 0..100 {
            let s = CrashState::new(
                CrashPlan::Mtbf(Duration::from_secs(10)),
                Instant::from_secs(1),
                &mut r,
            );
            let at = s.crash_at().expect("mtbf predetermines a time");
            assert!(at >= Instant::from_secs(1));
            crash_times.push(at.as_secs_f64() - 1.0);
        }
        let mean = crash_times.iter().sum::<f64>() / crash_times.len() as f64;
        assert!((mean - 10.0).abs() < 3.0, "mean crash delay {mean}");
    }

    #[test]
    fn deterministic_under_same_seed() {
        let a = CrashState::new(
            CrashPlan::Mtbf(Duration::from_secs(5)),
            Instant::EPOCH,
            &mut SmallRng::seed_from_u64(9),
        );
        let b = CrashState::new(
            CrashPlan::Mtbf(Duration::from_secs(5)),
            Instant::EPOCH,
            &mut SmallRng::seed_from_u64(9),
        );
        assert_eq!(a.crash_at(), b.crash_at());
    }
}
