//! The server-side FIFO request queue (§5.1, Stage 3).
//!
//! "The protocol handler in the server gateway … enqueues it in the request
//! queue of the server application … The server uses FIFO ordering for
//! servicing the requests in the queue." The queue records the enqueue time
//! `t2` and, at dequeue time `t3`, yields the queuing delay `tq = t3 − t2`
//! that the replica publishes to its subscribers.

use std::collections::VecDeque;

use aqua_core::time::{Duration, Instant};

/// A request waiting in the queue, with its enqueue timestamp (`t2`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Queued<T> {
    /// The queued request.
    pub item: T,
    /// When it was enqueued (`t2`).
    pub enqueued_at: Instant,
}

/// FIFO request queue with queuing-delay measurement.
///
/// # Examples
///
/// ```
/// use aqua_replica::RequestQueue;
/// use aqua_core::time::{Duration, Instant};
///
/// let mut q = RequestQueue::new();
/// q.push("req-1", Instant::from_millis(10));
/// q.push("req-2", Instant::from_millis(12));
/// let (item, tq) = q.pop(Instant::from_millis(15)).unwrap();
/// assert_eq!(item, "req-1");
/// assert_eq!(tq, Duration::from_millis(5));
/// assert_eq!(q.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RequestQueue<T> {
    queue: VecDeque<Queued<T>>,
    total_enqueued: u64,
    max_depth: usize,
}

impl<T> RequestQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        RequestQueue {
            queue: VecDeque::new(),
            total_enqueued: 0,
            max_depth: 0,
        }
    }

    /// Enqueues a request at time `now` (`t2`).
    pub fn push(&mut self, item: T, now: Instant) {
        self.queue.push_back(Queued {
            item,
            enqueued_at: now,
        });
        self.total_enqueued += 1;
        self.max_depth = self.max_depth.max(self.queue.len());
    }

    /// Dequeues the oldest request at time `now` (`t3`), returning it with
    /// its queuing delay `tq`.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the request's enqueue time (the simulator
    /// guarantees monotone time).
    pub fn pop(&mut self, now: Instant) -> Option<(T, Duration)> {
        self.queue.pop_front().map(|q| {
            let tq = now.duration_since(q.enqueued_at);
            (q.item, tq)
        })
    }

    /// Number of requests currently waiting — the "current number of
    /// outstanding requests" the repository stores per replica.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Total requests ever enqueued.
    pub fn total_enqueued(&self) -> u64 {
        self.total_enqueued
    }

    /// High-water mark of the queue depth.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Drops all waiting requests (on crash), returning how many were lost.
    pub fn drain(&mut self) -> usize {
        let n = self.queue.len();
        self.queue.clear();
        n
    }

    /// Iterates over waiting requests, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Queued<T>> {
        self.queue.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> Instant {
        Instant::from_millis(ms)
    }

    #[test]
    fn fifo_order_and_delays() {
        let mut q = RequestQueue::new();
        q.push(1, at(0));
        q.push(2, at(5));
        q.push(3, at(5));
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(at(10)), Some((1, Duration::from_millis(10))));
        assert_eq!(q.pop(at(10)), Some((2, Duration::from_millis(5))));
        assert_eq!(q.pop(at(20)), Some((3, Duration::from_millis(15))));
        assert_eq!(q.pop(at(20)), None);
    }

    #[test]
    fn zero_delay_when_served_immediately() {
        let mut q = RequestQueue::new();
        q.push("a", at(7));
        assert_eq!(q.pop(at(7)), Some(("a", Duration::ZERO)));
    }

    #[test]
    fn statistics_track_depth() {
        let mut q = RequestQueue::new();
        for i in 0..4 {
            q.push(i, at(i));
        }
        q.pop(at(10));
        q.push(9, at(11));
        assert_eq!(q.total_enqueued(), 5);
        assert_eq!(q.max_depth(), 4);
        assert_eq!(q.len(), 4);
    }

    #[test]
    fn drain_clears_everything() {
        let mut q = RequestQueue::new();
        q.push(1, at(0));
        q.push(2, at(0));
        assert_eq!(q.drain(), 2);
        assert!(q.is_empty());
        assert_eq!(q.drain(), 0);
    }

    #[test]
    fn iter_is_oldest_first() {
        let mut q = RequestQueue::new();
        q.push("x", at(1));
        q.push("y", at(2));
        let items: Vec<_> = q.iter().map(|e| e.item).collect();
        assert_eq!(items, vec!["x", "y"]);
    }
}
